"""The delta-debugging minimizer, exercised against synthetic bugs.

The divergence predicate is injected, so these tests pin the shrinking
strategy itself — 1-minimality, head recomputation, corpus reduction —
independently of any real backend bug.
"""

import pytest

from repro.calculus.formulas import And, Eq, In, Not, PathAtom, Query
from repro.calculus.terms import (
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    Index,
    Name,
    PathTerm,
    PathVar,
    Sel,
)
from repro.diffcheck.generator import CorpusSpec
from repro.diffcheck.minimize import minimize
from repro.observe import MetricsRegistry


def _components(query: Query) -> tuple:
    atom = next(c for c in query.formula.conjuncts
                if isinstance(c, PathAtom))
    return atom.path.components


def _seeded_case() -> tuple[CorpusSpec, Query]:
    """A noisy failing input: 6 documents, 5 path components, 2
    residual conjuncts."""
    article = DataVar("a")
    attvar = AttVar("A")
    witness = DataVar("X")
    atom = PathAtom(article, PathTerm([
        PathVar("P"), Sel("sections"), Index(0), Sel(attvar),
        Bind(witness)]))
    query = Query([article, PathVar("P"), attvar, witness], And(
        In(article, Name("Articles")), atom,
        Not(Eq(witness, Const("draft"))),
        Not(Eq(witness, Const("final")))))
    return CorpusSpec(count=6, seed=13), query


def _attvar_bug(spec: CorpusSpec, query: Query) -> bool:
    """Synthetic divergence: present whenever the path predicate still
    carries a Sel(AttVar) component and document 2 is in the corpus."""
    has_attvar = any(isinstance(c, Sel) and isinstance(c.attribute,
                                                       AttVar)
                     for c in _components(query))
    return has_attvar and 2 in spec.indices()


class TestMinimize:
    def test_shrinks_seeded_failure_to_minimum(self):
        metrics = MetricsRegistry()
        spec, query = minimize(*_seeded_case(), _attvar_bug,
                               metrics=metrics)
        # corpus: exactly the one guilty document
        assert spec.indices() == (2,)
        # query: at most 3 components survive (the guilty Sel(AttVar)
        # plus whatever the rebuild keeps well-formed) and no residuals
        components = _components(query)
        assert len(components) <= 3
        assert any(isinstance(c, Sel) and isinstance(c.attribute, AttVar)
                   for c in components)
        assert len(query.formula.conjuncts) == 2  # In + PathAtom
        assert metrics.get("diffcheck.minimized") == 1
        assert metrics.get("diffcheck.minimizer_probes") > 0

    def test_one_minimality(self):
        """No single further removal keeps the divergence."""
        spec, query = minimize(*_seeded_case(), _attvar_bug)
        components = list(_components(query))
        conjuncts = list(query.formula.conjuncts)
        atom_index = next(i for i, c in enumerate(conjuncts)
                          if isinstance(c, PathAtom))
        for position in range(len(components)):
            slimmer = PathAtom(
                conjuncts[atom_index].root,
                PathTerm(components[:position]
                         + components[position + 1:]))
            try:
                candidate = Query(query.head,
                                  And(*(conjuncts[:atom_index] + [slimmer]
                                        + conjuncts[atom_index + 1:])))
            except Exception:
                # removal makes the query ill-formed — not a valid
                # shrink, so it cannot witness non-minimality
                continue
            assert not _attvar_bug(spec, candidate)

    def test_head_follows_surviving_variables(self):
        """Variables whose binders are shrunk away leave the head, so
        the minimized query stays well-formed (range-restricted)."""
        spec, query = minimize(*_seeded_case(), _attvar_bug)
        surviving = set(query.formula.free_variables())
        for conjunct in query.formula.conjuncts:
            if isinstance(conjunct, PathAtom):
                surviving |= set(conjunct.path.variables())
        assert set(query.head) <= surviving

    def test_rejects_passing_input(self):
        spec, query = _seeded_case()
        with pytest.raises(ValueError):
            minimize(spec, query, lambda s, q: False)

    def test_keeps_guilty_corpus_document(self):
        """Dropping any kept document loses the repro."""
        spec, query = minimize(*_seeded_case(), _attvar_bug)
        for index in spec.indices():
            remaining = tuple(i for i in spec.indices() if i != index)
            if not remaining:
                continue
            slimmer = CorpusSpec(count=spec.count, seed=spec.seed,
                                 keep=remaining)
            assert not _attvar_bug(slimmer, query)

    def test_predicate_exceptions_reject_the_shrink(self):
        """A candidate that crashes the checker is never accepted."""
        spec, query = _seeded_case()

        def picky(candidate_spec, candidate_query):
            if len(_components(candidate_query)) < 5:
                raise RuntimeError("checker blew up")
            return _attvar_bug(candidate_spec, candidate_query)

        shrunk_spec, shrunk_query = minimize(spec, query, picky)
        # path components could not shrink (the checker forbade it),
        # but the corpus still did
        assert len(_components(shrunk_query)) == 5
        assert shrunk_spec.indices() == (2,)
