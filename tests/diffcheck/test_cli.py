"""The ``python -m repro.diffcheck`` entry point, driven in-process."""

import json
import os

from repro.diffcheck.__main__ import main
from repro.diffcheck.fixtures import save_fixture
from repro.diffcheck.generator import CorpusSpec

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "sel_attvar_union_content.json")


class TestCli:
    def test_fuzz_mode_clean_budget_exits_zero(self, tmp_path, capsys):
        code = main(["--budget", "8", "--seed", "3",
                     "--out", str(tmp_path / "repros")])
        out = capsys.readouterr().out
        assert code == 0
        assert "zero divergences" in out
        assert "queries=8" in out
        assert not list((tmp_path / "repros").glob("*.json"))

    def test_fuzz_mode_writes_minimized_fixture_on_divergence(
            self, tmp_path, capsys, monkeypatch):
        """Break one backend deliberately; the CLI must exit non-zero
        and write a replayable minimized fixture."""
        from repro.diffcheck import harness as harness_module

        original = harness_module.DiffHarness._execute

        def sabotaged(self, config, plan, engine):
            if config == "factored":
                raise RuntimeError("sabotaged backend")
            return original(self, config, plan, engine)

        monkeypatch.setattr(harness_module.DiffHarness, "_execute",
                            sabotaged)
        out_dir = tmp_path / "repros"
        code = main(["--budget", "3", "--seed", "3", "--fail-fast",
                     "--quiet", "--out", str(out_dir)])
        assert code == 1
        written = sorted(out_dir.glob("divergence_*.json"))
        assert written
        payload = json.loads(written[0].read_text())
        assert payload["format"] == "repro.diffcheck/1"
        assert "factored" in payload["meta"]["divergent_configs"]
        assert "is a bug" in capsys.readouterr().out

    def test_replay_mode_passes_on_fixed_fixture(self, capsys):
        code = main(["--replay", FIXTURE])
        out = capsys.readouterr().out
        assert code == 0
        assert f"{FIXTURE}: ok" in out

    def test_replay_mode_fails_on_divergent_fixture(
            self, tmp_path, capsys):
        """A fixture whose bug is *not* fixed must fail replay — the
        tracked-divergence path of the fix-or-fixture policy."""
        spec = CorpusSpec(count=1, seed=6)
        path = tmp_path / "tracked.json"
        from repro.diffcheck.fixtures import load_fixture
        _, query, _ = load_fixture(FIXTURE)
        save_fixture(str(path), spec, query, meta={})

        from repro.diffcheck import harness as harness_module
        import unittest.mock as mock

        def always_diverges(self, config, plan, engine):
            raise RuntimeError("sabotaged backend")

        with mock.patch.object(harness_module.DiffHarness, "_execute",
                               always_diverges):
            code = main(["--replay", str(path), "--quiet"])
        assert code == 1
        assert "DIVERGENT" in capsys.readouterr().out

    def test_restricted_config_subset(self, capsys):
        code = main(["--budget", "4", "--seed", "3",
                     "--configs", "unoptimized", "--out",
                     "/tmp/unused-diffcheck-out"])
        out = capsys.readouterr().out
        assert code == 0
        assert "configs_compared=4" in out

    def test_no_minimize_reports_raw_divergence(self, tmp_path,
                                                monkeypatch, capsys):
        """--no-minimize writes the raw (unshrunk) failing case."""
        from repro.diffcheck import harness as harness_module

        def broken(self, config, plan, engine):
            raise RuntimeError("sabotaged backend")

        monkeypatch.setattr(harness_module.DiffHarness, "_execute",
                            broken)
        code = main(["--budget", "1", "--seed", "3", "--no-minimize",
                     "--quiet", "--out", str(tmp_path)])
        assert code == 1
        assert "minimized=" not in capsys.readouterr().out
