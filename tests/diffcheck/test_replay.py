"""Replay every checked-in minimized repro (tier-1 regressions).

Each fixture under ``fixtures/`` is a divergence diffcheck once found
and minimized; replaying it green on every run is the policy that a
fixed divergence stays fixed.  The ``sel_attvar_union_content``
fixture is the ISSUE-5 bug: an unbound attribute variable over marked
union content (the calculus used to miss the payload attributes the
implicit selector reaches).
"""

import glob
import os

import pytest

from repro.calculus.terms import AttVar, Sel
from repro.diffcheck import (
    DiffHarness,
    decode_query,
    encode_query,
    load_fixture,
)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "fixtures")
FIXTURES = sorted(glob.glob(os.path.join(FIXTURE_DIR, "*.json")))


def _ids(paths):
    return [os.path.splitext(os.path.basename(p))[0] for p in paths]


class TestReplay:
    def test_fixture_directory_is_populated(self):
        assert FIXTURES, "the Sel(AttVar) regression fixture must exist"

    @pytest.mark.parametrize("path", FIXTURES, ids=_ids(FIXTURES))
    def test_fixture_no_longer_diverges(self, path):
        spec, query, _ = load_fixture(path)
        comparison = DiffHarness().compare(spec, query)
        assert not comparison.divergent, comparison.report()

    @pytest.mark.parametrize("path", FIXTURES, ids=_ids(FIXTURES))
    def test_fixture_roundtrips(self, path):
        """decode∘encode is the identity on checked-in fixtures."""
        _, query, _ = load_fixture(path)
        assert decode_query(encode_query(query)) == query


class TestSelAttVarRegression:
    """The ISSUE-5 repro, pinned in detail (beyond mere agreement)."""

    def _load(self):
        path = os.path.join(FIXTURE_DIR, "sel_attvar_union_content.json")
        return load_fixture(path)

    def test_shape_is_the_minimized_repro(self):
        _, query, meta = self._load()
        assert "Sel(AttVar)" in meta["issue"] \
            or "attribute variable" in meta["issue"]
        atoms = [c for c in query.formula.conjuncts
                 if hasattr(c, "path")]
        [atom] = atoms
        assert any(isinstance(c, Sel) and isinstance(c.attribute, AttVar)
                   for c in atom.path.components)

    def test_attvar_values_over_union_payload_attributes(self):
        """The fixed semantics, pinned directly: an unbound attribute
        variable applied to a marked Section value must value over the
        marker *and* the payload attributes the implicit selector
        reaches (title/bodies/subsectns) — the pre-fix calculus stopped
        at the marker."""
        from repro.calculus.evaluator import evaluate_query
        from repro.calculus.formulas import And, In, PathAtom, Query
        from repro.calculus.terms import (
            DataVar, Index, Name, PathTerm,
        )
        spec, _, _ = self._load()
        harness = DiffHarness()
        store = harness.store_for(spec)
        article, attvar = DataVar("a"), AttVar("A")
        query = Query([article, attvar], And(
            In(article, Name("Articles")),
            PathAtom(article, PathTerm(
                [Sel("sections"), Index(0), Sel(attvar)]))))
        result = evaluate_query(query, store._engine.ctx.fork())
        names = {row.get("A") for row in result}
        assert names & {"a1", "a2"}        # the marker itself
        assert "title" in names            # payload, behind the marker
        assert "bodies" in names           # the pre-fix miss
        # and the backends agree on it end to end
        comparison = harness.compare(spec, query)
        assert not comparison.divergent, comparison.report()
