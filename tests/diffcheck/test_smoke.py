"""Fixed-seed differential smoke: the per-PR acceptance gate.

Runs a deterministic slice of the fuzzer (60 generated queries, every
algebra config against the calculus reference) inside the fast test
loop.  Any disagreement fails with the full comparison report; the
budget is small enough to stay in the ``-m "not bench"`` loop but wide
enough that every grammar production fires at least once.
"""

from repro.diffcheck import ALGEBRA_CONFIGS, DiffHarness, generate_cases
from repro.observe import MetricsRegistry

SMOKE_BUDGET = 60
SMOKE_SEED = 7


class TestSmoke:
    def test_fixed_seed_budget_has_zero_divergences(self):
        metrics = MetricsRegistry()
        harness = DiffHarness(metrics=metrics)
        reports = []
        for case in generate_cases(SMOKE_BUDGET, seed=SMOKE_SEED):
            comparison = harness.compare(case.corpus, case.query)
            if comparison.divergent:
                reports.append(comparison.report())
        assert not reports, "\n\n".join(reports)
        assert metrics.get("diffcheck.queries") == SMOKE_BUDGET
        assert metrics.get("diffcheck.divergences") == 0
        # every config really ran on every query
        assert metrics.get("diffcheck.configs_compared") \
            == SMOKE_BUDGET * len(ALGEBRA_CONFIGS)
