"""The diffcheck case generator: coverage, determinism, corpus specs."""

from repro.calculus.formulas import (
    Exists,
    Forall,
    In,
    Not,
    PathAtom,
    Pred,
    Query,
)
from repro.calculus.safety import check_safety
from repro.calculus.terms import (
    AttName,
    AttVar,
    Bind,
    Deref,
    Index,
    PathVar,
    Sel,
    SetBind,
)
from repro.diffcheck.generator import (
    CorpusSpec,
    MARKERS,
    QueryGenerator,
    generate_cases,
)

#: Every production the ISSUE demands from the generator.
ALL_FEATURES = {
    "pathvar", "sel", "marker", "attvar", "index", "indexvar", "deref",
    "bind", "setbind", "contains", "near", "negation", "forall",
    "exists",
}


class TestCoverage:
    def test_every_grammar_production_is_reachable(self):
        seen: set = set()
        for case in generate_cases(400, seed=11):
            seen |= case.features
        assert ALL_FEATURES <= seen

    def test_feature_tags_match_query_structure(self):
        """The advertised features actually occur in the AST."""
        checkers = {
            "pathvar": lambda c: isinstance(c, PathVar),
            "attvar": lambda c: (isinstance(c, Sel)
                                 and isinstance(c.attribute, AttVar)),
            "marker": lambda c: (isinstance(c, Sel)
                                 and isinstance(c.attribute, AttName)
                                 and c.attribute.name in MARKERS),
            "index": lambda c: (isinstance(c, Index)
                                and isinstance(c.index, int)),
            "indexvar": lambda c: (isinstance(c, Index)
                                   and not isinstance(c.index, int)),
            "deref": lambda c: isinstance(c, Deref),
            "bind": lambda c: isinstance(c, Bind),
            "setbind": lambda c: isinstance(c, SetBind),
        }
        residuals = {
            "negation": Not, "forall": Forall, "exists": Exists,
        }
        for case in generate_cases(120, seed=3):
            atom = next(c for c in case.query.formula.conjuncts
                        if isinstance(c, PathAtom))
            for feature, checker in checkers.items():
                if feature in case.features:
                    assert any(checker(component) for component
                               in atom.path.components), (feature, case)
            for feature, node_type in residuals.items():
                if feature in case.features:
                    assert any(isinstance(c, node_type) for c
                               in case.query.formula.conjuncts)
            for feature in ("contains", "near"):
                if feature in case.features:
                    assert any(isinstance(c, Pred)
                               and c.predicate == feature
                               for c in case.query.formula.conjuncts)

    def test_generated_queries_are_safe_and_rooted(self):
        """Every case passes the static safety analysis — divergence
        hunting never wastes budget on ill-formed inputs."""
        for case in generate_cases(120, seed=5):
            assert isinstance(case.query, Query)
            check_safety(case.query)
            first = case.query.formula.conjuncts[0]
            assert isinstance(first, In)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = generate_cases(30, seed=21)
        second = generate_cases(30, seed=21)
        assert [str(c.query) for c in first] \
            == [str(c.query) for c in second]
        assert [c.corpus for c in first] == [c.corpus for c in second]

    def test_cases_replay_independently(self):
        """case(i) does not depend on the cases before it."""
        generator = QueryGenerator(seed=21)
        assert str(generator.case(17).query) \
            == str(QueryGenerator(seed=21).case(17).query)

    def test_different_seeds_differ(self):
        a = [str(c.query) for c in generate_cases(20, seed=1)]
        b = [str(c.query) for c in generate_cases(20, seed=2)]
        assert a != b


class TestCorpusSpec:
    def test_keep_filters_documents(self):
        full = CorpusSpec(count=4, seed=9)
        assert full.indices() == (0, 1, 2, 3)
        assert len(full.trees()) == 4
        partial = CorpusSpec(count=4, seed=9, keep=(2,))
        assert partial.indices() == (2,)
        [tree] = partial.trees()
        assert tree is not None

    def test_kept_documents_are_positional(self):
        """keep=(i,) selects the i-th document of the full corpus, so a
        shrunk spec reproduces exactly the documents it names."""
        full = CorpusSpec(count=4, seed=9).trees()
        partial = CorpusSpec(count=4, seed=9, keep=(1, 3)).trees()
        from repro.sgml.writer import write_document
        assert [write_document(t) for t in partial] \
            == [write_document(t) for t in (full[1], full[3])]
