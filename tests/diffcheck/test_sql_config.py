"""The seventh configuration: relational execution under the fuzzer.

Two contracts: (1) the ``sql`` config agrees with the calculus
reference on generated queries — including constructs outside the
relational subset, which the hybrid keeps in Python or falls back on;
(2) relational refusals coarsen to the same ``"rejected"`` bucket as
static rejection, so an unsupported query can never surface as a
spurious divergence.
"""

import sqlite3

from repro.diffcheck import ALGEBRA_CONFIGS, DiffHarness, generate_cases
from repro.diffcheck.harness import Outcome, _error_label
from repro.errors import (
    SQLBackendError,
    SQLExecutionError,
    SQLUnsupportedError,
)
from repro.observe import MetricsRegistry

BUDGET = 24
SEED = 11

#: Residual/structure features the emitter does not cover — the
#: hybrid must still agree by running them in Python.
UNSUPPORTED_FEATURES = {"negation", "forall", "exists"}


class TestConfigRegistration:
    def test_sql_is_the_seventh_config(self):
        assert ALGEBRA_CONFIGS[-1] == "sql"
        assert len(ALGEBRA_CONFIGS) == 7

    def test_harness_rejects_unknown_configs(self):
        import pytest
        with pytest.raises(ValueError):
            DiffHarness(configs=("sql", "mongodb"))


class TestCoarsening:
    def test_sql_errors_land_in_the_rejected_bucket(self):
        assert _error_label(SQLUnsupportedError("outside")) == "rejected"
        assert _error_label(SQLExecutionError("failed")) == "rejected"
        assert _error_label(SQLBackendError("generic")) == "rejected"
        assert _error_label(
            sqlite3.OperationalError("no such table: node")) == "rejected"

    def test_rejected_agrees_with_rejected(self):
        # both sides refusing is agreement, whatever the refusal text
        from repro.errors import SafetyError
        assert Outcome(error=_error_label(SQLUnsupportedError("x"))) \
            .agrees_with(Outcome(error=_error_label(SafetyError("y"))))

    def test_other_errors_stay_distinguishable(self):
        assert _error_label(KeyError("k")) == "KeyError"


class TestSweep:
    def test_fixed_seed_slice_has_zero_divergences(self):
        metrics = MetricsRegistry()
        harness = DiffHarness(metrics=metrics)
        reports = []
        for case in generate_cases(BUDGET, seed=SEED):
            comparison = harness.compare(case.corpus, case.query)
            if comparison.divergent:
                reports.append(comparison.report())
        assert not reports, "\n\n".join(reports)
        assert metrics.get("diffcheck.configs_compared") \
            == BUDGET * len(ALGEBRA_CONFIGS)

    def test_unsupported_constructs_agree_via_the_hybrid(self):
        # deliberately pick cases whose features the emitter refuses
        # (negation / quantifiers); the sql config must agree anyway
        harness = DiffHarness(configs=("sql",))
        picked = [case for case in generate_cases(120, seed=SEED)
                  if case.features & UNSUPPORTED_FEATURES]
        assert picked, "the seed stream lost its quantifier cases"
        for case in picked[:8]:
            comparison = harness.compare(case.corpus, case.query)
            assert not comparison.divergent, comparison.report()
