"""Backend parity (Q1–Q6) plus golden EXPLAIN ANALYZE snapshots.

Both query backends — the calculus interpreter and the Section-5.4
algebra compiler (run through the *full* engine pipeline, optimizer
included) — must return identical result sets for the paper's queries.
The algebra plans themselves are pinned as golden snapshots: operator
spines and the exact set of variable-free navigation chains that a
path variable expands into.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.letters import build_letters_database
from repro.o2sql import QueryEngine

Q1 = """
    select tuple (t: a.title, f_author: first(a.authors))
    from a in Articles, s in a.sections
    where s.title contains ("SGML" and "OODBMS")
"""
Q2 = "select ss from a in Articles, s in a.sections, ss in s.subsectns"
Q3 = "select t from my_article PATH_p.title(t)"
Q4 = "my_article PATH_p - my_old_article PATH_p"
Q5 = """
    select name(ATT_a) from my_article PATH_p.ATT_a(val)
    where val contains ("final")
"""
Q6 = """
    select letter
    from letter in Letters, letter[i].from, letter[j].to
    where i < j
"""

PAPER_QUERIES = {"Q1": Q1, "Q2": Q2, "Q3": Q3, "Q4": Q4, "Q5": Q5}


@pytest.fixture(scope="module")
def store():
    """One instance, two engines — oids are shared, so result sets are
    directly comparable across backends."""
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.load_text(SAMPLE_ARTICLE, name="my_old_article")
    return s


@pytest.fixture(scope="module")
def calculus_engine(store):
    return QueryEngine(store.instance, store.loader.provenance,
                       backend="calculus")


class TestBackendParity:
    @pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
    def test_identical_result_sets(self, store, calculus_engine, name):
        text = PAPER_QUERIES[name]
        assert store.query(text) == calculus_engine.run(text)

    def test_q6_letters_on_both_backends(self):
        database = build_letters_database()
        algebra = QueryEngine(database, backend="algebra")
        calculus = QueryEngine(database, backend="calculus")
        algebra_result = algebra.run(Q6)
        assert algebra_result == calculus.run(Q6)
        assert len(algebra_result) == 3


class TestGoldenAlgebraPlans:
    def test_q1_operator_spine(self, store):
        report = store.explain_analyze(Q1)
        assert [node["operator"] for node in report.operators()] == [
            "ProjectOp", "BindOp", "SelectOp",
            "UnnestOp", "UnnestOp", "SeedOp"]
        # the seed emits one row (the Articles root set); the first
        # Unnest fans it out into the two loaded copies
        rows = {node["operator"]: node["rows"]
                for node in report.operators()}
        assert rows["SeedOp"] == 1
        assert rows["ProjectOp"] == rows["SelectOp"]

    def test_q3_path_variable_expansion(self, store):
        """The golden snapshot of Section 5.4's variable elimination:
        PATH_p.title on Figure 3 expands into exactly these 14
        variable-free navigation chains."""
        report = store.explain_analyze(Q3)
        normalized = sorted(
            _strip_positions(node["label"].split(" = ", 1)[1])
            for node in report.operators()
            if node["operator"] == "MakePathOp")
        assert normalized == [
            "->",
            "->.sections[*]",
            "->.sections[*]->",
            "->.sections[*]->.a1",
            "->.sections[*]->.a1.bodies[*]->.figure->.label[*]",
            "->.sections[*]->.a1.bodies[*]->.paragr->.reflabel",
            "->.sections[*]->.a2",
            "->.sections[*]->.a2.bodies[*]->.figure->.label[*]",
            "->.sections[*]->.a2.bodies[*]->.paragr->.reflabel",
            "->.sections[*]->.a2.subsectns[*]",
            "->.sections[*]->.a2.subsectns[*]->",
            "->.sections[*]->.a2.subsectns[*]->.bodies[*]"
            "->.figure->.label[*]",
            "->.sections[*]->.a2.subsectns[*]->.bodies[*]"
            "->.paragr->.reflabel",
            "ε",
        ]

    def test_q3_actual_rows(self, store):
        report = store.explain_analyze(Q3)
        assert report.union_fanouts() == [14]
        assert report.rows_for("UnionOp") == [8]
        assert report.rows_for("ProjectOp") == [3]

    def test_q4_difference_plan_yields_empty(self, store):
        report = store.explain_analyze(Q4)
        # the two loaded copies are identical documents
        assert len(report.result) == 0
        assert report.rows_for("ProjectOp") == [0]

    def test_q6_letters_plan_rows(self):
        engine = QueryEngine(build_letters_database(), backend="algebra")
        report = engine.explain_analyze(Q6)
        assert report.rows_for("ProjectOp") == [3]
        assert report.trace.attributes["rows"] == 3


def _strip_positions(template: str) -> str:
    """Replace generated positional variables (``[_pos282]``) with
    ``[*]`` so the golden snapshot does not depend on parser token
    offsets."""
    import re
    return re.sub(r"\[_pos\d+\]", "[*]", template)
