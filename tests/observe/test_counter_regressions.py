"""Counter-based performance-regression tests.

The benchmark harness (benchmarks/bench_p1, bench_p5) measures
wall-clock time; these tests pin the *work* instead — deterministic
operation counts that would silently regress if an optimization broke:

* P1 — an indexed ``contains`` must do O(matches) work (exact re-checks
  on index candidates only), while the unindexed plan re-checks the
  whole corpus;
* P5 — a path variable compiles into a Union whose fan-out equals the
  schema-derived number of alternatives, no more.

No timing assertions anywhere.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.o2sql import QueryEngine
from repro.observe import MetricsRegistry
from repro.oodb import INTEGER, STRING, schema_from_classes, tuple_of
from repro.oodb.instance import Instance
from repro.oodb.values import TupleValue

CORPUS_SIZE = 20
NEEDLE = '"SGML" and "OODBMS"'
CONTAINS_QUERY = (f"select a from a in Articles "
                  f"where a contains ({NEEDLE})")


def build_corpus_store(size=CORPUS_SIZE, seed=42,
                       backend="algebra") -> DocumentStore:
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    for tree in generate_corpus(size, seed=seed):
        store.load_tree(tree, validate=False)
    return store


class TestP1IndexVsScanWork:
    """bench_p1's claim, made falsifiable without a stopwatch."""

    @pytest.fixture(scope="class")
    def indexed(self):
        store = build_corpus_store()
        store.build_text_index()
        store.enable_metrics()
        matches = store.query(CONTAINS_QUERY)
        return store, matches, store.metrics()["counters"]

    def test_indexed_contains_rechecks_only_matches(self, indexed):
        store, matches, counters = indexed
        assert len(matches) == 5
        # the IndexFilter plan runs the exact pattern check *only* on
        # articles the index could not rule out — here, the matches
        assert counters["algebra.contains_rechecks"] == len(matches)

    def test_index_prunes_the_rest_of_the_corpus(self, indexed):
        store, matches, counters = indexed
        pruned = counters["algebra.index_pruned"]
        rechecked = counters["algebra.contains_rechecks"]
        assert pruned == CORPUS_SIZE - len(matches)
        assert pruned + rechecked == CORPUS_SIZE

    def test_one_index_probe_per_literal_word(self, indexed):
        _, _, counters = indexed
        # '"SGML" and "OODBMS"' — two literal words, two postings probes
        assert counters["text.word_probes"] == 2

    def test_unindexed_contains_scans_whole_corpus(self):
        store = build_corpus_store()
        store.enable_metrics()
        matches = store.query(CONTAINS_QUERY)
        counters = store.metrics()["counters"]
        assert len(matches) == 5
        assert counters["algebra.contains_rechecks"] == CORPUS_SIZE
        assert "text.word_probes" not in counters

    def test_index_and_scan_agree(self):
        scan = build_corpus_store()
        indexed = build_corpus_store()
        indexed.build_text_index()
        assert indexed.query(CONTAINS_QUERY) == scan.query(CONTAINS_QUERY)


def wide_database(width: int) -> Instance:
    """bench_p5's wide schema, populated: a root tuple with ``width``
    nested parts, each carrying a ``v`` attribute — every part is one
    alternative for ``PATH_p.v``."""
    fields = [(f"part{i}", tuple_of((f"pad{i}", INTEGER), ("v", STRING)))
              for i in range(width)]
    schema = schema_from_classes({}, roots={"Root": tuple_of(*fields)})
    instance = Instance(schema)
    instance.set_root("Root", TupleValue(
        [(f"part{i}", TupleValue([(f"pad{i}", i), ("v", f"value-{i}")]))
         for i in range(width)]))
    return instance


class TestP5UnionFanout:
    """bench_p5's explosion, pinned to its schema-derived expectation."""

    @pytest.mark.parametrize("width", [4, 9, 17])
    def test_fanout_equals_schema_width(self, width):
        engine = QueryEngine(wide_database(width), backend="algebra")
        registry = MetricsRegistry()
        engine.ctx.metrics = registry
        result = engine.run("select x from Root PATH_p.v(x)")
        # exactly one navigation chain per part — no spurious branches
        assert registry.get("algebra.union_fanout") == width
        assert len(result) == width

    def test_report_fanout_matches_counter(self):
        engine = QueryEngine(wide_database(9), backend="algebra")
        report = engine.explain_analyze("select x from Root PATH_p.v(x)")
        assert report.union_fanouts() == [9]
        assert report.counter("algebra.union_fanout") == 9


class TestSecondaryIndexCounters:
    def test_lookup_counts_probes_and_hits(self):
        store = build_corpus_store(size=5)
        store.enable_metrics()
        index = store.store.create_index("Text", "text")
        assert len(index) > 0
        key = next(iter(index.keys()))
        hits = store.store.lookup("Text", "text", key)
        missed = store.store.lookup("Text", "text", "no such content")
        counters = store.metrics()["counters"]
        assert counters["store.index_probes"] == 2
        assert counters["store.index_hits"] == len(hits)
        assert len(hits) >= 1
        assert missed == ()
