"""EXPLAIN ANALYZE over the Figure-2 store.

``DocumentStore.explain_analyze`` runs a query fully observed and
returns an :class:`~repro.observe.report.ExplainReport`.  On the
algebra backend the report carries the executed plan annotated with the
*actual* rows each operator produced; on both backends it carries the
stage span tree and a deterministic counter snapshot.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.observe import ExplainReport

Q3 = "select t from my_article PATH_p.title(t)"


@pytest.fixture(scope="module")
def algebra_store():
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    return store


@pytest.fixture(scope="module")
def calculus_store():
    store = DocumentStore(ARTICLE_DTD, backend="calculus")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    return store


class TestAlgebraReport:
    def test_report_carries_result_and_plan(self, algebra_store):
        report = algebra_store.explain_analyze(Q3)
        assert isinstance(report, ExplainReport)
        assert report.backend == "algebra"
        assert report.result == algebra_store.query(Q3)
        assert report.plan is not None

    def test_actual_rows_per_operator(self, algebra_store):
        report = algebra_store.explain_analyze(Q3)
        # three titles in the Figure-2 article → the Project emits 3
        assert report.rows_for("ProjectOp") == [3]
        # the 14 union branches together yield 8 raw bindings
        assert report.rows_for("UnionOp") == [8]
        # every annotated node ran: rows and pulls are concrete ints
        for node in report.operators():
            assert isinstance(node["rows"], int)
            assert node["pulls"] >= 0

    def test_union_fanout_from_variable_elimination(self, algebra_store):
        report = algebra_store.explain_analyze(Q3)
        # Section 5.4: PATH_p compiles away into one Union over all
        # schema positions where `.title` applies — 14 on Figure 3
        assert report.union_fanouts() == [14]
        assert report.counter("algebra.union_fanout") == 14

    def test_stage_span_tree(self, algebra_store):
        # cold: a cleared plan cache records every pipeline stage
        algebra_store.plan_cache.clear()
        report = algebra_store.explain_analyze(Q3)
        root = report.trace
        assert root.name == "query"
        assert root.attributes["backend"] == "algebra"
        assert root.path_names() == [
            "parse", "translate", "safety", "inference",
            "compile", "execute"]
        compile_span = root.child("compile")
        assert compile_span.attributes["unions"] == 1
        assert compile_span.attributes["operators"] > 1
        assert root.attributes["rows"] == 3
        assert root.attributes["plan_cache"] == "miss"

    def test_warm_span_tree_is_execute_only(self, algebra_store):
        # warm: the cached front end leaves no parse/compile spans
        algebra_store.query(Q3)
        report = algebra_store.explain_analyze(Q3)
        root = report.trace
        assert root.path_names() == ["execute"]
        assert root.attributes["plan_cache"] == "hit"
        assert report.counter("cache.hits") == 1
        assert root.attributes["rows"] == 3

    def test_render_is_an_indented_tree(self, algebra_store):
        rendered = str(algebra_store.explain_analyze(Q3))
        assert "EXPLAIN ANALYZE (algebra backend) — 3 row(s)" in rendered
        assert "rows=3" in rendered
        assert "algebra.union_fanout = 14" in rendered
        # children are indented under the Project root
        lines = rendered.splitlines()
        project_line = next(i for i, line in enumerate(lines)
                            if "Project" in line)
        assert lines[project_line + 1].startswith("  ")

    def test_observers_are_uninstalled_afterwards(self, algebra_store):
        algebra_store.explain_analyze(Q3)
        ctx = algebra_store._engine.ctx
        assert ctx.profiler is None
        assert ctx.tracer is None


class TestCalculusReport:
    def test_no_plan_but_spans_and_counters(self, calculus_store):
        calculus_store.plan_cache.clear()
        report = calculus_store.explain_analyze(Q3)
        assert report.backend == "calculus"
        assert report.plan is None
        assert report.tree is None
        assert report.operators() == []
        assert report.union_fanouts() == []
        root = report.trace
        assert root.path_names() == [
            "parse", "translate", "safety", "inference", "evaluate"]
        assert root.attributes["rows"] == 3

    def test_enumeration_counters_are_deterministic(self, calculus_store):
        report = calculus_store.explain_analyze(Q3)
        # one path atom, three satisfying bindings, and a fixed number
        # of candidate paths enumerated on the Figure-2 instance
        assert report.counter("calculus.atoms") == 1
        assert report.counter("calculus.bindings") == 3
        assert report.counter("calculus.paths_enumerated") == 55
        assert report.counter("oodb.derefs") > 0

    def test_repeated_runs_give_identical_counters(self, calculus_store):
        calculus_store.query(Q3)  # warm the plan cache
        first = calculus_store.explain_analyze(Q3)
        second = calculus_store.explain_analyze(Q3)
        assert first.metrics["counters"] == second.metrics["counters"]


class TestStoreMetricsFacade:
    def test_metrics_auto_enables_and_accumulates(self):
        store = DocumentStore(ARTICLE_DTD)
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        assert store.metrics()["counters"] == {}
        store.query(Q3)
        after_one = store.metrics()["counters"]
        assert after_one["calculus.bindings"] == 3
        store.query(Q3)
        after_two = store.metrics()["counters"]
        assert after_two["calculus.bindings"] == 6

    def test_reset_metrics(self):
        store = DocumentStore(ARTICLE_DTD)
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        store.enable_metrics()
        store.query(Q3)
        store.reset_metrics()
        assert store.metrics()["counters"] == {}

    def test_explain_analyze_does_not_pollute_store_metrics(self):
        store = DocumentStore(ARTICLE_DTD)
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        store.enable_metrics()
        store.explain_analyze(Q3)
        # the report used its own registry; the store's stays empty
        assert store.metrics()["counters"] == {}
