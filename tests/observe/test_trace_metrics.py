"""Unit tests for the observability primitives: the metrics registry,
the span tracer, and the ``observed`` installer.

Everything asserted here is deterministic — counts, structure,
attributes — never elapsed time.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.observe import (
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    observed,
)


class TestMetricsRegistry:
    def test_counter_increments(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_registry_creates_counters_on_demand(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 2)
        assert registry.get("a.b") == 3
        assert registry.get("never.touched") == 0
        assert registry.get("never.touched", default=-1) == -1

    def test_same_name_same_counter(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_histogram_summary(self):
        histogram = Histogram("sizes")
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["total"] == 15.0
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        assert summary["mean"] == 5.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("empty").mean == 0.0

    def test_snapshot_is_sorted_and_detached(self):
        registry = MetricsRegistry()
        registry.inc("z.last")
        registry.inc("a.first")
        registry.observe("h", 1.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        assert snapshot["histograms"]["h"]["count"] == 1
        # mutating the registry afterwards must not alter the snapshot
        registry.inc("a.first")
        assert snapshot["counters"]["a.first"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 2.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("query", backend="algebra"):
            with tracer.span("parse"):
                pass
            with tracer.span("execute") as execute:
                execute.annotate("rows", 7)
        root = tracer.last_root
        assert root.name == "query"
        assert root.attributes == {"backend": "algebra"}
        assert root.path_names() == ["parse", "execute"]
        assert root.child("execute").attributes == {"rows": 7}
        assert root.child("missing") is None

    def test_walk_is_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.last_root.walk()]
        assert names == ["a", "b", "c", "d"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]
        tracer.reset()
        assert tracer.last_root is None

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        root = tracer.last_root
        assert root.path_names() == ["inner"]
        # the stack unwound — a new span is a fresh root, not a child
        with tracer.span("after"):
            pass
        assert [span.name for span in tracer.roots] == ["outer", "after"]

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", key="value") as span:
            span.annotate("rows", 3)
        assert NULL_TRACER.roots == []
        assert span.attributes == {}


class TestObservedInstaller:
    @pytest.fixture()
    def store(self):
        s = DocumentStore(ARTICLE_DTD)
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        return s

    def test_observability_is_disabled_by_default(self, store):
        ctx = store._engine.ctx
        assert ctx.metrics is None
        assert ctx.tracer is None
        assert ctx.profiler is None
        assert store.instance.metrics is None
        # queries run fine with everything off
        assert len(store.query(
            "select t from my_article PATH_p.title(t)")) == 3

    def test_observed_installs_and_restores(self, store):
        ctx = store._engine.ctx
        store.build_text_index()
        registry = MetricsRegistry()
        with observed(ctx, metrics=registry):
            assert ctx.metrics is registry
            assert ctx.instance.metrics is registry
            assert ctx.text_index.metrics is registry
            store.query("select t from my_article PATH_p.title(t)")
        assert ctx.metrics is None
        assert ctx.instance.metrics is None
        assert ctx.text_index.metrics is None
        # the enumeration really was counted while installed
        assert registry.get("calculus.bindings") == 3
        assert registry.get("oodb.derefs") > 0

    def test_observed_restores_previous_observers(self, store):
        ctx = store._engine.ctx
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        with observed(ctx, metrics=outer):
            with observed(ctx, metrics=inner):
                store.query("select t from my_article PATH_p.title(t)")
            assert ctx.metrics is outer
            assert ctx.instance.metrics is outer
        assert inner.get("calculus.bindings") == 3
        assert outer.get("calculus.bindings") == 0
