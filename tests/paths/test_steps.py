"""Tests for concrete paths and their application."""

import pytest

from repro.errors import EvaluationError
from repro.oodb import (
    Instance,
    ListValue,
    STRING,
    SetValue,
    TupleValue,
    UnionValue,
    c,
    list_of,
    schema_from_classes,
    tuple_of,
)
from repro.paths import (
    AttrStep,
    DEREF,
    DerefStep,
    ElemStep,
    IndexStep,
    Path,
    path_length,
    path_project,
    path_startswith,
)
from repro.paths.pathops import path_concat


class TestPathValue:
    def test_rendering_matches_paper(self):
        path = Path.of("sections", 0, "subsectns", 0)
        assert str(path) == ".sections[0].subsectns[0]"

    def test_empty_path_renders_epsilon(self):
        assert str(Path.EMPTY) == "ε"

    def test_of_with_deref(self):
        path = Path.of("spouse", ..., "name")
        assert path.steps == (AttrStep("spouse"), DEREF, AttrStep("name"))

    def test_of_rejects_bool_and_junk(self):
        with pytest.raises(EvaluationError):
            Path.of(True)
        with pytest.raises(EvaluationError):
            Path.of(3.5)

    def test_equality_and_hash(self):
        assert Path.of("a", 0) == Path.of("a", 0)
        assert Path.of("a", 0) != Path.of("a", 1)
        assert len({Path.of("a"), Path.of("a"), Path.of("b")}) == 2

    def test_immutability(self):
        path = Path.of("a")
        with pytest.raises(AttributeError):
            path.steps = ()

    def test_concatenation(self):
        assert Path.of("a") + Path.of(0) == Path.of("a", 0)

    def test_extended(self):
        assert Path.of("a").extended(IndexStep(1)) == Path.of("a", 1)

    def test_prefix_suffix(self):
        path = Path.of("a", 0, "b")
        assert path.startswith(Path.of("a"))
        assert path.startswith(Path.EMPTY)
        assert not path.startswith(Path.of("b"))
        assert path.endswith(Path.of("b"))
        assert path.endswith(Path.EMPTY)

    def test_steps_are_hashable_and_comparable(self):
        assert AttrStep("a") == AttrStep("a")
        assert AttrStep("a") != IndexStep(0)
        assert DerefStep() == DEREF
        assert ElemStep(5) == ElemStep(5)
        assert len({AttrStep("a"), AttrStep("a"), DEREF, DEREF}) == 2


class TestPaperListFunctions:
    """Section 4.3 item 4: P = .sections[0].subsectns[0]."""

    def test_length_is_four(self):
        path = Path.of("sections", 0, "subsectns", 0)
        assert path_length(path) == 4

    def test_projection_inclusive(self):
        path = Path.of("sections", 0, "subsectns", 0)
        assert path_project(path, 0, 1) == Path.of("sections", 0)

    def test_projection_bad_bounds(self):
        path = Path.of("a", "b")
        with pytest.raises(EvaluationError):
            path_project(path, 2, 1)
        with pytest.raises(EvaluationError):
            path_project(path, -1, 0)

    def test_python_slicing_exclusive(self):
        path = Path.of("a", "b", "c")
        assert path[0:2] == Path.of("a", "b")
        assert path[1] == AttrStep("b")

    def test_startswith_function(self):
        assert path_startswith(Path.of("a", 0), Path.of("a"))
        with pytest.raises(EvaluationError):
            path_startswith(Path.of("a"), "not a path")

    def test_concat_function(self):
        assert path_concat(Path.of("a"), Path.of("b")) == Path.of("a", "b")

    def test_length_rejects_non_path(self):
        with pytest.raises(EvaluationError):
            path_length("not a path")


@pytest.fixture
def db():
    schema = schema_from_classes(
        {"Title": STRING,
         "Section": tuple_of(("title", c("Title"))),
         "Article": tuple_of(
             ("title", c("Title")),
             ("sections", list_of(c("Section"))))})
    return Instance(schema)


class TestApplication:
    def test_tuple_and_list_steps(self, db):
        value = TupleValue([
            ("title", "T"),
            ("sections", ListValue(["s0", "s1"]))])
        assert Path.of("title").apply(value) == "T"
        assert Path.of("sections", 1).apply(value) == "s1"

    def test_deref(self, db):
        title = db.new_object("Title", "Introduction")
        value = TupleValue([("title", title)])
        assert Path.of("title", ...).apply(value, db) == "Introduction"

    def test_deref_without_instance_fails(self, db):
        title = db.new_object("Title", "Introduction")
        value = TupleValue([("title", title)])
        with pytest.raises(EvaluationError):
            Path.of("title", ...).apply(value)

    def test_set_element_step(self):
        value = SetValue([1, 2, 3])
        assert Path([ElemStep(2)]).apply(value) == 2
        with pytest.raises(EvaluationError):
            Path([ElemStep(9)]).apply(value)

    def test_index_into_tuple_heterogeneous_view(self):
        # Section 5.1: [to: 'x', from: 'y'][0] = [to: 'x']
        value = TupleValue([("to", "x"), ("from", "y")])
        first = Path.of(0).apply(value)
        assert first == TupleValue([("to", "x")])

    def test_implicit_selector_through_marker(self):
        # s.title where s = [a1: [title: 'T', bodies: ...]]
        section = UnionValue("a1", TupleValue([
            ("title", "T"), ("bodies", ListValue())]))
        assert Path.of("title").apply(section) == "T"
        # the explicit marker also works
        assert Path.of("a1", "title").apply(section) == "T"

    def test_missing_attribute_fails(self):
        value = TupleValue([("a", 1)])
        with pytest.raises(EvaluationError):
            Path.of("ghost").apply(value)

    def test_index_out_of_range_fails(self):
        with pytest.raises(EvaluationError):
            Path.of(5).apply(ListValue([1]))

    def test_attr_on_atom_fails(self):
        with pytest.raises(EvaluationError):
            Path.of("a").apply(42)

    def test_deref_on_non_oid_fails(self, db):
        with pytest.raises(EvaluationError):
            Path([DEREF]).apply("not an oid", db)

    def test_empty_path_is_identity(self):
        assert Path.EMPTY.apply(42) == 42
