"""Property-based tests on path invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oodb import Instance, ListValue, STRING, TupleValue, c
from repro.oodb import schema_from_classes, tuple_of
from repro.oodb.values import SetValue
from repro.paths import (
    LIBERAL,
    RESTRICTED,
    Path,
    enumerate_paths,
    paths_from,
)
from repro.paths.pathops import path_length, path_project
from repro.paths.steps import AttrStep, DEREF, IndexStep

# -- value strategies (acyclic trees, no oids) -------------------------------

attribute_names = st.sampled_from(["a", "b", "c", "d"])
atoms = st.one_of(st.integers(-9, 9), st.text(max_size=4))


def _extend(children):
    return st.one_of(
        st.builds(TupleValue, st.lists(
            st.tuples(attribute_names, children), max_size=3,
            unique_by=lambda kv: kv[0])),
        st.builds(ListValue, st.lists(children, max_size=3)),
        st.builds(SetValue, st.lists(children, max_size=3)),
    )


values = st.recursive(atoms, _extend, max_leaves=15)

# -- path strategies ----------------------------------------------------------

steps = st.one_of(
    st.builds(AttrStep, attribute_names),
    st.builds(IndexStep, st.integers(0, 3)),
    st.just(DEREF),
)
paths = st.builds(Path, st.lists(steps, max_size=6))


class TestPathValueProperties:
    @given(paths, paths)
    def test_concatenation_length(self, left, right):
        assert len(left + right) == len(left) + len(right)

    @given(paths, paths)
    def test_concatenation_prefix(self, left, right):
        assert (left + right).startswith(left)
        assert (left + right).endswith(right)

    @given(paths)
    def test_projection_covers_whole_path(self, path):
        if len(path):
            assert path_project(path, 0, len(path) - 1) == path

    @given(paths)
    def test_length_function(self, path):
        assert path_length(path) == len(path)

    @given(paths)
    def test_string_rendering_unique_per_path(self, path):
        # two equal paths render equally; rendering is injective on
        # these step types (no ElemStep involved)
        rebuilt = Path(tuple(path))
        assert str(rebuilt) == str(path)
        assert rebuilt == path


class TestEnumerationProperties:
    @given(values)
    @settings(max_examples=100)
    def test_every_enumerated_path_applies(self, value):
        for path, reached in paths_from(value):
            assert path.apply(value) == reached

    @given(values)
    @settings(max_examples=100)
    def test_paths_are_unique(self, value):
        listed = enumerate_paths(value)
        assert len(listed) == len(set(listed))

    @given(values)
    def test_empty_path_always_first(self, value):
        assert enumerate_paths(value)[0] == Path.EMPTY

    @given(values)
    @settings(max_examples=60)
    def test_prefix_closure(self, value):
        """The path set is prefix-closed (every prefix of an enumerated
        path is enumerated)."""
        listed = set(enumerate_paths(value))
        for path in listed:
            for cut in range(len(path)):
                assert Path(path.steps[:cut]) in listed

    @given(values)
    @settings(max_examples=60)
    def test_restricted_equals_liberal_without_objects(self, value):
        # with no oids the two semantics coincide
        assert enumerate_paths(value, semantics=RESTRICTED) == \
            enumerate_paths(value, semantics=LIBERAL)


class TestSemanticsWithObjects:
    @given(st.integers(1, 6))
    def test_restricted_subset_of_liberal_on_chains(self, length):
        schema = schema_from_classes(
            {"Node": tuple_of(("label", STRING), ("next", c("Node")))})
        db = Instance(schema)
        nodes = [db.new_object("Node") for _ in range(length)]
        from repro.oodb.values import NIL
        for position, node in enumerate(nodes):
            successor = (nodes[position + 1]
                         if position + 1 < length else NIL)
            db.set_value(node, TupleValue([
                ("label", f"n{position}"), ("next", successor)]))
        restricted = set(enumerate_paths(nodes[0], db, RESTRICTED))
        liberal = set(enumerate_paths(nodes[0], db, LIBERAL))
        assert restricted <= liberal
        # restricted is schema-bounded: at most one Node dereference
        assert all(
            sum(1 for step in path if step == DEREF) <= 1
            for path in restricted)
        # liberal reaches the end of the chain
        deepest = max(
            sum(1 for step in path if step == DEREF)
            for path in liberal)
        assert deepest == length
