"""Tests for type-level path enumeration (algebraization support)."""

import pytest

from repro.oodb import (
    STRING,
    c,
    list_of,
    schema_from_classes,
    set_of,
    tuple_of,
    union_of,
)
from repro.paths import enumerate_schema_paths
from repro.paths.schema_paths import (
    SchemaAttr,
    SchemaDeref,
    SchemaElem,
    SchemaIndex,
    paths_ending_with_attribute,
)


@pytest.fixture
def schema():
    return schema_from_classes(
        {"Title": STRING,
         "Section": union_of(
             ("a1", tuple_of(("title", c("Title")),
                             ("bodies", list_of(STRING)))),
             ("a2", tuple_of(("title", c("Title")),
                             ("subsectns", list_of(c("Subsectn")))))),
         "Subsectn": tuple_of(("title", c("Title"))),
         "Article": tuple_of(
             ("title", c("Title")),
             ("sections", list_of(c("Section"))))},
        roots={"Articles": list_of(c("Article"))})


class TestEnumeration:
    def test_starts_with_empty_path(self, schema):
        paths = enumerate_schema_paths(schema, c("Article"))
        assert len(paths[0]) == 0
        assert paths[0].target == c("Article")

    def test_crosses_markers_and_collections(self, schema):
        paths = enumerate_schema_paths(schema, c("Article"))
        rendered = {str(p) for p in paths}
        assert ("->(Article).sections[*]->(Section).a1.title : Title"
                in rendered)
        assert ("->(Article).sections[*]->(Section).a2.subsectns[*]"
                "->(Subsectn).title : Title" in rendered)

    def test_restricted_no_class_crossed_twice(self, schema):
        for schema_path in enumerate_schema_paths(schema, c("Article")):
            crossed = [s.class_name for s in schema_path.steps
                       if isinstance(s, SchemaDeref)]
            assert len(crossed) == len(set(crossed))

    def test_recursive_schema_terminates(self):
        recursive = schema_from_classes({
            "Person": tuple_of(("name", STRING),
                               ("spouse", c("Person")))})
        paths = enumerate_schema_paths(recursive, c("Person"))
        # -> .spouse stops before a second Person dereference
        assert max(len(p) for p in paths) <= 3
        assert any(str(p).endswith(".spouse : Person") for p in paths)

    def test_set_elements_enumerated(self):
        schema = schema_from_classes(
            {"A": set_of(STRING)})
        paths = enumerate_schema_paths(schema, c("A"))
        assert any(isinstance(s, SchemaElem)
                   for p in paths for s in p.steps)

    def test_atomic_root_yields_only_empty(self, schema):
        paths = enumerate_schema_paths(schema, STRING)
        assert len(paths) == 1


class TestAttributeTargets:
    def test_paths_ending_with_title(self, schema):
        matches = paths_ending_with_attribute(
            schema, c("Article"), "title")
        # Article tuple, a1 tuple, a2 tuple, Subsectn tuple
        assert len(matches) == 4

    def test_paths_ending_with_marker(self, schema):
        matches = paths_ending_with_attribute(schema, c("Article"), "a1")
        assert len(matches) == 1
        target = matches[0].target
        assert target.has_marker("a1")

    def test_no_match_for_unknown_attribute(self, schema):
        assert paths_ending_with_attribute(
            schema, c("Article"), "ghost") == []

    def test_last_attribute_property(self, schema):
        paths = enumerate_schema_paths(schema, c("Article"))
        with_title = [p for p in paths if p.last_attribute == "title"]
        assert with_title
        for p in with_title:
            assert isinstance(p.steps[-1], SchemaAttr)
            assert p.target == c("Title")

    def test_subclass_dereference(self):
        schema = schema_from_classes(
            {"Text": STRING, "Title": STRING,
             "Doc": tuple_of(("t", c("Text")))},
            parents={"Title": ["Text"]})
        paths = enumerate_schema_paths(schema, c("Doc"))
        rendered = {str(p) for p in paths}
        # a Text-typed attribute may hold a Title oid: both derefs appear
        assert any("->(Text)" in r for r in rendered)
        assert any("->(Title)" in r for r in rendered)
