"""Tests for concrete-path enumeration under both semantics."""

import pytest

from repro.errors import EvaluationError
from repro.oodb import (
    Instance,
    ListValue,
    STRING,
    SetValue,
    TupleValue,
    c,
    schema_from_classes,
    tuple_of,
)
from repro.paths import LIBERAL, RESTRICTED, Path, enumerate_paths, paths_from
from repro.paths.enumeration import path_difference


class TestValueEnumeration:
    def test_includes_empty_path(self):
        paths = enumerate_paths(42)
        assert paths == [Path.EMPTY]

    def test_tuple_paths(self):
        value = TupleValue([("a", 1), ("b", 2)])
        paths = enumerate_paths(value)
        assert set(paths) == {Path.EMPTY, Path.of("a"), Path.of("b")}

    def test_nested_paths_document_order(self):
        value = TupleValue([
            ("title", "T"),
            ("sections", ListValue([
                TupleValue([("title", "S0")]),
                TupleValue([("title", "S1")])]))])
        paths = enumerate_paths(value)
        assert Path.of("sections", 0, "title") in paths
        assert Path.of("sections", 1, "title") in paths
        # deterministic order: first run == second run
        assert paths == enumerate_paths(value)

    def test_set_paths(self):
        value = SetValue([1, 2])
        paths = enumerate_paths(value)
        assert len(paths) == 3  # empty + one per element

    def test_reached_values(self):
        value = TupleValue([("a", ListValue(["x"]))])
        reached = dict(paths_from(value))
        assert reached[Path.EMPTY] == value
        assert reached[Path.of("a", 0)] == "x"

    def test_max_paths_guard(self):
        value = ListValue(range(100))
        with pytest.raises(EvaluationError):
            enumerate_paths(value, max_paths=10)

    def test_unknown_semantics_rejected(self):
        with pytest.raises(EvaluationError):
            enumerate_paths(1, semantics="bogus")


@pytest.fixture
def spouses_db():
    """The Section 5.2 example: persons with spouses (a class cycle)."""
    schema = schema_from_classes({
        "Person": tuple_of(
            ("name", STRING),
            ("husband", c("Person")))})
    db = Instance(schema)
    alice = db.new_object("Person")
    bob = db.new_object("Person")
    db.set_value(alice, TupleValue([("name", "Alice"), ("husband", bob)]))
    db.set_value(bob, TupleValue([("name", "Bob"), ("husband", alice)]))
    return db, alice, bob


class TestRestrictedSemantics:
    def test_one_deref_per_class(self, spouses_db):
        db, alice, _ = spouses_db
        paths = enumerate_paths(alice, db, RESTRICTED)
        # -> .name reachable; -> .husband -> .name is NOT (two Person
        # dereferences) — exactly the paper's Alice example.
        assert Path.of(..., "name") in paths
        assert Path.of(..., "husband") in paths
        assert Path.of(..., "husband", ..., "name") not in paths

    def test_restricted_is_schema_bounded(self, spouses_db):
        db, alice, _ = spouses_db
        paths = enumerate_paths(alice, db, RESTRICTED)
        assert max(len(p) for p in paths) <= 3


class TestLiberalSemantics:
    def test_no_object_visited_twice(self, spouses_db):
        db, alice, _ = spouses_db
        paths = enumerate_paths(alice, db, LIBERAL)
        # Alice -> husband(Bob) -> name works: two distinct objects.
        assert Path.of(..., "husband", ..., "name") in paths
        # But looping back to Alice does not.
        assert Path.of(..., "husband", ..., "husband", ..., "name") \
            not in paths

    def test_liberal_superset_of_restricted(self, spouses_db):
        db, alice, _ = spouses_db
        restricted = set(enumerate_paths(alice, db, RESTRICTED))
        liberal = set(enumerate_paths(alice, db, LIBERAL))
        assert restricted <= liberal
        assert liberal - restricted  # strictly more on cyclic data

    def test_liberal_terminates_on_cycles(self, spouses_db):
        db, alice, _ = spouses_db
        # termination itself is the assertion
        assert len(enumerate_paths(alice, db, LIBERAL)) < 100


class TestPathDifference:
    """Q4: structural difference between document versions."""

    def test_added_paths_detected(self):
        old = TupleValue([("title", "T"),
                          ("sections", ListValue([
                              TupleValue([("title", "S0")])]))])
        new = TupleValue([("title", "T"),
                          ("sections", ListValue([
                              TupleValue([("title", "S0")]),
                              TupleValue([("title", "S1")])]))])
        diff = path_difference(new, old)
        assert Path.of("sections", 1) in diff
        assert Path.of("sections", 1, "title") in diff
        assert Path.of("title") not in diff

    def test_identical_versions_empty_diff(self):
        value = TupleValue([("a", 1)])
        assert path_difference(value, value) == []

    def test_removed_paths_via_swapped_arguments(self):
        old = TupleValue([("a", 1), ("b", 2)])
        new = TupleValue([("a", 1)])
        assert path_difference(old, new) == [Path.of("b")]
