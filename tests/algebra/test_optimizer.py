"""Tests for the plan optimizer (index utilisation + pushdown)."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan
from repro.algebra.operators import IndexFilterOp, SelectOp
from repro.algebra.optimizer import optimize


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD)
    for tree in generate_corpus(10, seed=7):
        s.load_tree(tree)
    s.build_text_index()
    return s


CONTAINS_QUERY = """
    select a from a in Articles
    where a contains ("SGML" and "OODBMS")
"""


def _find(plan, klass):
    found = []
    nodes = [plan]
    while nodes:
        node = nodes.pop()
        if isinstance(node, klass):
            found.append(node)
        nodes.extend(node.children())
    return found


class TestIndexRewrite:
    def test_contains_select_becomes_index_filter(self, store):
        query = store._engine.translate(CONTAINS_QUERY)
        plan = compile_query(query, store.schema, store._engine.ctx)
        assert _find(plan, SelectOp)
        optimized = optimize(plan)
        assert _find(optimized, IndexFilterOp)

    def test_optimized_plan_gives_same_results(self, store):
        query = store._engine.translate(CONTAINS_QUERY)
        plan = compile_query(query, store.schema, store._engine.ctx)
        baseline = execute_plan(plan, store._engine.ctx)
        optimized = optimize(plan)
        assert execute_plan(optimized, store._engine.ctx) == baseline

    def test_index_filter_without_index_still_correct(self, store):
        from repro.calculus import EvalContext
        query = store._engine.translate(CONTAINS_QUERY)
        plan = optimize(
            compile_query(query, store.schema, store._engine.ctx))
        bare_ctx = EvalContext(store.instance,
                               provenance=store.loader.provenance)
        assert bare_ctx.text_index is None
        with_index = execute_plan(plan, store._engine.ctx)
        without_index = execute_plan(plan, bare_ctx)
        assert with_index == without_index

    def test_rewrite_can_be_disabled(self, store):
        query = store._engine.translate(CONTAINS_QUERY)
        plan = compile_query(query, store.schema, store._engine.ctx)
        untouched = optimize(plan, use_text_index=False)
        assert not _find(untouched, IndexFilterOp)

    def test_non_contains_selects_left_alone(self, store):
        query = store._engine.translate(
            "select a from a in Articles where a.status = 'final'")
        plan = compile_query(query, store.schema, store._engine.ctx)
        optimized = optimize(plan)
        assert not _find(optimized, IndexFilterOp)


class TestPushdown:
    def test_pushdown_preserves_results(self, store):
        text = """
            select t from a in Articles, s in a.sections,
                          a PATH_p.title(t)
            where a.status = "final"
        """
        query = store._engine.translate(text)
        plan = compile_query(query, store.schema, store._engine.ctx)
        pushed = optimize(plan, use_text_index=False, pushdown=True)
        assert execute_plan(plan, store._engine.ctx) == \
            execute_plan(pushed, store._engine.ctx)

    def test_selection_moves_below_unrelated_operators(self, store):
        # the status filter depends only on `a`; after pushdown it must
        # sit below the section unnesting
        text = """
            select s from a in Articles, s in a.sections
            where a.status = "final"
        """
        query = store._engine.translate(text)
        plan = compile_query(query, store.schema, store._engine.ctx)
        pushed = optimize(plan, use_text_index=False, pushdown=True)

        def depth_of(node, klass, depth=0):
            if isinstance(node, klass):
                return depth
            for child in node.children():
                found = depth_of(child, klass, depth + 1)
                if found is not None:
                    return found
            return None

        original_depth = depth_of(plan, SelectOp)
        pushed_depth = depth_of(pushed, SelectOp)
        assert pushed_depth > original_depth
        assert execute_plan(plan, store._engine.ctx) == \
            execute_plan(pushed, store._engine.ctx)
