"""Tests for the Section-5.4 algebraization.

The central property: for every query, the compiled algebra plan
produces exactly the same result set as the calculus interpreter — and
queries with path/attribute variables compile into plans containing a
Union over variable-free navigation chains.
"""

import pytest

from repro import DocumentStore
from repro.calculus import EvalContext, evaluate_query
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.corpus.knuth import build_knuth_database
from repro.corpus.letters import build_letters_database
from repro.errors import CompilationError
from repro.algebra.compile import compile_query
from repro.algebra.execute import count_unions, execute_plan, plan_size
from repro.algebra.operators import (
    MakePathOp,
    ProjectOp,
    UnionOp,
)
from repro.o2sql import QueryEngine


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.load_text(SAMPLE_ARTICLE, name="my_old_article")
    for tree in generate_corpus(8, seed=42):
        s.load_tree(tree)
    return s


def compile_and_run(store, text):
    query = store._engine.translate(text)
    plan = compile_query(query, store.schema, store._engine.ctx)
    return plan, execute_plan(plan, store._engine.ctx)


EQUIVALENCE_QUERIES = [
    # plain select-from-where
    "select a from a in Articles",
    "select t from a in Articles, t in a.authors",
    # Q1 shape
    """select tuple (t: a.title, f_author: first(a.authors))
       from a in Articles, s in a.sections
       where s.title contains ("SGML" and "OODBMS")""",
    # union iteration (Q2)
    """select ss from a in Articles, s in a.sections,
              ss in s.subsectns""",
    # path variables (Q3)
    "select t from my_article PATH_p.title(t)",
    "select PATH_p from my_article PATH_p.title",
    # attribute variables (Q5)
    """select name(ATT_a) from my_article PATH_p.ATT_a(val)
       where val contains ("final")""",
    # difference (Q4)
    "my_article PATH_p - my_old_article PATH_p",
    # conditions and negation
    """select a from a in Articles
       where not a.status = "draft" """,
    # disjunction
    """select a from a in Articles
       where a.status = "draft" or a.status = "final" """,
    # positional access
    "select x from my_article PATH_p[0](x)",
]


class TestCalculusAlgebraEquivalence:
    @pytest.mark.parametrize("text", EQUIVALENCE_QUERIES,
                             ids=[q.split("\n")[0][:45]
                                  for q in EQUIVALENCE_QUERIES])
    def test_same_results(self, store, text):
        query = store._engine.translate(text)
        calculus_result = evaluate_query(query, store._engine.ctx)
        plan, algebra_result = compile_and_run(store, text)
        assert algebra_result == calculus_result

    def test_q6_letters(self):
        engine = QueryEngine(build_letters_database())
        text = """
            select letter
            from letter in Letters, letter[i].from, letter[j].to
            where i < j
        """
        query = engine.translate(text)
        from repro.calculus import evaluate_query as ev
        calculus_result = ev(query, engine.ctx)
        plan = compile_query(query, engine.instance.schema, engine.ctx)
        assert execute_plan(plan, engine.ctx) == calculus_result
        assert len(calculus_result) == 3

    def test_knuth_attribute_of_jo(self):
        engine = QueryEngine(build_knuth_database())
        text_query = engine.translate(
            'select ATT_a from Knuth_Books PATH_p.ATT_a(x) '
            'where x = "Jo"')
        from repro.calculus import evaluate_query as ev
        calculus_result = ev(text_query, engine.ctx)
        plan = compile_query(text_query, engine.instance.schema,
                             engine.ctx)
        assert execute_plan(plan, engine.ctx) == calculus_result
        assert set(calculus_result) == {"author"}


class TestPlanStructure:
    def test_path_variable_compiles_to_union(self, store):
        query = store._engine.translate(
            "select t from my_article PATH_p.title(t)")
        plan = compile_query(query, store.schema, store._engine.ctx)
        assert count_unions(plan) >= 1

    def test_variable_free_query_has_no_union(self, store):
        query = store._engine.translate(
            "select a from a in Articles where a.status = 'final'")
        plan = compile_query(query, store.schema, store._engine.ctx)
        assert count_unions(plan) == 0

    def test_union_branches_are_path_variable_free(self, store):
        query = store._engine.translate(
            "select t from my_article PATH_p.title(t)")
        plan = compile_query(query, store.schema, store._engine.ctx)

        def find_union(node):
            if isinstance(node, UnionOp):
                return node
            for child in node.children():
                found = find_union(child)
                if found is not None:
                    return found
            return None

        union = find_union(plan)
        assert union is not None
        # every branch reconstructs the path via MakePath (no residual
        # path variable matching at runtime)
        for branch in union.branches:
            nodes = [branch]
            has_makepath = False
            while nodes:
                node = nodes.pop()
                if isinstance(node, MakePathOp):
                    has_makepath = True
                nodes.extend(node.children())
            assert has_makepath

    def test_plan_is_rooted_at_project(self, store):
        query = store._engine.translate("select a from a in Articles")
        plan = compile_query(query, store.schema, store._engine.ctx)
        assert isinstance(plan, ProjectOp)
        assert plan_size(plan) >= 3

    def test_describe_renders_tree(self, store):
        query = store._engine.translate(
            "select t from my_article PATH_p.title(t)")
        plan = compile_query(query, store.schema, store._engine.ctx)
        rendered = plan.describe()
        assert "Project" in rendered
        assert "MakePath" in rendered
        assert "Seed" in rendered

    def test_liberal_semantics_rejected(self, store):
        query = store._engine.translate("select a from a in Articles")
        ctx = EvalContext(store.instance, path_semantics="liberal")
        with pytest.raises(CompilationError):
            compile_query(query, store.schema, ctx)


class TestEngineAlgebraBackend:
    def test_backend_switch(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        result = s.query("select t from my_article PATH_p.title(t)")
        assert len(result) == 3

    def test_backends_agree_on_figure2(self):
        algebra = DocumentStore(ARTICLE_DTD, backend="algebra")
        calculus = DocumentStore(ARTICLE_DTD, backend="calculus")
        for s in (algebra, calculus):
            s.load_text(SAMPLE_ARTICLE, name="my_article")
        queries = [
            "select t from my_article PATH_p.title(t)",
            "select a from a in Articles",
            """select name(ATT_a) from my_article PATH_p.ATT_a(val)
               where val contains ("final")""",
        ]
        for text in queries:
            assert algebra.query(text) == calculus.query(text), text
