"""Property-based equivalence: calculus interpreter vs compiled algebra.

Hypothesis generates random path predicates over the Knuth_Books
database; for every generated query the compiled plan must return
exactly the interpreter's result — the central soundness/completeness
claim of the Section-5.4 algebraization.

The sweep takes tens of seconds, so it carries the ``bench`` marker
and stays out of the ``-m "not bench"`` inner loop; targeted
equivalence coverage remains there (tests/algebra/test_compile_execute
and tests/observe/test_backend_parity).
"""

from functools import lru_cache

import pytest

pytestmark = pytest.mark.bench
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.calculus import (
    AttVar,
    Bind,
    DataVar,
    Deref,
    EvalContext,
    Index,
    Name,
    PathAtom,
    PathTerm,
    PathVar,
    Query,
    Sel,
    SetBind,
    evaluate_query,
)
from repro.corpus.knuth import build_knuth_database
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan

DB = build_knuth_database()
CTX = EvalContext(DB)

ATTRIBUTES = ["volumes", "chapters", "title", "status", "sections",
              "review", "author", "body", "series"]


@st.composite
def path_components(draw):
    """A random component sequence with fresh variable names."""
    count = draw(st.integers(1, 5))
    components = []
    fresh = iter(range(100))
    bind_vars = 0
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["pvar", "sel", "selvar", "index", "indexvar", "deref",
             "bind", "setbind"]))
        if kind == "pvar":
            components.append(PathVar(f"P{next(fresh)}"))
        elif kind == "sel":
            components.append(Sel(draw(st.sampled_from(ATTRIBUTES))))
        elif kind == "selvar":
            components.append(Sel(AttVar(f"A{next(fresh)}")))
        elif kind == "index":
            components.append(Index(draw(st.integers(0, 2))))
        elif kind == "indexvar":
            components.append(Index(DataVar(f"I{next(fresh)}")))
        elif kind == "deref":
            components.append(Deref())
        elif kind == "bind":
            components.append(Bind(DataVar(f"X{next(fresh)}")))
            bind_vars += 1
        else:
            components.append(SetBind(DataVar(f"S{next(fresh)}")))
            bind_vars += 1
    if bind_vars == 0:
        components.append(Bind(DataVar("Xlast")))
    return components


def _query_of(components) -> Query:
    atom = PathAtom(Name("Knuth_Books"), PathTerm(components))
    head = atom.path.variables()
    return Query(head, atom)


class TestRandomPathPredicates:
    @given(path_components())
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_algebra_equals_calculus(self, components):
        query = _query_of(components)
        interpreted = evaluate_query(query, CTX)
        plan = compile_query(query, DB.schema, CTX)
        compiled = execute_plan(plan, CTX)
        assert compiled == interpreted

    @given(path_components())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimized_plan_equals_calculus(self, components):
        from repro.algebra.optimizer import optimize
        query = _query_of(components)
        interpreted = evaluate_query(query, CTX)
        plan = optimize(compile_query(query, DB.schema, CTX))
        assert execute_plan(plan, CTX) == interpreted

    @given(path_components())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_evaluation_is_deterministic(self, components):
        query = _query_of(components)
        assert evaluate_query(query, CTX) == evaluate_query(query, CTX)


# -- factored-DAG differential over randomized corpora ----------------------

from repro import DocumentStore  # noqa: E402
from repro.corpus import ARTICLE_DTD  # noqa: E402
from repro.corpus.generator import generate_corpus  # noqa: E402
from repro.calculus.formulas import (  # noqa: E402
    And,
    Eq,
    Forall,
    Implies,
    In,
    Not,
)
from repro.calculus.terms import Const, ListTerm  # noqa: E402
from repro.algebra.optimizer import optimize  # noqa: E402

ARTICLE_ATTRIBUTES = ["title", "author", "sections", "status", "body",
                      "abstract", "subsectn", "paragr", "caption"]


def _refuse_mutation(*_args, **_kwargs):
    raise RuntimeError(
        "shared corpus store is frozen — one hypothesis example must "
        "not poison later ones; build a private DocumentStore instead")


@lru_cache(maxsize=None)
def corpus_store(size: int, seed: int) -> DocumentStore:
    """A shared, *frozen* corpus store per (size, seed).

    Execution always goes through ``engine.ctx.fork()``, and the
    loaders are disabled after construction, so examples can only read.
    """
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    for tree in generate_corpus(size, seed=seed):
        store.load_tree(tree, validate=False)
    store.load_tree = _refuse_mutation
    store.load_text = _refuse_mutation
    return store


@st.composite
def article_components(draw):
    """Path components over the article schema (same shapes as
    path_components, different attribute vocabulary)."""
    count = draw(st.integers(1, 4))
    components = []
    fresh = iter(range(100))
    bind_vars = 0
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["pvar", "sel", "selvar", "index", "indexvar", "deref",
             "bind", "setbind"]))
        if kind == "pvar":
            components.append(PathVar(f"P{next(fresh)}"))
        elif kind == "sel":
            components.append(Sel(draw(
                st.sampled_from(ARTICLE_ATTRIBUTES))))
        elif kind == "selvar":
            components.append(Sel(AttVar(f"A{next(fresh)}")))
        elif kind == "index":
            components.append(Index(draw(st.integers(0, 2))))
        elif kind == "indexvar":
            components.append(Index(DataVar(f"I{next(fresh)}")))
        elif kind == "deref":
            components.append(Deref())
        elif kind == "bind":
            components.append(Bind(DataVar(f"X{next(fresh)}")))
            bind_vars += 1
        else:
            components.append(SetBind(DataVar(f"S{next(fresh)}")))
            bind_vars += 1
    if bind_vars == 0:
        components.append(Bind(DataVar("Xlast")))
    return components


def _article_query(components, mode: str) -> Query:
    """``a ∈ Articles ∧ a PATH(...)`` plus an optional residual that
    forces a NegationOp or a quantifier FormulaOp fallback."""
    article = DataVar("a")
    atom = PathAtom(article, PathTerm(components))
    conjuncts = [In(article, Name("Articles")), atom]
    witness = (atom.path.variables() or [article])[-1]
    if mode == "negation":
        conjuncts.append(Not(Eq(witness, Const("draft"))))
    elif mode == "forall":
        probe = DataVar("q")
        conjuncts.append(Forall([probe], Implies(
            In(probe, ListTerm([witness])), Eq(probe, witness))))
    head = [article] + list(atom.path.variables())
    return Query(head, And(*conjuncts))


class TestFactoredDagDifferential:
    """Factored DAG plans must be observationally identical to the
    unfactored union-of-plans — on random corpora, random path shapes,
    and with NegationOp / quantifier FormulaOp residuals in the plan.
    """

    @given(components=article_components(),
           size=st.sampled_from([4, 9]),
           seed=st.sampled_from([3, 11]),
           mode=st.sampled_from(["plain", "negation", "forall"]))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_factored_equals_unfactored(self, components, size, seed,
                                        mode):
        store = corpus_store(size, seed)
        engine = store._engine
        query = _article_query(components, mode)
        plan = compile_query(query, engine.instance.schema,
                             path_semantics="restricted")
        unfactored = optimize(plan, factor=False)
        factored = optimize(plan)
        ctx = engine.ctx.fork()
        factored_result = execute_plan(factored, ctx)
        assert factored_result == execute_plan(unfactored, ctx)
        # full cross-backend agreement: the calculus interpreter is
        # the reference semantics (the Sel(AttVar)-over-union-content
        # divergence this once quarantined is fixed; the minimized
        # repro is tests/diffcheck/fixtures/sel_attvar_union_content
        # .json, replayed in tier 1)
        reference = evaluate_query(query, engine.ctx.fork())
        assert factored_result == reference

    @given(components=article_components(),
           size=st.sampled_from([4, 9]),
           seed=st.sampled_from([3, 11]),
           mode=st.sampled_from(["plain", "negation", "forall"]))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_costed_equals_unfactored(self, components, size, seed,
                                      mode):
        """The cost stage (branch reordering, access-path choice,
        provable-empty pruning) must be observationally invisible —
        and every costed plan must pass the PC-COST verifier gate
        (``verify="raise"``)."""
        store = corpus_store(size, seed)
        engine = store._engine
        query = _article_query(components, mode)
        plan = compile_query(query, engine.instance.schema,
                             path_semantics="restricted")
        unfactored = optimize(plan, factor=False)
        costed = optimize(plan, verify="raise", query=query,
                          stats=store.stats_manager.snapshot())
        ctx = engine.ctx.fork()
        assert execute_plan(costed, ctx) == execute_plan(unfactored, ctx)

    @pytest.mark.parametrize("query", [
        "select t from my_article PATH_p.title(t)",
        'select name(ATT_a) from my_article PATH_p.ATT_a(val) '
        'where val contains ("final")',
        'select t from a in Articles, a PATH_p.title(t) '
        'where not a.status = "draft"',
    ])
    def test_factored_store_matches_calculus_store(self, query):
        """Both backends, end to end: a calculus store and an algebra
        store (whose plans are factored DAGs) agree on the O2SQL
        surface queries over a generated corpus."""
        algebra = corpus_store(9, 3)
        calculus = DocumentStore(ARTICLE_DTD, backend="calculus")
        for tree in generate_corpus(9, seed=3):
            calculus.load_tree(tree, validate=False)
        from repro.corpus import SAMPLE_ARTICLE
        if "my_article" in query:
            algebra = DocumentStore(ARTICLE_DTD, backend="algebra")
            for tree in generate_corpus(9, seed=3):
                algebra.load_tree(tree, validate=False)
            algebra.load_text(SAMPLE_ARTICLE, name="my_article")
            calculus.load_text(SAMPLE_ARTICLE, name="my_article")
        assert algebra.query(query) == calculus.query(query)
