"""Property-based equivalence: calculus interpreter vs compiled algebra.

Hypothesis generates random path predicates over the Knuth_Books
database; for every generated query the compiled plan must return
exactly the interpreter's result — the central soundness/completeness
claim of the Section-5.4 algebraization.

The sweep takes tens of seconds, so it carries the ``bench`` marker
and stays out of the ``-m "not bench"`` inner loop; targeted
equivalence coverage remains there (tests/algebra/test_compile_execute
and tests/observe/test_backend_parity).
"""

import pytest

pytestmark = pytest.mark.bench
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.calculus import (
    AttVar,
    Bind,
    DataVar,
    Deref,
    EvalContext,
    Index,
    Name,
    PathAtom,
    PathTerm,
    PathVar,
    Query,
    Sel,
    SetBind,
    evaluate_query,
)
from repro.corpus.knuth import build_knuth_database
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan

DB = build_knuth_database()
CTX = EvalContext(DB)

ATTRIBUTES = ["volumes", "chapters", "title", "status", "sections",
              "review", "author", "body", "series"]


@st.composite
def path_components(draw):
    """A random component sequence with fresh variable names."""
    count = draw(st.integers(1, 5))
    components = []
    fresh = iter(range(100))
    bind_vars = 0
    for _ in range(count):
        kind = draw(st.sampled_from(
            ["pvar", "sel", "selvar", "index", "indexvar", "deref",
             "bind", "setbind"]))
        if kind == "pvar":
            components.append(PathVar(f"P{next(fresh)}"))
        elif kind == "sel":
            components.append(Sel(draw(st.sampled_from(ATTRIBUTES))))
        elif kind == "selvar":
            components.append(Sel(AttVar(f"A{next(fresh)}")))
        elif kind == "index":
            components.append(Index(draw(st.integers(0, 2))))
        elif kind == "indexvar":
            components.append(Index(DataVar(f"I{next(fresh)}")))
        elif kind == "deref":
            components.append(Deref())
        elif kind == "bind":
            components.append(Bind(DataVar(f"X{next(fresh)}")))
            bind_vars += 1
        else:
            components.append(SetBind(DataVar(f"S{next(fresh)}")))
            bind_vars += 1
    if bind_vars == 0:
        components.append(Bind(DataVar("Xlast")))
    return components


def _query_of(components) -> Query:
    atom = PathAtom(Name("Knuth_Books"), PathTerm(components))
    head = atom.path.variables()
    return Query(head, atom)


class TestRandomPathPredicates:
    @given(path_components())
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_algebra_equals_calculus(self, components):
        query = _query_of(components)
        interpreted = evaluate_query(query, CTX)
        plan = compile_query(query, DB.schema, CTX)
        compiled = execute_plan(plan, CTX)
        assert compiled == interpreted

    @given(path_components())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_optimized_plan_equals_calculus(self, components):
        from repro.algebra.optimizer import optimize
        query = _query_of(components)
        interpreted = evaluate_query(query, CTX)
        plan = optimize(compile_query(query, DB.schema, CTX))
        assert execute_plan(plan, CTX) == interpreted

    @given(path_components())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_evaluation_is_deterministic(self, components):
        query = _query_of(components)
        assert evaluate_query(query, CTX) == evaluate_query(query, CTX)
