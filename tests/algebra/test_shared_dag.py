"""Shared-work DAG execution (the P7 factoring), pinned by counters.

The optimizer's common-prefix factoring merges structurally identical
union-branch prefixes into :class:`SharedOp` nodes; execution then
computes each shared stream once per run and replays it to the other
consumers.  These tests pin that behaviour the repo's usual way —
deterministic operation counts and plan shapes, never timings:

* sharing fires (``algebra.subplan_hits``/``misses``/``rows_saved``),
* branch pruning fires (``algebra.branches_pruned``) and skips the
  store entirely on an impossible ``contains``,
* factored and unfactored plans return identical results,
* ``explain_analyze`` renders a shared node once (later references are
  ``(ref)`` stubs) and ``plan_size`` counts DAG nodes once,
* ``execute_plan`` deduplicates unhashable head values by equality
  scan instead of raising.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.o2sql import QueryEngine
from repro.observe import MetricsRegistry
from repro.oodb import INTEGER, STRING, schema_from_classes, tuple_of
from repro.oodb.instance import Instance
from repro.oodb.values import TupleValue
from repro.calculus.terms import Const, DataVar
from repro.algebra.execute import (
    count_shared,
    count_unions,
    execute_plan,
    plan_size,
)
from repro.algebra.operators import (
    BindOp,
    ProjectOp,
    SeedOp,
    SharedOp,
    UnionOp,
)
from repro.algebra.optimizer import factor_shared_prefixes, optimize


def wide_database(width: int) -> Instance:
    """The bench_p5 wide schema: a root tuple with ``width`` parts,
    each carrying ``v`` — one union branch per part, all branches
    sharing the root scan."""
    fields = [(f"part{i}", tuple_of((f"pad{i}", INTEGER), ("v", STRING)))
              for i in range(width)]
    schema = schema_from_classes({}, roots={"Root": tuple_of(*fields)})
    instance = Instance(schema)
    instance.set_root("Root", TupleValue(
        [(f"part{i}", TupleValue([(f"pad{i}", i), ("v", f"value-{i}")]))
         for i in range(width)]))
    return instance


def build_corpus_store(size=10, seed=42) -> DocumentStore:
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    for tree in generate_corpus(size, seed=seed):
        store.load_tree(tree, validate=False)
    return store


class TestSharingCounters:
    """The factoring's work-saving claim, made falsifiable."""

    @pytest.mark.parametrize("width", [4, 9, 17])
    def test_shared_prefix_computed_once(self, width):
        engine = QueryEngine(wide_database(width), backend="algebra")
        registry = MetricsRegistry()
        engine.ctx.metrics = registry
        result = engine.run("select x from Root PATH_p.v(x)")
        assert len(result) == width
        # every branch shares the one bottom scan: the first branch
        # computes it, the other width-1 replay it
        assert registry.get("algebra.subplan_misses") == 1
        assert registry.get("algebra.subplan_hits") == width - 1
        assert registry.get("algebra.rows_saved") == width - 1
        # the fan-out itself is unchanged — sharing removes work, not
        # branches
        assert registry.get("algebra.union_fanout") == width

    def test_sharing_does_not_leak_across_runs(self):
        engine = QueryEngine(wide_database(5), backend="algebra")
        registry = MetricsRegistry()
        engine.ctx.metrics = registry
        first = engine.run("select x from Root PATH_p.v(x)")
        second = engine.run("select x from Root PATH_p.v(x)")
        assert first == second
        # each run recomputes the shared stream exactly once: the memo
        # is per execution, never per plan
        assert registry.get("algebra.subplan_misses") == 2
        assert registry.get("algebra.subplan_hits") == 2 * 4


class TestBranchPruning:
    """An empty index candidate set short-circuits whole branches."""

    @pytest.fixture(scope="class")
    def indexed_store(self):
        store = build_corpus_store()
        store.build_text_index()
        return store

    def test_impossible_contains_prunes_every_branch(self, indexed_store):
        indexed_store.enable_metrics()
        indexed_store.reset_metrics()
        result = indexed_store.query(
            'select t from a in Articles, a PATH_p.title(t) '
            'where a contains ("xyzzynotthere")')
        counters = indexed_store.metrics()["counters"]
        assert len(result) == 0
        # the cost stage removes 13 of the 14 gated branches statically
        # (posting-size zero proof); the one kept branch — a union can
        # never be empty — is pruned by its runtime probe
        assert counters["algebra.branches_pruned_static"] == 13
        assert counters["algebra.branches_pruned"] == 1
        # pruning means the store is never touched: no rechecks, no
        # per-row prunes, no shared-subplan activity at all
        assert "algebra.contains_rechecks" not in counters
        assert "algebra.index_pruned" not in counters
        assert "algebra.subplan_misses" not in counters

    def test_satisfiable_contains_prunes_nothing(self, indexed_store):
        indexed_store.enable_metrics()
        indexed_store.reset_metrics()
        result = indexed_store.query(
            'select t from a in Articles, a PATH_p.title(t) '
            'where a contains ("SGML")')
        counters = indexed_store.metrics()["counters"]
        assert len(result) > 0
        assert "algebra.branches_pruned" not in counters

    def test_pruned_query_agrees_with_unindexed_store(self):
        plain = build_corpus_store()
        indexed = build_corpus_store()
        indexed.build_text_index()
        query = ('select t from a in Articles, a PATH_p.title(t) '
                 'where a contains ("xyzzynotthere")')
        assert indexed.query(query) == plain.query(query)


class TestFactoredPlanShape:
    """Factoring shrinks the DAG; introspection counts nodes once."""

    @pytest.fixture(scope="class")
    def plans(self):
        store = DocumentStore(ARTICLE_DTD, backend="algebra")
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        engine = store._engine
        from repro.o2sql.parser import parse
        from repro.o2sql.translate import to_calculus
        from repro.algebra.compile import compile_query
        query = to_calculus(parse("select t from my_article PATH_p.title(t)"),
                            engine.instance.schema.roots.keys())
        plan = compile_query(query, engine.instance.schema,
                             path_semantics="restricted")
        return store, optimize(plan, factor=False), optimize(plan)

    def test_factoring_shrinks_the_plan(self, plans):
        _, unfactored, factored = plans
        assert count_shared(unfactored) == 0
        assert count_shared(factored) > 0
        assert plan_size(factored) < plan_size(unfactored)
        # the union fan-out is untouched
        assert count_unions(factored) == count_unions(unfactored) == 1

    def test_results_are_identical(self, plans):
        store, unfactored, factored = plans
        ctx = store._engine.ctx.fork()
        assert execute_plan(factored, ctx) == execute_plan(unfactored, ctx)

    def test_factoring_is_a_noop_on_chains(self):
        # Q1-shaped plans have no union and no duplicated subtree: the
        # factoring must return the plan unchanged, node for node
        store = DocumentStore(ARTICLE_DTD, backend="algebra")
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        report = store.explain_analyze(
            "select s.title from a in Articles, s in a.sections")
        assert count_shared(report.plan) == 0

    def test_shared_nodes_render_once_with_ref_count(self, plans):
        store, _, _ = plans
        report = store.explain_analyze(
            "select t from my_article PATH_p.title(t)")
        shared_nodes = [node for node in report.operators()
                        if node["operator"] == "SharedOp"]
        expanded = [node for node in shared_nodes
                    if not node["label"].endswith("(ref)")]
        stubs = [node for node in shared_nodes
                 if node["label"].endswith("(ref)")]
        total = count_shared(report.plan)
        assert total > 0
        # each shared node is expanded exactly once...
        assert len(expanded) == total
        # ...and every further reference is a childless stub
        assert stubs, "expected at least one (ref) stub in the tree"

        def stub_children(tree):
            if tree.get("ref"):
                assert tree["children"] == []
            for child in tree["children"]:
                stub_children(child)

        stub_children(report.tree)
        # the rendering advertises the consumer count
        rendered = str(report)
        assert "×" in rendered and "Shared[1]" in rendered

    def test_plan_size_counts_shared_nodes_once(self, plans):
        _, _, factored = plans
        # walking the DAG as a tree would multiply the shared chains;
        # plan_size must agree with the number of distinct nodes
        distinct = set()

        def collect(node):
            if id(node) in distinct:
                return
            distinct.add(id(node))
            for child in node.children():
                collect(child)

        collect(factored)
        assert plan_size(factored) == len(distinct)


class TestFactoringRewrite:
    """Unit-level properties of factor_shared_prefixes."""

    def test_duplicate_union_branches_merge(self):
        # clones of the same compiled fragment share their term objects
        # (as the pushdown's _clone_filter and the compiler's trie do)
        x = DataVar("x")
        seed = SeedOp()
        one = Const(1)
        left = BindOp(seed, x, one)
        right = BindOp(seed, x, one)
        plan = ProjectOp(UnionOp([left, right]), [x])
        factored = factor_shared_prefixes(plan)
        union = factored.child
        assert isinstance(union, UnionOp)
        first, second = union.branches
        assert first is second
        assert isinstance(first, SharedOp)
        assert first.ref_count == 2

    def test_distinct_constants_do_not_merge(self):
        x = DataVar("x")
        seed = SeedOp()
        plan = ProjectOp(UnionOp([BindOp(seed, x, Const(1)),
                                  BindOp(seed, x, Const(2))]), [x])
        factored = factor_shared_prefixes(plan)
        assert count_shared(factored) == 0

    def test_seed_is_never_wrapped(self):
        x = DataVar("x")
        y = DataVar("y")
        seed = SeedOp()
        plan = ProjectOp(UnionOp([BindOp(seed, x, Const(1)),
                                  BindOp(seed, y, Const(2))]), [x])
        factored = factor_shared_prefixes(plan)
        assert count_shared(factored) == 0

    def test_shared_rows_replay_without_memo(self):
        # a SharedOp executed outside execute_plan (no ctx.shared_memo)
        # streams its child directly
        x = DataVar("x")
        shared = SharedOp(BindOp(SeedOp(), x, Const(7)), ref_count=2,
                          shared_id=1)
        instance = Instance(schema_from_classes({}, roots={}))
        from repro.calculus.evaluator import EvalContext
        ctx = EvalContext(instance)
        assert list(shared.rows(ctx)) == [{x: 7}]


class TestUnhashableDedup:
    """execute_plan must not raise on unhashable head values."""

    def _ctx(self):
        from repro.calculus.evaluator import EvalContext
        return EvalContext(Instance(schema_from_classes({}, roots={})))

    def test_unhashable_value_is_returned(self):
        x = DataVar("x")
        plan = ProjectOp(BindOp(SeedOp(), x, Const(["raw", "list"])), [x])
        result = execute_plan(plan, self._ctx())
        assert list(result) == [["raw", "list"]]

    def test_unhashable_duplicates_are_deduplicated(self):
        x = DataVar("x")
        seed = SeedOp()
        plan = ProjectOp(UnionOp([BindOp(seed, x, Const(["dup"])),
                                  BindOp(seed, x, Const(["dup"])),
                                  BindOp(seed, x, Const(["other"]))]), [x])
        result = execute_plan(plan, self._ctx())
        assert list(result) == [["dup"], ["other"]]

    def test_mixed_hashable_and_unhashable(self):
        x = DataVar("x")
        seed = SeedOp()
        plan = ProjectOp(UnionOp([BindOp(seed, x, Const("plain")),
                                  BindOp(seed, x, Const(["raw"])),
                                  BindOp(seed, x, Const("plain"))]), [x])
        result = execute_plan(plan, self._ctx())
        assert list(result) == ["plain", ["raw"]]
