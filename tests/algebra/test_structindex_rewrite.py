"""Counter-based regressions for the structural-index rewrite (P9).

The claim under test: with ``structural=True``, the Q3/Q5 path-variable
plans actually *use* the index (``structindex.range_scans > 0``) and are
strictly smaller than the factored union-of-plans — the union fan-out
never runs.  No timing assertions; the work itself is pinned, mirroring
the P1/P5 counter-test idiom.
"""

import pytest

from repro import DocumentStore
from repro.algebra import (
    IntervalJoinOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    compile_query,
    execute_plan,
    optimize,
)
from repro.algebra.execute import plan_size
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.observe import MetricsRegistry

Q3 = "select t from my_article PATH_p.title(t)"
Q5 = ('select name(ATT_a) from my_article PATH_p.ATT_a(val) '
      'where val contains ("final")')
Q_JOIN = "select v from my_article PATH_p(v), my_old_article PATH_q(v)"


@pytest.fixture(scope="module")
def stores():
    factored = DocumentStore(ARTICLE_DTD, backend="algebra")
    structural = DocumentStore(ARTICLE_DTD, backend="algebra",
                               structural=True)
    for store in (factored, structural):
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        store.load_text(SAMPLE_ARTICLE, name="my_old_article")
        store.build_text_index()
    structural.build_structural_index()
    return factored, structural


def _count_ops(plan, kind) -> int:
    seen, stack, found = set(), [plan], 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, kind):
            found += 1
        stack.extend(node.children())
    return found


class TestRangeScansReplaceUnions:
    @pytest.mark.parametrize("text", [Q3, Q5])
    def test_rewrite_uses_the_index(self, stores, text):
        factored, structural = stores
        structural.reset_metrics()
        metrics = structural.enable_metrics()
        result = structural.query(text)
        assert result == factored.query(text)
        assert metrics.get("structindex.range_scans") > 0
        assert metrics.get("structindex.fallback_walks") == 0

    @pytest.mark.parametrize("text", [Q3, Q5, Q_JOIN])
    def test_structural_plan_is_strictly_smaller(self, stores, text):
        factored, structural = stores
        engine = structural._engine
        plan = compile_query(engine.translate(text),
                             structural.schema,
                             path_semantics="restricted")
        factored_size = plan_size(optimize(plan))
        structural_size = plan_size(optimize(plan, structural=True))
        assert structural_size < factored_size

    @pytest.mark.parametrize("text", [Q3, Q5])
    def test_structural_plan_contains_a_scan(self, stores, text):
        _, structural = stores
        plan = structural._engine.artifacts(text).plan
        assert _count_ops(plan, StructuralScanOp) > 0

    @pytest.mark.parametrize("text", [Q3, Q5])
    def test_selection_after_scan_fuses(self, stores, text):
        # the attribute step following the path variable never runs as
        # a separate operator: the scan serves it from the AttrStep
        # slice (fixed name for Q3, per-row bound ATT variable for Q5)
        _, structural = stores
        plan = structural._engine.artifacts(text).plan
        assert _count_ops(plan, StructuralAttrScanOp) == 1


class TestIntervalJoin:
    def test_bound_path_atom_fuses_into_interval_join(self, stores):
        factored, structural = stores
        plan = structural._engine.artifacts(Q_JOIN).plan
        assert _count_ops(plan, IntervalJoinOp) == 1
        structural.reset_metrics()
        metrics = structural.enable_metrics()
        result = structural.query(Q_JOIN)
        assert result == factored.query(Q_JOIN)
        assert metrics.get("structindex.interval_probes") > 0


class TestFallbackWithoutIndex:
    def test_scan_plan_is_correct_with_no_index_installed(self, stores):
        factored, _ = stores
        engine = factored._engine
        assert engine.ctx.struct_index is None
        metrics = MetricsRegistry()
        for text in (Q3, Q5, Q_JOIN):
            plan = optimize(
                compile_query(engine.translate(text), factored.schema,
                              path_semantics="restricted"),
                structural=True)
            fork = engine.ctx.fork()
            fork.metrics = metrics
            assert execute_plan(plan, fork) == factored.query(text)
        # no index ⇒ the operators never report index activity
        assert metrics.get("structindex.range_scans") == 0
        assert metrics.get("structindex.interval_probes") == 0


class TestCacheKeySeparation:
    def test_structural_and_factored_plans_never_share_a_cache_slot(
            self, stores):
        factored, structural = stores
        assert factored._engine.cache_key(Q3) \
            != structural._engine.cache_key(Q3)
