"""The cost stage, pinned structurally: branch ordering, provable-empty
pruning, access-path demotion, and the estimate annotations — all
behaviour the P12 benchmark measures, asserted here without timings."""

import pytest

from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan
from repro.algebra.operators import IndexFilterOp, SelectOp, UnionOp
from repro.algebra.optimizer import optimize
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.observe import MetricsRegistry

IMPOSSIBLE = ('select t from a in Articles, a PATH_p.title(t) '
              'where a contains ("xyzzynotthere")')
SATISFIABLE = ('select t from a in Articles, a PATH_p.title(t) '
               'where a contains ("SGML")')
NEGATED = ('select t from a in Articles, a PATH_p.title(t) '
           'where a contains (not "xyzzynotthere")')


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    for tree in generate_corpus(10, seed=42):
        s.load_tree(tree, validate=False)
    s.build_text_index()
    s.build_structural_index()
    return s


def _costed(store, text, metrics=None):
    query = store._engine.translate(text)
    plan = compile_query(query, store.schema)
    snapshot = store.stats_manager.snapshot()
    return optimize(plan, verify="raise", query=query, stats=snapshot,
                    metrics=metrics), query, snapshot


def _walk(plan):
    seen, stack, out = set(), [plan], []
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        out.append(node)
        stack.extend(node.children())
    return out


def _evidence_unions(plan):
    return [node for node in _walk(plan)
            if isinstance(node, UnionOp)
            and node.cost_evidence is not None]


class TestBranchOrdering:
    def test_evidence_is_a_permutation_partition(self, store):
        plan, _, _ = _costed(store, SATISFIABLE)
        unions = _evidence_unions(plan)
        assert unions
        for union in unions:
            ev = union.cost_evidence
            assert (sorted(ev.order) + sorted(ev.pruned)
                    == sorted(set(ev.order) | set(ev.pruned)))
            assert (set(ev.order) | set(ev.pruned)
                    == set(range(ev.original)))
            assert len(union.branches) == len(ev.order)

    def test_costed_result_matches_unoptimized(self, store):
        for text in (SATISFIABLE, IMPOSSIBLE, NEGATED):
            query = store._engine.translate(text)
            plan = compile_query(query, store.schema)
            costed = optimize(plan, verify="raise", query=query,
                              stats=store.stats_manager.snapshot())
            ctx = store._engine.ctx.fork()
            assert (execute_plan(costed, ctx)
                    == execute_plan(plan, store._engine.ctx.fork()))


class TestStaticPruning:
    def test_impossible_pattern_prunes_with_zero_evidence(self, store):
        plan, _, snapshot = _costed(store, IMPOSSIBLE)
        pruned = [ev for union in _evidence_unions(plan)
                  for ev in union.cost_evidence.pruned.values()]
        assert pruned
        for kind, pattern in pruned:
            assert kind == "empty_candidates"
            # the evidence stays re-checkable against the snapshot
            assert snapshot.candidate_upper_bound(pattern) == 0

    def test_union_is_never_emptied(self, store):
        plan, _, _ = _costed(store, IMPOSSIBLE)
        for node in _walk(plan):
            if isinstance(node, UnionOp):
                assert len(node.branches) >= 1

    def test_satisfiable_pattern_prunes_nothing(self, store):
        plan, _, _ = _costed(store, SATISFIABLE)
        for union in _evidence_unions(plan):
            assert union.cost_evidence.pruned == {}


class TestAccessPathChoice:
    def test_negation_dominated_filter_is_demoted(self, store):
        metrics = MetricsRegistry()
        plan, _, _ = _costed(store, NEGATED, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["algebra.cost_demotions"] >= 1
        # the probe-free plan keeps the recheck as a plain select
        kinds = [type(node) for node in _walk(plan)]
        assert SelectOp in kinds

    def test_pruning_capable_filter_is_kept(self, store):
        metrics = MetricsRegistry()
        plan, _, _ = _costed(store, SATISFIABLE, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert "algebra.cost_demotions" not in counters
        assert any(isinstance(node, IndexFilterOp)
                   for node in _walk(plan))


class TestAnnotations:
    def test_every_node_carries_estimates(self, store):
        plan, _, _ = _costed(store, SATISFIABLE)
        for node in _walk(plan):
            assert isinstance(node.est_rows, float)
            assert isinstance(node.est_cost, float)
            assert node.est_rows >= 0.0
            assert node.est_cost > 0.0

    def test_no_stats_means_no_cost_stage(self, store):
        query = store._engine.translate(SATISFIABLE)
        plan = compile_query(query, store.schema)
        bare = optimize(plan, verify="raise", query=query)
        assert not _evidence_unions(bare)
        assert all(node.est_rows is None for node in _walk(bare))
