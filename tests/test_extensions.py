"""Tests for the extension features: method dispatch in queries, CDATA
marked sections, and session persistence."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import EvaluationError


@pytest.fixture()
def store():
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    return s


class TestMethodDispatchInQueries:
    def test_method_callable_from_o2sql(self, store):
        # define a display method on Text (Figure 3's "default
        # behavior") and call it from a query
        store.instance.define_method(
            "display", "Text",
            lambda inst, this: f"<{inst.deref(this).get('text')}>")
        result = store.query(
            "select display(t) from my_article PATH_p.title(t)")
        assert "<Introduction>" in set(result)

    def test_method_with_arguments(self, store):
        store.instance.define_method(
            "prefix", "Text",
            lambda inst, this, n: inst.deref(this).get("text")[:n])
        result = store.query(
            "select prefix(t, 5) from my_article PATH_p.title(t)")
        assert "Intro" in set(result)

    def test_registry_functions_win_over_methods(self, store):
        # `text` is a registry function; defining a method of the same
        # name must not shadow it
        store.instance.define_method(
            "text", "Text", lambda inst, this: "method!")
        article = store.instance.root("my_article")
        assert "method!" not in store.text(article)

    def test_unknown_function_on_non_object_still_fails(self, store):
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            store.query("select ghostfn(1) from a in Articles")


class TestCdata:
    def test_cdata_preserves_markup_characters(self):
        from repro.sgml.instance_parser import parse_document
        tree = parse_document(
            "<a><![CDATA[literal <tags> & &amp; stay raw]]></a>")
        assert tree.text_content() == "literal <tags> & &amp; stay raw"

    def test_cdata_merges_with_surrounding_text(self):
        # element-content whitespace normalization collapses the
        # boundary spaces (same as around child elements)
        from repro.sgml.instance_parser import parse_document
        tree = parse_document("<a>before <![CDATA[<x>]]> after</a>")
        assert tree.text_content() == "before<x>after"
        # keep_whitespace preserves them exactly
        verbatim = parse_document("<a>before <![CDATA[<x>]]> after</a>",
                                  keep_whitespace=True)
        assert verbatim.text_content() == "before <x> after"

    def test_cdata_in_validated_document(self, store):
        text = SAMPLE_ARTICLE.replace(
            "<acknowl> We are grateful",
            "<acknowl> <![CDATA[thanks to <everyone>]]> We are grateful")
        oid = store.loader.instance  # keep flake quiet
        s = DocumentStore(ARTICLE_DTD)
        s.load_text(text, name="doc")
        acknowl = s.query("select x from doc PATH_p.acknowl(x)")
        assert "<everyone>" in s.text(list(acknowl)[0])

    def test_unterminated_cdata_rejected(self):
        from repro.errors import DocumentSyntaxError
        from repro.sgml.instance_parser import parse_document
        with pytest.raises(DocumentSyntaxError):
            parse_document("<a><![CDATA[never closed</a>")

    def test_cdata_outside_root_rejected(self):
        from repro.errors import DocumentSyntaxError
        from repro.sgml.instance_parser import parse_document
        with pytest.raises(DocumentSyntaxError):
            parse_document("<![CDATA[x]]><a>y</a>")


class TestSessionPersistence:
    def test_save_and_load_round_trip(self, store, tmp_path):
        path = tmp_path / "session.db"
        written = store.save(path)
        assert written > 0
        assert (tmp_path / "session.db.dtd").exists()

        reloaded = DocumentStore.load(path)
        assert reloaded.instance.object_count() == \
            store.instance.object_count()
        # the named root survives, and queries work
        result = reloaded.query(
            "select t from my_article PATH_p.title(t)")
        assert len(result) == 3
        texts = {reloaded.text(t) for t in result}
        assert "Introduction" in texts

    def test_reloaded_store_accepts_new_documents(self, store, tmp_path):
        path = tmp_path / "session.db"
        store.save(path)
        reloaded = DocumentStore.load(path)
        reloaded.load_text(SAMPLE_ARTICLE)
        root = reloaded.instance.root(reloaded.mapped.root_name)
        assert len(root) == 2

    def test_non_oid_roots_survive_reload(self, store, tmp_path):
        # O₂ *names* are not restricted to objects: scalars and
        # collections of oids round-trip too, with their types
        # re-inferred against the restored instance
        from repro.oodb.values import SetValue
        article = store.instance.root("my_article")
        store.define_name("revision", 42)
        store.define_name("shortlist", SetValue([article]))
        path = tmp_path / "session.db"
        store.save(path)

        reloaded = DocumentStore.load(path)
        assert reloaded.instance.root("revision") == 42
        shortlist = reloaded.instance.root("shortlist")
        assert isinstance(shortlist, SetValue)
        assert len(shortlist) == 1
        # the declared root types were re-inferred on load
        from repro.oodb import INTEGER
        from repro.oodb.types import ClassType, SetType
        assert reloaded.schema.roots["revision"] == INTEGER
        shortlist_type = reloaded.schema.roots["shortlist"]
        assert isinstance(shortlist_type, SetType)
        assert isinstance(shortlist_type.element, ClassType)
        # and the collection root is queryable
        result = reloaded.query(
            "select t from a in shortlist, t in a.sections")
        assert len(result) > 0

    def test_updates_survive_persistence(self, store, tmp_path):
        article = store.instance.root("my_article")
        title = store.instance.deref(article).get("title")
        store.update_text(title, "Persisted Title")
        path = tmp_path / "session.db"
        store.save(path)
        reloaded = DocumentStore.load(path)
        result = reloaded.query("""
            select t from my_article PATH_p.title(t)
            where t contains ("Persisted")
        """)
        assert len(result) == 1
