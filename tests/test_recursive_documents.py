"""Integration tests on a *recursive* DTD (nested sections).

Figure 1's DTD is non-recursive; real document types (books, manuals)
nest sections inside sections.  This exercises recursion through the
whole stack: mapping (self-referential classes), loading, restricted vs
liberal path semantics, and the algebraization (whose schema paths must
stay finite under the restricted semantics).
"""

import pytest

from repro import DocumentStore
from repro.paths import LIBERAL

BOOK_DTD = """
<!DOCTYPE book [
<!ELEMENT book - - (title, section+)>
<!ELEMENT section - O (title, para*, section*)>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT para - O (#PCDATA)>
<!ATTLIST section depth NUMBER #IMPLIED>
]>
"""

NESTED_BOOK = """
<book><title>The Nesting Book
<section depth="1"><title>Chapter One
  <para>Top level prose.
  <section depth="2"><title>One point One
    <para>Deeper prose.
    <section depth="3"><title>One point One point One
      <para>Deepest prose with a needle word.
    </section>
  </section>
</section>
<section depth="1"><title>Chapter Two
  <para>More prose.
</section>
</book>
"""


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(BOOK_DTD)
    s.load_text(NESTED_BOOK, name="my_book")
    s.check()
    return s


class TestRecursiveMapping:
    def test_section_class_references_itself(self, store):
        structure = store.schema.structure("Section")
        from repro.oodb.types import referenced_classes
        assert "Section" in referenced_classes(structure)

    def test_number_attribute(self, store):
        # restricted paths reach level-1 and (via the trailing sections
        # list plus the implicit dereference of `.depth`) level-2
        # sections; level 3 would need two Section dereferences in P
        result = store.query(
            "select d from my_book PATH_p.depth(d)")
        assert set(result) == {1, 2}
        # chaining a second path variable exposes the third level
        deeper = store.query(
            "select d from my_book PATH_p -> PATH_q.depth(d)")
        assert set(deeper) == {1, 2, 3}

    def test_all_objects_loaded(self, store):
        # book + 5 titles + 4 paras + 4 sections = 14
        assert store.instance.object_count() == 14


class TestRecursionAndPathSemantics:
    def test_restricted_depth_is_schema_bounded(self, store):
        titles = store.query("select t from my_book PATH_p.title(t)")
        texts = {store.text(t) for t in titles}
        # P may dereference Section once; the implicit dereference of
        # `.title` adds one more level — so levels 1 and 2 are visible
        # but level 3 is not.
        assert "The Nesting Book" in texts
        assert "Chapter One" in texts
        assert "One point One" in texts
        assert "One point One point One" not in texts

    def test_chained_path_variables_descend(self, store):
        titles = store.query(
            "select t from my_book PATH_p -> PATH_q.title(t)")
        texts = {store.text(t) for t in titles}
        assert "One point One point One" in texts

    def test_liberal_reaches_every_level(self):
        s = DocumentStore(BOOK_DTD, path_semantics=LIBERAL)
        s.load_text(NESTED_BOOK, name="my_book")
        titles = s.query("select t from my_book PATH_p.title(t)")
        texts = {s.text(t) for t in titles}
        assert {"The Nesting Book", "Chapter One", "One point One",
                "One point One point One", "Chapter Two"} <= texts

    def test_liberal_grep_finds_deepest_content(self):
        s = DocumentStore(BOOK_DTD, path_semantics=LIBERAL)
        s.load_text(NESTED_BOOK, name="my_book")
        hits = s.query("""
            select name(ATT_a) from my_book PATH_p.ATT_a(v)
            where v contains ("needle")
        """)
        assert "text" in set(hits)


class TestRecursiveAlgebra:
    def test_schema_paths_finite(self, store):
        from repro.oodb.types import ClassType
        from repro.paths import enumerate_schema_paths
        paths = enumerate_schema_paths(store.schema, ClassType("Book"))
        assert len(paths) < 200  # finite despite the recursion

    def test_algebra_agrees_with_calculus(self, store):
        from repro.algebra.compile import compile_query
        from repro.algebra.execute import execute_plan
        from repro.calculus import evaluate_query
        query = store._engine.translate(
            "select t from my_book PATH_p.title(t)")
        interpreted = evaluate_query(query, store._engine.ctx)
        plan = compile_query(query, store.schema, store._engine.ctx)
        assert execute_plan(plan, store._engine.ctx) == interpreted


class TestRecursiveInverse:
    def test_export_round_trip(self, store):
        from repro.sgml.instance_parser import parse_document
        exported = store.export_text("my_book")
        original = parse_document(NESTED_BOOK, store.dtd)
        assert parse_document(exported, store.dtd) == original
