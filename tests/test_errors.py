"""Tests for the exception hierarchy and error positioning."""

import pytest

from repro import errors


class TestHierarchy:
    def test_single_base_class(self):
        for name in dir(errors):
            cls = getattr(errors, name)
            if isinstance(cls, type) and issubclass(cls, Exception) \
                    and cls is not errors.ReproError:
                assert issubclass(cls, errors.ReproError), name

    def test_sgml_family(self):
        for cls in (errors.DtdSyntaxError, errors.DocumentSyntaxError,
                    errors.ValidationError, errors.EntityError,
                    errors.ContentModelError):
            assert issubclass(cls, errors.SgmlError)

    def test_model_family(self):
        for cls in (errors.SchemaError, errors.InstanceError,
                    errors.ConstraintViolation, errors.StoreError,
                    errors.MappingError, errors.SubtypingError):
            assert issubclass(cls, errors.ModelError)

    def test_query_family(self):
        for cls in (errors.QuerySyntaxError, errors.QueryTypeError,
                    errors.SafetyError, errors.EvaluationError,
                    errors.PatternError, errors.CompilationError,
                    errors.WrongBranchAccess):
            assert issubclass(cls, errors.QueryError)

    def test_wrong_branch_is_not_evaluation_error(self):
        # the Section-4.2 distinction depends on this
        assert not issubclass(errors.WrongBranchAccess,
                              errors.EvaluationError)


class TestPositioning:
    def test_sgml_error_formats_position(self):
        exc = errors.SgmlError("bad thing", line=3, column=7)
        assert "line 3" in str(exc)
        assert "column 7" in str(exc)
        assert exc.line == 3 and exc.column == 7

    def test_line_only(self):
        exc = errors.SgmlError("bad thing", line=3)
        assert "line 3" in str(exc)
        assert "column" not in str(exc)

    def test_no_position(self):
        exc = errors.SgmlError("bad thing")
        assert str(exc) == "bad thing"

    def test_query_syntax_error_position(self):
        exc = errors.QuerySyntaxError("oops", line=2, column=5)
        assert "line 2" in str(exc)

    def test_constraint_violation_names_class(self):
        exc = errors.ConstraintViolation("x != nil",
                                         class_name="Article")
        assert str(exc).startswith("[Article]")
        assert exc.class_name == "Article"


class TestCatchability:
    def test_one_except_clause_covers_everything(self):
        from repro.sgml.dtd_parser import parse_dtd
        with pytest.raises(errors.ReproError):
            parse_dtd("<!WIDGET>")
        from repro.text.patterns import parse_pattern_expr
        with pytest.raises(errors.ReproError):
            parse_pattern_expr('"unterminated')
