"""Tests for the DocumentStore facade (the end-to-end user surface)."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import MappingError
from repro.oodb import Oid, SetValue


@pytest.fixture()
def store():
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    return s


class TestLoading:
    def test_load_returns_document_oid(self, store):
        assert isinstance(store.instance.root("my_article"), Oid)

    def test_stats(self, store):
        stats = store.stats()
        assert stats["documents"] == 1
        assert stats["objects"] == 17
        assert stats["classes"] == 15
        assert stats["bytes"] > 0

    def test_invalid_document_rejected(self, store):
        from repro.errors import DocumentSyntaxError
        with pytest.raises(DocumentSyntaxError):
            # missing mandatory acknowl: the validating parser itself
            # refuses to close <article> with incomplete content
            store.load_text("<article><title>t<author>a<affil>f"
                            "<abstract>x<section><title>s"
                            "<body><paragr>p</body></section>"
                            "</article>")

    def test_programmatic_invalid_tree_rejected(self, store):
        # a tree built by hand (bypassing the parser) is caught by the
        # validation pass in load_tree
        from repro.sgml.instance import Element, Text
        bogus = Element("article", {"status": "final"})
        bogus.append(Element("title", children=[Text("t")]))
        with pytest.raises(MappingError):
            store.load_tree(bogus)

    def test_bad_dtd_rejected(self):
        with pytest.raises(MappingError):
            DocumentStore("<!ELEMENT doc - - (ghost)>")

    def test_check_passes_on_figure2(self, store):
        store.check()

    def test_define_name_for_values(self, store):
        store.define_name("answer", 42)
        assert store.query("select x from answer PATH_p(x)") == \
            SetValue([42])


class TestQuerying:
    def test_query_returns_set(self, store):
        result = store.query("select a from a in Articles")
        assert isinstance(result, SetValue)
        assert len(result) == 1

    def test_text_operator(self, store):
        article = store.instance.root("my_article")
        assert "SGML" in store.text(article)

    def test_describe_schema(self, store):
        rendered = store.describe_schema()
        assert "class Article" in rendered
        assert "name Articles: list (Article)" in rendered

    def test_explain(self, store):
        assert "∃" in store.explain(
            "select t from my_article PATH_p.title(t)")

    def test_check_query_types(self, store):
        types = store.check_query("select a from a in Articles")
        assert {str(v): str(t) for v, t in types.items()}["a"] == \
            "Article"

    def test_build_text_index(self, store):
        index = store.build_text_index()
        assert index.document_count > 0
        assert store.text_index is index

    def test_liberal_semantics_store(self):
        s = DocumentStore(ARTICLE_DTD, path_semantics="liberal")
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        result = s.query("select t from my_article PATH_p.title(t)")
        assert len(result) == 3
