"""Edge cases of the domain-membership check (Section 5.1 semantics)."""

from repro.oodb import (
    ANY,
    BOOLEAN,
    FLOAT,
    INTEGER,
    ListValue,
    NIL,
    Oid,
    STRING,
    SetValue,
    TupleValue,
    UnionValue,
    c,
    infer_value_type,
    list_of,
    set_of,
    tuple_of,
    union_of,
    value_in_type,
)


class TestNilEverywhere:
    """nil is "the undefined value": it inhabits every non-collection
    domain (Figure 3 excludes it with constraints, not types)."""

    def test_nil_in_atomic_and_class_domains(self):
        for tp in (INTEGER, STRING, BOOLEAN, FLOAT, c("Article"), ANY,
                   tuple_of(("a", INTEGER)),
                   union_of(("a", INTEGER))):
            assert value_in_type(NIL, tp), tp

    def test_nil_not_a_collection(self):
        # an absent `*` component maps to the empty list, never nil
        assert not value_in_type(NIL, list_of(INTEGER))
        assert not value_in_type(NIL, set_of(INTEGER))

    def test_nil_as_optional_tuple_field(self):
        declared = tuple_of(("caption", c("Caption")))
        assert value_in_type(TupleValue([("caption", NIL)]), declared)


class TestNumericEdges:
    def test_int_float_domains_disjoint(self):
        assert value_in_type(1, INTEGER)
        assert not value_in_type(1, FLOAT)
        assert value_in_type(1.0, FLOAT)
        assert not value_in_type(1.0, INTEGER)

    def test_bool_is_not_integer(self):
        assert not value_in_type(True, INTEGER)
        assert value_in_type(True, BOOLEAN)


class TestUnionEdges:
    def test_nested_union_values(self):
        inner = union_of(("x", INTEGER), ("y", STRING))
        outer = union_of(("a", inner), ("b", BOOLEAN))
        value = UnionValue("a", UnionValue("x", 1))
        assert value_in_type(value, outer)
        assert not value_in_type(UnionValue("a", 1), outer)

    def test_wide_tuple_not_a_union_value(self):
        u = union_of(("a", INTEGER), ("b", STRING))
        wide = TupleValue([("a", 1), ("b", "x")])
        # a two-field tuple is not a *marked* value...
        assert not value_in_type(wide, u)
        # ...although the subtype relation holds at the type level (the
        # injection goes through the one-field narrowing)


class TestInferValueType:
    def test_homogeneous_collection(self):
        assert infer_value_type(ListValue([1, 2])) == list_of(INTEGER)
        assert infer_value_type(SetValue(["a"])) == set_of(STRING)

    def test_heterogeneous_collection_falls_back_to_any(self):
        from repro.oodb.types import AnyType, ListType
        inferred = infer_value_type(ListValue([1, "x"]))
        assert isinstance(inferred, ListType)
        assert isinstance(inferred.element, AnyType)

    def test_empty_collection(self):
        from repro.oodb.types import AnyType, SetType
        inferred = infer_value_type(SetValue())
        assert isinstance(inferred, SetType)
        assert isinstance(inferred.element, AnyType)

    def test_oid_infers_class(self):
        assert infer_value_type(Oid(1, "Article")) == c("Article")

    def test_tuple_infers_ordered_fields(self):
        inferred = infer_value_type(TupleValue([("b", 1), ("a", "x")]))
        assert inferred.attribute_names == ("b", "a")
