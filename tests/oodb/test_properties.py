"""Property-based tests (hypothesis) on the data-model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oodb import (
    ListValue,
    NIL,
    Oid,
    SetValue,
    TupleValue,
    decode_value,
    encode_value,
    equivalent,
    is_subtype,
    is_value,
    value_in_type,
)
from repro.oodb.types import (
    BOOLEAN,
    INTEGER,
    STRING,
    ListType,
    SetType,
    TupleType,
    UnionType,
)

# -- value strategies ---------------------------------------------------------

attribute_names = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4)

atoms = st.one_of(
    st.just(NIL),
    st.integers(min_value=-2**40, max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.builds(Oid, st.integers(min_value=1, max_value=1000),
              st.sampled_from(["A", "B", "C"])),
)


def _extend(children):
    unique_fields = st.lists(
        st.tuples(attribute_names, children),
        max_size=4, unique_by=lambda pair: pair[0])
    return st.one_of(
        st.builds(TupleValue, unique_fields),
        st.builds(ListValue, st.lists(children, max_size=4)),
        st.builds(SetValue, st.lists(children, max_size=4)),
    )


values = st.recursive(atoms, _extend, max_leaves=20)

# -- type strategies ----------------------------------------------------------

atomic_types = st.sampled_from([INTEGER, STRING, BOOLEAN])


def _extend_types(children):
    unique_fields = st.lists(
        st.tuples(attribute_names, children),
        min_size=1, max_size=3, unique_by=lambda pair: pair[0])
    return st.one_of(
        st.builds(ListType, children),
        st.builds(SetType, children),
        st.builds(TupleType, unique_fields),
        st.builds(UnionType, unique_fields),
    )


types = st.recursive(atomic_types, _extend_types, max_leaves=8)


# -- properties ---------------------------------------------------------------


class TestCodecProperties:
    @given(values)
    @settings(max_examples=200)
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(values)
    def test_all_generated_values_are_model_values(self, value):
        assert is_value(value)

    @given(values, values)
    def test_encoding_injective_on_distinct_values(self, left, right):
        if left != right:
            assert encode_value(left) != encode_value(right)


class TestEquivalenceProperties:
    @given(values)
    def test_equivalence_reflexive(self, value):
        assert equivalent(value, value)

    @given(values, values)
    def test_equivalence_symmetric(self, left, right):
        assert equivalent(left, right) == equivalent(right, left)

    @given(st.lists(st.tuples(attribute_names, atoms),
                    min_size=1, max_size=4,
                    unique_by=lambda pair: pair[0]))
    def test_tuple_equivalent_to_its_heterogeneous_list(self, fields):
        tup = TupleValue(fields)
        assert equivalent(tup, tup.as_heterogeneous_list())


class TestSubtypingProperties:
    @given(types)
    def test_reflexive(self, tp):
        assert is_subtype(tp, tp)

    @given(types, types, types)
    @settings(max_examples=150)
    def test_transitive(self, a, b, c_):
        if is_subtype(a, b) and is_subtype(b, c_):
            assert is_subtype(a, c_)

    @given(types, types)
    @settings(max_examples=150)
    def test_antisymmetric_modulo_union_branch_order(self, a, b):
        if is_subtype(a, b) and is_subtype(b, a):
            # mutual subtyping implies equality in this structural system
            assert a == b

    @given(st.lists(st.tuples(attribute_names, atomic_types),
                    min_size=1, max_size=4,
                    unique_by=lambda pair: pair[0]))
    def test_tuple_below_its_own_union_and_het_list(self, fields):
        tup = TupleType(fields)
        union = UnionType(fields)
        assert is_subtype(tup, union)
        assert is_subtype(tup, ListType(union))


class TestDomainMonotonicity:
    """t <= t'  implies  dom(t) ⊆ dom(t') — checked on generated members."""

    @given(st.lists(st.tuples(attribute_names, atoms),
                    min_size=1, max_size=3,
                    unique_by=lambda pair: pair[0]))
    def test_tuple_members_in_union_domain(self, fields):
        from repro.oodb.typecheck import infer_value_type
        tup_value = TupleValue(fields)
        tup_type = infer_value_type(tup_value)
        if not isinstance(tup_type, TupleType):
            return
        union_type = UnionType(list(tup_type.fields))
        one_field = TupleValue([fields[0]])
        if value_in_type(one_field, tup_type):
            assert value_in_type(one_field, union_type)


class TestSetValueProperties:
    @given(st.lists(atoms, max_size=10), st.lists(atoms, max_size=10))
    def test_difference_disjoint_from_other(self, left, right):
        a, b = SetValue(left), SetValue(right)
        diff = a.difference(b)
        assert all(v not in b for v in diff)
        assert diff.issubset(a)

    @given(st.lists(atoms, max_size=10), st.lists(atoms, max_size=10))
    def test_union_contains_both(self, left, right):
        a, b = SetValue(left), SetValue(right)
        u = a.union(b)
        assert a.issubset(u) and b.issubset(u)

    @given(st.lists(atoms, max_size=10))
    def test_set_idempotent(self, items):
        s = SetValue(items)
        assert SetValue(list(s)) == s
