"""Tests for the Figure-3 constraint language."""

import pytest

from repro.errors import ConstraintViolation
from repro.oodb import (
    ConstraintSet,
    Disjunction,
    Instance,
    ListValue,
    NIL,
    NotEmpty,
    NotNil,
    OneOf,
    STRING,
    TupleValue,
    UnionValue,
    c,
    list_of,
    schema_from_classes,
    tuple_of,
    union_of,
)


@pytest.fixture
def schema():
    classes = {
        "Title": STRING,
        "Article": tuple_of(
            ("title", c("Title")),
            ("authors", list_of(STRING)),
            ("status", STRING)),
        "Body": union_of(("figure", STRING), ("paragr", STRING)),
        "Section": union_of(
            ("a1", tuple_of(("title", c("Title")),
                            ("bodies", list_of(STRING)))),
            ("a2", tuple_of(("title", c("Title")),
                            ("subsectns", list_of(STRING))))),
    }
    return schema_from_classes(classes)


@pytest.fixture
def db(schema):
    return Instance(schema)


def make_article(db, title_value="T", authors=("a",), status="draft"):
    title = db.new_object("Title", title_value)
    return db.new_object("Article", TupleValue([
        ("title", title),
        ("authors", ListValue(authors)),
        ("status", status)]))


class TestNotNil:
    def test_holds_on_oid(self, db):
        make_article(db)
        constraints = ConstraintSet()
        constraints.add("Article", NotNil("title"))
        constraints.check_instance(db)

    def test_fails_on_nil(self, db):
        db.new_object("Article", TupleValue([
            ("title", NIL), ("authors", ListValue(["a"])),
            ("status", "draft")]))
        constraints = ConstraintSet()
        constraints.add("Article", NotNil("title"))
        with pytest.raises(ConstraintViolation) as exc:
            constraints.check_instance(db)
        assert "Article" in str(exc.value)

    def test_nested_path_through_deref(self, db):
        # Dereference the title oid, then there is no further attribute:
        # a NotNil on a missing nested attribute fails cleanly.
        make_article(db)
        constraints = ConstraintSet()
        constraints.add("Article", NotNil("title", "ghost"))
        with pytest.raises(ConstraintViolation):
            constraints.check_instance(db)


class TestNotEmpty:
    def test_holds_on_non_empty_list(self, db):
        make_article(db, authors=("x", "y"))
        constraints = ConstraintSet()
        constraints.add("Article", NotEmpty("authors"))
        constraints.check_instance(db)

    def test_fails_on_empty_list(self, db):
        make_article(db, authors=())
        constraints = ConstraintSet()
        constraints.add("Article", NotEmpty("authors"))
        with pytest.raises(ConstraintViolation):
            constraints.check_instance(db)

    def test_fails_on_non_collection(self, db):
        make_article(db)
        constraints = ConstraintSet()
        constraints.add("Article", NotEmpty("status"))
        with pytest.raises(ConstraintViolation):
            constraints.check_instance(db)


class TestOneOf:
    def test_enumeration(self, db):
        make_article(db, status="final")
        constraints = ConstraintSet()
        constraints.add("Article", OneOf(["status"], ["final", "draft"]))
        constraints.check_instance(db)

    def test_out_of_range(self, db):
        make_article(db, status="published")
        constraints = ConstraintSet()
        constraints.add("Article", OneOf(["status"], ["final", "draft"]))
        with pytest.raises(ConstraintViolation):
            constraints.check_instance(db)


class TestDisjunction:
    def test_body_style_disjunction(self, db):
        # Figure 3: constraint figure != nil | paragr != nil
        db.new_object("Body", UnionValue("figure", "a picture"))
        db.new_object("Body", UnionValue("paragr", "a paragraph"))
        constraints = ConstraintSet()
        constraints.add("Body", Disjunction(
            [NotNil("figure")], [NotNil("paragr")]))
        constraints.check_instance(db)

    def test_disjunction_fails_when_no_alternative(self, db):
        db.new_object("Body", UnionValue("figure", NIL))
        constraints = ConstraintSet()
        constraints.add("Body", Disjunction(
            [NotNil("figure")], [NotNil("paragr")]))
        with pytest.raises(ConstraintViolation):
            constraints.check_instance(db)

    def test_section_style_per_branch_constraints(self, db):
        title = db.new_object("Title", "T")
        db.new_object("Section", UnionValue("a1", TupleValue([
            ("title", title), ("bodies", ListValue(["b"]))])))
        constraints = ConstraintSet()
        constraints.add("Section", Disjunction(
            [NotNil("a1", "title"), NotEmpty("a1", "bodies")],
            [NotNil("a2", "title"), NotEmpty("a2", "subsectns")]))
        constraints.check_instance(db)


class TestConstraintSet:
    def test_violations_report_all(self, db):
        make_article(db, status="bogus", authors=())
        constraints = ConstraintSet()
        constraints.add("Article", NotEmpty("authors"))
        constraints.add("Article", OneOf(["status"], ["final", "draft"]))
        found = constraints.violations(db)
        assert len(found) == 2
        assert all(class_name == "Article" for class_name, _ in found)

    def test_len_and_class_names(self):
        constraints = ConstraintSet()
        constraints.add("A", NotNil("x"))
        constraints.add("A", NotNil("y"))
        constraints.add("B", NotNil("z"))
        assert len(constraints) == 3
        assert set(constraints.class_names) == {"A", "B"}

    def test_describe_round_trip(self):
        assert NotNil("a", "b").describe() == "a.b != nil"
        assert NotEmpty("xs").describe() == "xs != list()"
        assert OneOf(["s"], ["final", "draft"]).describe() == (
            "s in set('final', 'draft')")
        disj = Disjunction([NotNil("a")], [NotNil("b")])
        assert "|" in disj.describe()
