"""Tests for the binary codec and the object store."""

import pytest

from repro.errors import StoreError
from repro.oodb import (
    Instance,
    ListValue,
    NIL,
    ObjectStore,
    Oid,
    STRING,
    SetValue,
    TupleValue,
    c,
    decode_value,
    encode_value,
    encoded_size,
    list_of,
    schema_from_classes,
    tuple_of,
)
from repro.oodb.types import INTEGER


ROUND_TRIP_VALUES = [
    NIL,
    0,
    -1,
    42,
    2 ** 40,
    -(2 ** 40),
    True,
    False,
    0.0,
    -2.5,
    3.14159,
    "",
    "hello",
    "accented: é à ü — SGML",
    Oid(7, "Article"),
    TupleValue([]),
    TupleValue([("a", 1), ("b", "x")]),
    ListValue([]),
    ListValue([1, "two", NIL]),
    SetValue([]),
    SetValue([1, 2, 3]),
    TupleValue([("nested", ListValue([SetValue([TupleValue([("x", 1)])])]))]),
]


class TestCodec:
    @pytest.mark.parametrize("value", ROUND_TRIP_VALUES,
                             ids=[repr(v)[:40] for v in ROUND_TRIP_VALUES])
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert not isinstance(decode_value(encode_value(1)), bool)

    def test_trailing_garbage_rejected(self):
        data = encode_value(5) + b"\x00"
        with pytest.raises(StoreError):
            decode_value(data)

    def test_truncated_rejected(self):
        data = encode_value("hello")
        with pytest.raises(StoreError):
            decode_value(data[:-1])

    def test_unknown_tag_rejected(self):
        with pytest.raises(StoreError):
            decode_value(b"\xff")

    def test_unserializable_rejected(self):
        with pytest.raises(StoreError):
            encode_value(object())

    def test_encoded_size_positive(self):
        assert encoded_size(NIL) == 1
        assert encoded_size("abc") > 3

    def test_tuple_order_preserved(self):
        value = TupleValue([("b", 1), ("a", 2)])
        assert decode_value(encode_value(value)).attribute_names == ("b", "a")


@pytest.fixture
def schema():
    return schema_from_classes(
        {"Title": STRING,
         "Article": tuple_of(("title", c("Title")), ("year", INTEGER))},
        roots={"Articles": list_of(c("Article"))})


@pytest.fixture
def store(schema):
    db = Instance(schema)
    titles = [db.new_object("Title", f"title-{i}") for i in range(5)]
    articles = [
        db.new_object("Article", TupleValue([
            ("title", titles[i]), ("year", 1990 + i)]))
        for i in range(5)]
    db.set_root("Articles", ListValue(articles))
    return ObjectStore(db)


class TestSnapshots:
    def test_snapshot_round_trip(self, schema, store):
        data = store.snapshot_bytes()
        restored = ObjectStore.load_bytes(schema, data)
        db = restored.instance
        assert db.object_count() == 10
        assert len(db.root("Articles")) == 5
        first = db.root("Articles")[0]
        value = db.deref(first)
        assert value.get("year") == 1990
        assert db.deref(value.get("title")) == "title-0"

    def test_snapshot_preserves_oid_numbers(self, schema, store):
        restored = ObjectStore.load_bytes(schema, store.snapshot_bytes())
        original_numbers = sorted(
            o.number for o in store.instance.all_oids())
        restored_numbers = sorted(
            o.number for o in restored.instance.all_oids())
        assert original_numbers == restored_numbers

    def test_new_objects_after_load_are_fresh(self, schema, store):
        restored = ObjectStore.load_bytes(schema, store.snapshot_bytes())
        existing = {o.number for o in restored.instance.all_oids()}
        fresh = restored.instance.new_object("Title", "new")
        assert fresh.number not in existing

    def test_bad_magic_rejected(self, schema):
        with pytest.raises(StoreError):
            ObjectStore.load_bytes(schema, b"NOT A SNAPSHOT")

    def test_save_and_load_file(self, schema, store, tmp_path):
        path = tmp_path / "db.snapshot"
        written = store.save(path)
        assert path.stat().st_size == written
        restored = ObjectStore.load(schema, path)
        assert restored.instance.object_count() == 10


class TestIndexes:
    def test_index_lookup(self, store):
        store.create_index("Article", "year")
        hits = store.lookup("Article", "year", 1992)
        assert len(hits) == 1
        assert store.instance.deref(hits[0]).get("year") == 1992

    def test_lookup_without_index_fails(self, store):
        with pytest.raises(StoreError):
            store.lookup("Article", "ghost_attr", 1)

    def test_index_miss_returns_empty(self, store):
        store.create_index("Article", "year")
        assert store.lookup("Article", "year", 1800) == ()

    def test_update_keeps_index_consistent(self, store):
        store.create_index("Article", "year")
        (oid,) = store.lookup("Article", "year", 1991)
        new_value = store.instance.deref(oid).replace("year", 2001)
        store.update_object(oid, new_value)
        assert store.lookup("Article", "year", 1991) == ()
        assert store.lookup("Article", "year", 2001) == (oid,)

    def test_create_index_idempotent(self, store):
        first = store.create_index("Article", "year")
        second = store.create_index("Article", "year")
        assert first is second

    def test_index_skips_non_tuple_values(self, store):
        # Title objects hold bare strings; indexing an attribute on them
        # simply produces an empty index.
        index = store.create_index("Title", "anything")
        assert len(index) == 0


class TestStats:
    def test_stats_report(self, store):
        report = store.stats()
        assert report["Title"]["objects"] == 5
        assert report["Article"]["objects"] == 5
        assert report["Title"]["bytes"] > 0

    def test_total_bytes_positive(self, store):
        assert store.total_bytes() > 0
