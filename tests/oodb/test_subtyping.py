"""Tests for the extended subtyping rules (Sections 4.2, 5.1)."""

import pytest

from repro.errors import SubtypingError
from repro.oodb import (
    ANY,
    BOOLEAN,
    INTEGER,
    STRING,
    c,
    common_supertype,
    is_subtype,
    list_of,
    merge_unions,
    set_of,
    tuple_of,
    union_all,
    union_of,
)


class TestBasicSubtyping:
    def test_reflexive(self):
        for tp in (INTEGER, STRING, c("A"), list_of(INTEGER),
                   tuple_of(("a", INTEGER)), union_of(("a", INTEGER))):
            assert is_subtype(tp, tp)

    def test_atomic_types_disjoint(self):
        assert not is_subtype(INTEGER, STRING)
        assert not is_subtype(BOOLEAN, INTEGER)

    def test_any_is_top_of_class_hierarchy_only(self):
        assert is_subtype(c("Article"), ANY)
        assert not is_subtype(INTEGER, ANY)
        assert not is_subtype(tuple_of(("a", INTEGER)), ANY)
        assert not is_subtype(ANY, c("Article"))

    def test_class_order_callable(self):
        leq = lambda sub, sup: (sub, sup) == ("Title", "Text")
        assert is_subtype(c("Title"), c("Text"), leq)
        assert not is_subtype(c("Text"), c("Title"), leq)

    def test_collection_covariance(self):
        leq = lambda sub, sup: (sub, sup) == ("Title", "Text")
        assert is_subtype(list_of(c("Title")), list_of(c("Text")), leq)
        assert is_subtype(set_of(c("Title")), set_of(c("Text")), leq)
        assert not is_subtype(list_of(c("Text")), list_of(c("Title")), leq)

    def test_list_set_incomparable(self):
        assert not is_subtype(list_of(INTEGER), set_of(INTEGER))
        assert not is_subtype(set_of(INTEGER), list_of(INTEGER))


class TestTupleSubtyping:
    def test_width_subtyping(self):
        wide = tuple_of(("a", INTEGER), ("b", STRING), ("c", BOOLEAN))
        narrow = tuple_of(("a", INTEGER), ("c", BOOLEAN))
        assert is_subtype(wide, narrow)
        assert not is_subtype(narrow, wide)

    def test_order_preserved_requirement(self):
        wide = tuple_of(("a", INTEGER), ("b", STRING))
        swapped = tuple_of(("b", STRING), ("a", INTEGER))
        assert not is_subtype(wide, swapped)

    def test_depth_subtyping(self):
        leq = lambda sub, sup: (sub, sup) == ("Title", "Text")
        sub = tuple_of(("t", c("Title")))
        sup = tuple_of(("t", c("Text")))
        assert is_subtype(sub, sup, leq)


class TestPaperRules:
    """The two new subtyping rules highlighted in Section 5.1."""

    def test_one_field_tuple_below_union(self):
        # [ai: ti] <= (... + ai: ti + ...)
        single = tuple_of(("a", INTEGER))
        union = union_of(("a", INTEGER), ("b", STRING))
        assert is_subtype(single, union)

    def test_full_chain(self):
        # [a1:t1,...,an:tn] <= [ai:ti] <= (a1:t1+...+an:tn)
        full = tuple_of(("a", INTEGER), ("b", STRING))
        single = tuple_of(("a", INTEGER))
        union = union_of(("a", INTEGER), ("b", STRING))
        assert is_subtype(full, single)
        assert is_subtype(single, union)
        assert is_subtype(full, union)  # transitivity holds directly

    def test_tuple_not_below_unrelated_union(self):
        full = tuple_of(("a", INTEGER))
        union = union_of(("x", INTEGER), ("y", STRING))
        assert not is_subtype(full, union)

    def test_tuple_as_heterogeneous_list(self):
        # [a1:t1,...,an:tn] <= [(a1:t1+...+an:tn)]
        tup = tuple_of(("a", INTEGER), ("b", STRING))
        het_list = list_of(union_of(("a", INTEGER), ("b", STRING)))
        assert is_subtype(tup, het_list)

    def test_tuple_below_wider_heterogeneous_list(self):
        tup = tuple_of(("a", INTEGER))
        het_list = list_of(union_of(("a", INTEGER), ("b", STRING)))
        assert is_subtype(tup, het_list)

    def test_tuple_not_below_narrow_heterogeneous_list(self):
        tup = tuple_of(("a", INTEGER), ("b", STRING))
        het_list = list_of(union_of(("a", INTEGER)))
        assert not is_subtype(tup, het_list)

    def test_union_width_subtyping(self):
        small = union_of(("a", INTEGER))
        big = union_of(("a", INTEGER), ("b", STRING))
        assert is_subtype(small, big)
        assert not is_subtype(big, small)


class TestCommonSupertype:
    def test_trivial_directions(self):
        assert common_supertype(INTEGER, INTEGER) == INTEGER
        wide = tuple_of(("a", INTEGER), ("b", STRING))
        narrow = tuple_of(("a", INTEGER))
        assert common_supertype(wide, narrow) == narrow

    def test_rule1_union_vs_non_union_fails(self):
        # Section 4.2 rule 1: no common supertype between a union type and
        # a non-union type (modulo the tuple injection, covered above).
        with pytest.raises(SubtypingError):
            common_supertype(set_of(INTEGER),
                             set_of(union_of(("a", INTEGER), ("b", STRING))))

    def test_rule2_union_merge(self):
        # (a:int + b:bool) join (b:bool + c:string)
        #   = (a:int + b:bool + c:string)
        left = union_of(("a", INTEGER), ("b", BOOLEAN))
        right = union_of(("b", BOOLEAN), ("c", STRING))
        merged = common_supertype(left, right)
        assert merged == union_of(
            ("a", INTEGER), ("b", BOOLEAN), ("c", STRING))

    def test_rule2_marker_conflict(self):
        left = union_of(("a", INTEGER))
        right = union_of(("a", STRING))
        with pytest.raises(SubtypingError):
            merge_unions(left, right)

    def test_classes_join_at_any_without_schema(self):
        assert common_supertype(c("A"), c("B")) == ANY

    def test_classes_join_with_class_join(self):
        join = lambda l, r: "Text" if {l, r} == {"Title", "Author"} else None
        leq = lambda sub, sup: sup == "Text" and sub in (
            "Title", "Author", "Text")
        result = common_supertype(c("Title"), c("Author"), leq, join)
        assert result == c("Text")

    def test_tuple_join_on_shared_attributes(self):
        left = tuple_of(("a", INTEGER), ("b", STRING))
        right = tuple_of(("a", INTEGER), ("c", BOOLEAN))
        assert common_supertype(left, right) == tuple_of(("a", INTEGER))

    def test_tuple_join_no_shared_attribute_fails(self):
        with pytest.raises(SubtypingError):
            common_supertype(tuple_of(("a", INTEGER)),
                             tuple_of(("b", INTEGER)))

    def test_atomic_cross_fails(self):
        with pytest.raises(SubtypingError):
            common_supertype(INTEGER, STRING)

    def test_union_all_folds(self):
        types = [union_of(("a", INTEGER)), union_of(("b", STRING)),
                 union_of(("c", BOOLEAN))]
        assert union_all(types) == union_of(
            ("a", INTEGER), ("b", STRING), ("c", BOOLEAN))

    def test_union_all_empty_rejected(self):
        with pytest.raises(SubtypingError):
            union_all([])


class TestSubtypeImpliesDomainContainment:
    """If t <= t' then dom(t) ⊆ dom(t') — spot-checked with values."""

    def test_tuple_value_in_union_domain(self):
        from repro.oodb import TupleValue, value_in_type
        union = union_of(("a", INTEGER), ("b", STRING))
        value = TupleValue([("a", 5)])
        assert value_in_type(value, tuple_of(("a", INTEGER)))
        assert value_in_type(value, union)

    def test_wide_tuple_value_in_narrow_domain(self):
        from repro.oodb import TupleValue, value_in_type
        value = TupleValue([("a", 5), ("b", "x")])
        assert value_in_type(value, tuple_of(("a", INTEGER), ("b", STRING)))
        assert value_in_type(value, tuple_of(("a", INTEGER)))
