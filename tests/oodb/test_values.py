"""Tests for the value model (Section 5.1)."""

import pytest

from repro.errors import ValueError_
from repro.oodb import (
    ListValue,
    NIL,
    Nil,
    Oid,
    SetValue,
    TupleValue,
    UnionValue,
    equivalent,
    is_value,
)
from repro.oodb.values import deep_size


class TestNil:
    def test_singleton(self):
        assert Nil() is NIL

    def test_falsy(self):
        assert not NIL

    def test_equality(self):
        assert NIL == Nil()
        assert NIL != 0
        assert NIL != ""


class TestOid:
    def test_identity(self):
        assert Oid(1, "A") == Oid(1, "A")
        assert Oid(1, "A") != Oid(2, "A")

    def test_hashable(self):
        assert len({Oid(1, "A"), Oid(1, "A"), Oid(2, "A")}) == 2

    def test_repr(self):
        assert repr(Oid(7, "Article")) == "o7:Article"


class TestTupleValue:
    def test_order_sensitive_equality(self):
        # Section 5.1: for any non-identity permutation the tuples differ.
        ab = TupleValue([("a", 1), ("b", 2)])
        ba = TupleValue([("b", 2), ("a", 1)])
        assert ab != ba

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError_):
            TupleValue([("a", 1), ("a", 2)])

    def test_get_and_has(self):
        t = TupleValue([("title", "SGML"), ("year", 1994)])
        assert t.get("title") == "SGML"
        assert t.has_attribute("year")
        with pytest.raises(KeyError):
            t.get("missing")

    def test_replace_is_functional(self):
        t = TupleValue([("a", 1), ("b", 2)])
        t2 = t.replace("a", 10)
        assert t.get("a") == 1
        assert t2.get("a") == 10
        assert t2.get("b") == 2
        with pytest.raises(KeyError):
            t.replace("zzz", 0)

    def test_as_heterogeneous_list(self):
        t = TupleValue([("a", 1), ("b", 2)])
        het = t.as_heterogeneous_list()
        assert isinstance(het, ListValue)
        assert het[0] == TupleValue([("a", 1)])
        assert het[1] == TupleValue([("b", 2)])

    def test_marked_accessors(self):
        u = UnionValue("figure", Oid(3, "Figure"))
        assert u.is_marked
        assert u.marker == "figure"
        assert u.marked_value == Oid(3, "Figure")

    def test_marked_accessors_reject_wide_tuples(self):
        t = TupleValue([("a", 1), ("b", 2)])
        assert not t.is_marked
        with pytest.raises(ValueError_):
            _ = t.marker
        with pytest.raises(ValueError_):
            _ = t.marked_value

    def test_position_of(self):
        t = TupleValue([("to", "x"), ("from", "y")])
        assert t.position_of("to") == 0
        assert t.position_of("from") == 1


class TestListValue:
    def test_indexing_and_slicing(self):
        lst = ListValue([10, 20, 30])
        assert lst[0] == 10
        assert lst[-1] == 30
        assert lst[0:2] == ListValue([10, 20])

    def test_concatenation(self):
        assert ListValue([1]) + ListValue([2]) == ListValue([1, 2])

    def test_equality_is_ordered(self):
        assert ListValue([1, 2]) != ListValue([2, 1])

    def test_empty(self):
        assert len(ListValue()) == 0


class TestSetValue:
    def test_deduplication(self):
        s = SetValue([1, 2, 2, 3, 1])
        assert len(s) == 3

    def test_order_insensitive_equality(self):
        assert SetValue([1, 2]) == SetValue([2, 1])
        assert hash(SetValue([1, 2])) == hash(SetValue([2, 1]))

    def test_set_algebra(self):
        a = SetValue([1, 2, 3])
        b = SetValue([2, 3, 4])
        assert a.union(b) == SetValue([1, 2, 3, 4])
        assert a.intersection(b) == SetValue([2, 3])
        assert a.difference(b) == SetValue([1])
        assert SetValue([2]).issubset(a)
        assert not a.issubset(b)

    def test_deterministic_iteration(self):
        s = SetValue([3, 1, 2])
        assert list(s) == [3, 1, 2]  # insertion order preserved


class TestIsValue:
    def test_accepts_model_values(self):
        candidates = [
            NIL, Oid(1, "A"), 5, "x", True, 2.5,
            TupleValue([("a", ListValue([SetValue([1])]))]),
        ]
        for candidate in candidates:
            assert is_value(candidate)

    def test_rejects_foreign_objects(self):
        assert not is_value(object())
        assert not is_value([1, 2])  # raw Python list is not a model value
        assert not is_value(TupleValue([("a", object())]))


class TestEquivalence:
    """The ≡ relation: tuple vs heterogeneous list (Section 5.1)."""

    def test_tuple_equiv_marked_list(self):
        tup = TupleValue([("a", 5), ("b", 6)])
        het = ListValue([TupleValue([("a", 5)]), TupleValue([("b", 6)])])
        assert equivalent(tup, het)
        assert equivalent(het, tup)

    def test_not_equiv_when_marker_differs(self):
        tup = TupleValue([("a", 5)])
        het = ListValue([TupleValue([("b", 5)])])
        assert not equivalent(tup, het)

    def test_not_equiv_when_length_differs(self):
        tup = TupleValue([("a", 5), ("b", 6)])
        het = ListValue([TupleValue([("a", 5)])])
        assert not equivalent(tup, het)

    def test_recursive_equivalence(self):
        inner_tup = TupleValue([("x", 1)])
        inner_het = ListValue([TupleValue([("x", 1)])])
        left = ListValue([inner_tup])
        right = ListValue([inner_het])
        assert equivalent(left, right)

    def test_plain_equality_implies_equivalence(self):
        assert equivalent(5, 5)
        assert equivalent("a", "a")
        assert not equivalent(5, 6)

    def test_set_equivalence(self):
        left = SetValue([TupleValue([("a", 1)])])
        right = SetValue([ListValue([TupleValue([("a", 1)])])])
        assert equivalent(left, right)


class TestDeepSize:
    def test_atom_is_one(self):
        assert deep_size(5) == 1
        assert deep_size(NIL) == 1

    def test_nested(self):
        value = TupleValue([("a", ListValue([1, 2]))])
        # tuple + list + 2 atoms
        assert deep_size(value) == 4
