"""Tests for the pretty-printers."""

from repro.oodb import (
    ANY,
    INTEGER,
    ListValue,
    NIL,
    Oid,
    STRING,
    SetValue,
    TupleValue,
    c,
    format_type,
    format_value,
    list_of,
    schema_from_classes,
    set_of,
    tuple_of,
    union_of,
)
from repro.oodb.display import format_class, format_schema


class TestFormatType:
    def test_figure3_style(self):
        assert format_type(tuple_of(
            ("title", c("Title")),
            ("authors", list_of(c("Author"))))) == \
            "tuple (title: Title, authors: list (Author))"
        assert format_type(union_of(
            ("figure", c("Figure")), ("paragr", c("Paragr")))) == \
            "union (figure: Figure, paragr: Paragr)"
        assert format_type(set_of(STRING)) == "set (string)"
        assert format_type(ANY) == "any"
        assert format_type(INTEGER) == "integer"


class TestFormatClass:
    def test_redundant_inherited_structure_omitted(self):
        schema = schema_from_classes(
            {"Text": tuple_of(("text", STRING)),
             "Title": tuple_of(("text", STRING))},
            parents={"Title": ["Text"]})
        assert format_class(schema, "Title") == "class Title inherit Text"

    def test_extended_structure_shown(self):
        schema = schema_from_classes(
            {"Text": tuple_of(("text", STRING)),
             "Paragr": tuple_of(("text", STRING), ("ref", ANY))},
            parents={"Paragr": ["Text"]})
        rendered = format_class(schema, "Paragr")
        assert rendered.startswith("class Paragr inherit Text public type")

    def test_constraints_rendered(self):
        from repro.oodb import ConstraintSet, NotNil
        schema = schema_from_classes({"A": tuple_of(("x", STRING))})
        constraints = ConstraintSet()
        constraints.add("A", NotNil("x"))
        rendered = format_class(schema, "A", constraints)
        assert "constraint: x != nil" in rendered


class TestFormatValue:
    def test_atoms(self):
        assert format_value(NIL) == "nil"
        assert format_value(42) == "42"
        assert format_value("hi") == "'hi'"
        assert format_value(Oid(3, "A")) == "o3:A"

    def test_long_strings_truncated(self):
        rendered = format_value("x" * 100, max_string=10)
        assert "..." in rendered
        assert len(rendered) < 20

    def test_nested_structure(self):
        value = TupleValue([
            ("a", ListValue([1, 2])),
            ("b", SetValue(["x"]))])
        rendered = format_value(value)
        assert "tuple(" in rendered
        assert "list(" in rendered
        assert "set(" in rendered
        # indentation grows with depth
        lines = rendered.splitlines()
        assert any(line.startswith("    ") for line in lines)

    def test_empty_collections(self):
        assert format_value(ListValue()) == "list()"
        assert format_value(SetValue()) == "set()"
        assert format_value(TupleValue([])) == "tuple()"


class TestFormatSchema:
    def test_roots_listed_last(self):
        schema = schema_from_classes(
            {"A": tuple_of(("x", STRING))},
            roots={"As": list_of(c("A"))})
        rendered = format_schema(schema)
        assert rendered.splitlines()[-1] == "name As: list (A)"
