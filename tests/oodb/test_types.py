"""Unit tests for the type constructors (Section 5.1)."""

import pytest

from repro.errors import TypeConstructionError
from repro.oodb import (
    ANY,
    AtomicType,
    BOOLEAN,
    ClassType,
    FLOAT,
    INTEGER,
    ListType,
    STRING,
    SetType,
    TupleType,
    UnionType,
    c,
    list_of,
    set_of,
    tuple_of,
    union_of,
)
from repro.oodb.types import iter_subterms, referenced_classes


class TestAtomicTypes:
    def test_four_atomic_types_exist(self):
        assert {t.name for t in (INTEGER, STRING, BOOLEAN, FLOAT)} == {
            "integer", "string", "boolean", "float"}

    def test_interned(self):
        assert AtomicType("integer") is INTEGER
        assert AtomicType("string") is STRING

    def test_unknown_atomic_rejected(self):
        with pytest.raises(TypeConstructionError):
            AtomicType("char")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            INTEGER.name = "other"

    def test_str(self):
        assert str(FLOAT) == "float"


class TestClassAndAny:
    def test_class_equality_by_name(self):
        assert c("Article") == ClassType("Article")
        assert c("Article") != c("Section")

    def test_class_name_validation(self):
        with pytest.raises(TypeConstructionError):
            ClassType("")
        with pytest.raises(TypeConstructionError):
            ClassType("1bad")

    def test_any_singleton(self):
        from repro.oodb.types import AnyType
        assert AnyType() is ANY
        assert str(ANY) == "any"

    def test_hashable(self):
        assert len({c("A"), c("A"), ANY, ANY}) == 2


class TestCollections:
    def test_list_and_set_distinct(self):
        assert list_of(INTEGER) != set_of(INTEGER)
        assert list_of(INTEGER) == ListType(INTEGER)
        assert set_of(STRING) == SetType(STRING)

    def test_nested(self):
        nested = list_of(set_of(c("Body")))
        assert nested.element == set_of(c("Body"))
        assert str(nested) == "list(set(Body))"

    def test_element_must_be_type(self):
        with pytest.raises(TypeConstructionError):
            ListType("integer")  # type: ignore[arg-type]


class TestTupleType:
    def test_order_matters(self):
        ab = tuple_of(("a", INTEGER), ("b", STRING))
        ba = tuple_of(("b", STRING), ("a", INTEGER))
        assert ab != ba

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(TypeConstructionError):
            tuple_of(("a", INTEGER), ("a", STRING))

    def test_field_access(self):
        t = tuple_of(("title", STRING), ("count", INTEGER))
        assert t.field_type("title") == STRING
        assert t.has_attribute("count")
        assert not t.has_attribute("missing")
        with pytest.raises(KeyError):
            t.field_type("missing")

    def test_position_of(self):
        t = tuple_of(("x", INTEGER), ("y", INTEGER), ("z", INTEGER))
        assert t.position_of("x") == 0
        assert t.position_of("z") == 2
        with pytest.raises(KeyError):
            t.position_of("w")

    def test_keyword_construction(self):
        assert tuple_of(title=STRING) == tuple_of(("title", STRING))

    def test_iter_and_len(self):
        t = tuple_of(("a", INTEGER), ("b", STRING))
        assert list(t) == [("a", INTEGER), ("b", STRING)]
        assert len(t) == 2

    def test_str_matches_figure3_style(self):
        t = tuple_of(("title", c("Title")), ("bodies", list_of(c("Body"))))
        assert str(t) == "tuple(title: Title, bodies: list(Body))"


class TestUnionType:
    def test_branch_order_ignored_for_equality(self):
        u1 = union_of(("a", INTEGER), ("b", STRING))
        u2 = union_of(("b", STRING), ("a", INTEGER))
        assert u1 == u2
        assert hash(u1) == hash(u2)

    def test_markers(self):
        u = union_of(("figure", c("Figure")), ("paragr", c("Paragr")))
        assert u.markers == ("figure", "paragr")
        assert u.branch_type("figure") == c("Figure")
        assert u.has_marker("paragr")
        assert not u.has_marker("table")

    def test_empty_union_rejected(self):
        with pytest.raises(TypeConstructionError):
            UnionType([])

    def test_duplicate_marker_rejected(self):
        with pytest.raises(TypeConstructionError):
            union_of(("a", INTEGER), ("a", STRING))

    def test_union_vs_tuple_distinct(self):
        assert union_of(("a", INTEGER)) != tuple_of(("a", INTEGER))


class TestTypeTraversal:
    def test_iter_subterms(self):
        t = tuple_of(("xs", list_of(union_of(("a", c("A")), ("b", INTEGER)))))
        subterms = list(iter_subterms(t))
        assert c("A") in subterms
        assert INTEGER in subterms
        assert t in subterms

    def test_referenced_classes(self):
        t = tuple_of(
            ("title", c("Title")),
            ("bodies", list_of(union_of(
                ("figure", c("Figure")), ("paragr", c("Paragr"))))))
        assert referenced_classes(t) == {"Title", "Figure", "Paragr"}

    def test_referenced_classes_empty(self):
        assert referenced_classes(tuple_of(("n", INTEGER))) == set()
