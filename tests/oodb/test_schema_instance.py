"""Tests for schemas, instances and value typing (Section 5.1)."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.oodb import (
    ClassHierarchy,
    Instance,
    ListValue,
    MethodSignature,
    NIL,
    Oid,
    STRING,
    Schema,
    SetValue,
    TupleValue,
    UnionValue,
    c,
    list_of,
    populate,
    schema_from_classes,
    tuple_of,
    union_of,
    value_in_type,
)
from repro.oodb.types import ANY, INTEGER


@pytest.fixture
def article_schema() -> Schema:
    """A cut-down version of the Figure 3 schema."""
    classes = {
        "Text": STRING,
        "Title": STRING,
        "Author": STRING,
        "Section": union_of(
            ("a1", tuple_of(("title", c("Title")),
                            ("bodies", list_of(STRING)))),
            ("a2", tuple_of(("title", c("Title")),
                            ("bodies", list_of(STRING)),
                            ("subsectns", list_of(c("Subsectn")))))),
        "Subsectn": tuple_of(("title", c("Title")),
                             ("bodies", list_of(STRING))),
        "Article": tuple_of(
            ("title", c("Title")),
            ("authors", list_of(c("Author"))),
            ("sections", list_of(c("Section"))),
            ("status", STRING)),
    }
    parents = {"Title": ["Text"], "Author": ["Text"]}
    roots = {"Articles": list_of(c("Article"))}
    return schema_from_classes(classes, parents, roots)


class TestClassHierarchy:
    def test_precedes_reflexive_and_transitive(self, article_schema):
        h = article_schema.hierarchy
        assert h.precedes("Title", "Title")
        assert h.precedes("Title", "Text")
        assert not h.precedes("Text", "Title")

    def test_unknown_parent_rejected(self):
        with pytest.raises(SchemaError):
            ClassHierarchy({"A": INTEGER}, {"A": ["Ghost"]})

    def test_unknown_child_rejected(self):
        with pytest.raises(SchemaError):
            ClassHierarchy({"A": INTEGER}, {"Ghost": ["A"]})

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError):
            ClassHierarchy({"A": INTEGER, "B": INTEGER},
                           {"A": ["B"], "B": ["A"]})

    def test_ill_formed_hierarchy_rejected(self):
        # sigma(child) must be <= sigma(parent)
        classes = {"Parent": tuple_of(("a", INTEGER)), "Child": STRING}
        with pytest.raises(SchemaError):
            schema_from_classes(classes, {"Child": ["Parent"]})

    def test_well_formed_with_width_subtyping(self):
        classes = {
            "Parent": tuple_of(("a", INTEGER)),
            "Child": tuple_of(("a", INTEGER), ("b", STRING)),
        }
        schema = schema_from_classes(classes, {"Child": ["Parent"]})
        assert schema.hierarchy.precedes("Child", "Parent")

    def test_subclasses(self, article_schema):
        subs = set(article_schema.hierarchy.subclasses("Text"))
        assert subs == {"Text", "Title", "Author"}

    def test_join_classes(self, article_schema):
        h = article_schema.hierarchy
        assert h.join_classes("Title", "Author") == "Text"
        assert h.join_classes("Title", "Section") is None

    def test_multiple_inheritance(self):
        classes = {
            "A": tuple_of(("x", INTEGER)),
            "B": tuple_of(("y", STRING)),
            "AB": tuple_of(("x", INTEGER), ("y", STRING)),
        }
        # AB's tuple must list x before y and include both; both parents
        # are order-preserving subsequences.
        schema = schema_from_classes(classes, {"AB": ["A", "B"]})
        assert schema.hierarchy.precedes("AB", "A")
        assert schema.hierarchy.precedes("AB", "B")


class TestSchema:
    def test_structure_lookup(self, article_schema):
        assert article_schema.structure("Title") == STRING
        with pytest.raises(SchemaError):
            article_schema.structure("Ghost")

    def test_root_types(self, article_schema):
        assert article_schema.root_type("Articles") == list_of(c("Article"))
        with pytest.raises(SchemaError):
            article_schema.root_type("Ghost")

    def test_root_referencing_unknown_class_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_classes({"A": INTEGER}, roots={"R": c("Ghost")})

    def test_undeclared_class_reference_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_classes({"A": tuple_of(("x", c("Ghost")))})

    def test_method_lookup_with_inheritance(self, article_schema):
        sig = MethodSignature("display", "Text", [], STRING)
        schema = Schema(article_schema.hierarchy, [sig],
                        article_schema.roots)
        assert schema.method("display", "Title") is sig
        with pytest.raises(SchemaError):
            schema.method("display", "Article")

    def test_attribute_carriers(self, article_schema):
        carriers = article_schema.attribute_carriers("title")
        # title appears in the a1-tuple (structurally identical to
        # Subsectn's tuple, so deduplicated), the a2-tuple and Article.
        assert len(carriers) == 3
        carriers_subsectns = article_schema.attribute_carriers("subsectns")
        assert len(carriers_subsectns) == 1


class TestInstance:
    def test_allocation_and_deref(self, article_schema):
        db = Instance(article_schema)
        oid = db.new_object("Title", "Introduction")
        assert db.deref(oid) == "Introduction"
        assert oid.class_name == "Title"

    def test_unknown_class_rejected(self, article_schema):
        db = Instance(article_schema)
        with pytest.raises(InstanceError):
            db.new_object("Ghost")

    def test_extent_includes_subclasses(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "t")
        author = db.new_object("Author", "a")
        assert set(db.extent("Text")) == {title, author}
        assert db.extent("Title") == (title,)
        assert db.disjoint_extent("Text") == ()

    def test_oids_are_fresh(self, article_schema):
        db = Instance(article_schema)
        oids = [db.new_object("Title", "x") for _ in range(10)]
        assert len({o.number for o in oids}) == 10

    def test_set_value_and_dangling(self, article_schema):
        db = Instance(article_schema)
        oid = db.new_object("Title", "old")
        db.set_value(oid, "new")
        assert db.deref(oid) == "new"
        with pytest.raises(InstanceError):
            db.deref(Oid(999, "Title"))
        with pytest.raises(InstanceError):
            db.set_value(Oid(999, "Title"), "x")

    def test_roots(self, article_schema):
        db = Instance(article_schema)
        article = db.new_object("Article")
        db.set_root("Articles", ListValue([article]))
        assert db.root("Articles") == ListValue([article])
        with pytest.raises(InstanceError):
            db.set_root("Ghost", 1)
        with pytest.raises(InstanceError):
            db.root("Ghost")

    def test_check_detects_wrongly_typed_object(self, article_schema):
        db = Instance(article_schema)
        db.new_object("Subsectn", "just a string")  # should be a tuple
        with pytest.raises(InstanceError):
            db.check()

    def test_check_detects_dangling_reference(self, article_schema):
        db = Instance(article_schema)
        ghost = Oid(999, "Title")
        db.new_object("Subsectn", TupleValue([
            ("title", ghost), ("bodies", ListValue())]))
        with pytest.raises(InstanceError):
            db.check()

    def test_check_passes_on_valid_instance(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "Intro")
        author = db.new_object("Author", "V. Christophides")
        section = db.new_object("Section", UnionValue(
            "a1", TupleValue([
                ("title", title), ("bodies", ListValue(["text"]))])))
        article = db.new_object("Article", TupleValue([
            ("title", title),
            ("authors", ListValue([author])),
            ("sections", ListValue([section])),
            ("status", "final")]))
        db.set_root("Articles", ListValue([article]))
        db.check()  # must not raise

    def test_check_validates_roots(self, article_schema):
        db = Instance(article_schema)
        db.set_root("Articles", "not a list")
        with pytest.raises(InstanceError):
            db.check()

    def test_oid_in_class_respects_inheritance(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "t")
        assert db.oid_in_class(title, "Text")
        assert not db.oid_in_class(title, "Author")


class TestMethods:
    def test_dispatch_and_inheritance(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "Intro")
        db.define_method("display", "Text",
                         lambda inst, this: f"<{inst.deref(this)}>")
        assert db.call_method("display", title) == "<Intro>"

    def test_override_wins(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "Intro")
        db.define_method("display", "Text", lambda inst, this: "text")
        db.define_method("display", "Title", lambda inst, this: "title")
        assert db.call_method("display", title) == "title"

    def test_missing_method(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "Intro")
        with pytest.raises(InstanceError):
            db.call_method("ghost", title)


class TestValueInClassTypes:
    def test_oid_membership_uses_hierarchy(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "t")
        assert value_in_type(title, c("Title"), db)
        assert value_in_type(title, c("Text"), db)
        assert not value_in_type(title, c("Author"), db)
        assert value_in_type(NIL, c("Author"), db)

    def test_any_contains_all_oids(self, article_schema):
        db = Instance(article_schema)
        title = db.new_object("Title", "t")
        assert value_in_type(title, ANY, db)
        assert not value_in_type("x", ANY, db)

    def test_populate_helper(self, article_schema):
        db = populate(article_schema, objects={"Title": ["a", "b"]})
        assert len(db.extent("Title")) == 2

    def test_union_domain(self):
        u = union_of(("a", INTEGER), ("b", STRING))
        assert value_in_type(UnionValue("a", 1), u)
        assert value_in_type(UnionValue("b", "x"), u)
        assert not value_in_type(UnionValue("c", 1), u)
        assert not value_in_type(UnionValue("a", "wrong"), u)
        assert not value_in_type(5, u)

    def test_bool_int_domains_disjoint(self):
        from repro.oodb import BOOLEAN
        assert value_in_type(True, BOOLEAN)
        assert not value_in_type(True, INTEGER)
        assert value_in_type(1, INTEGER)
        assert not value_in_type(1, BOOLEAN)

    def test_tuple_extra_trailing_attributes_allowed(self):
        # Section 5.1: dom of a tuple type allows l >= 0 extra attributes.
        declared = tuple_of(("a", INTEGER))
        value = TupleValue([("a", 1), ("extra", "x")])
        assert value_in_type(value, declared)
        # ...but the declared prefix must come first.
        swapped = TupleValue([("extra", "x"), ("a", 1)])
        assert not value_in_type(swapped, declared)

    def test_set_and_list_domains(self):
        from repro.oodb import set_of
        assert value_in_type(SetValue([1, 2]), set_of(INTEGER))
        assert not value_in_type(ListValue([1, "x"]), list_of(INTEGER))
