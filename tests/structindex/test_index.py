"""Unit and regression tests for :class:`repro.structindex.StructuralIndex`:
freshness (epoch gating, targeted dirty marking), the completeness flags
on recursive schemas, node-budget truncation, and the TextIndex-style
query-after-update guarantee."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.oodb.values import Oid
from repro.paths import RESTRICTED, paths_from
from repro.structindex import StructuralIndex

BOOK_DTD = """
<!DOCTYPE book [
<!ELEMENT book - - (title, section+)>
<!ELEMENT section - O (title, para*, section*)>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT para - O (#PCDATA)>
]>
"""

NESTED_BOOK = """
<book><title>The Nesting Book
<section><title>Chapter One
  <para>Top level prose.
  <section><title>One point One
    <para>Deeper prose.
    <section><title>One point One point One
      <para>Deepest prose.
    </section>
  </section>
</section>
</book>
"""


@pytest.fixture
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra", structural=True)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    return s


class TestFreshness:
    def test_load_marks_everything_dirty(self, store):
        index = store.struct_index
        index.refresh()
        assert index.refresh() == 0  # idempotent once clean
        before = index.stats()["nodes"]
        store.load_text(SAMPLE_ARTICLE, name="my_old_article")
        assert index.stats()["dirty"]
        assert index.refresh() > 0
        assert index.stats()["nodes"] > before
        assert not index.stats()["dirty"]

    def test_define_name_adds_a_block(self, store):
        article = store.instance.root("my_article")
        store.define_name("alias", article)
        store.struct_index.refresh()
        assert "alias" in store.struct_index.blocks

    def test_unannounced_epoch_bump_forces_full_rebuild(self, store):
        index = store.struct_index
        index.refresh()
        metrics = store.enable_metrics()
        store.plan_cache.bump_epoch()  # behind the index's back
        assert index.refresh() == len(store.instance.root_names)

    def test_locate_refreshes_first(self, store):
        # a stale index never serves a lookup: locate() sees the new
        # document without an explicit refresh() call
        oid = store.load_text(SAMPLE_ARTICLE, name="late_arrival")
        located = store.struct_index.locate(oid)
        assert located is not None
        block, pre = located
        assert block.values[pre] == oid


class TestTargetedUpdates:
    def test_update_text_marks_only_containing_blocks(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra",
                          structural=True)
        for position, tree in enumerate(generate_corpus(4, seed=5)):
            s.load_tree(tree, name=f"doc{position}", validate=False)
        index = s.struct_index
        index.refresh()
        metrics = s.enable_metrics()
        doc2 = index.blocks["doc2"]
        title = next(value for value in doc2.values
                     if isinstance(value, Oid)
                     and value.class_name == "Title")
        s.update_text(title, "Retitled by the update test")
        rebuilt = index.refresh()
        # only the blocks whose arrays contain the edited oid: the
        # class-extent root and doc2 — not doc0/doc1/doc3
        assert rebuilt == 2
        names = set(s.instance.root_names)
        assert {"doc0", "doc1", "doc3"} < names
        assert metrics.get("structindex.block_rebuilds") == 2

    def test_update_of_unknown_oid_degrades_to_full_rebuild(self, store):
        index = store.struct_index
        index.refresh()
        ghost = Oid(999_999, "Title")
        index.note_object_update(ghost, epoch=store.plan_cache.epoch)
        assert index.refresh() == len(store.instance.root_names)

    def test_query_after_update_sees_new_structure(self, store):
        new_title = "A Structurally Indexed Title"
        q = "select t from my_article PATH_p.title(t)"
        before = {store.text(t) for t in store.query(q)}
        assert new_title not in before
        title = store.instance.root("my_article")
        article = store.instance.deref(title)
        first_title = article.get("title")
        store.update_text(first_title, new_title)
        after = {store.text(t) for t in store.query(q)}
        assert new_title in after


class TestCompleteness:
    def test_recursive_sections_are_marked_incomplete(self):
        s = DocumentStore(BOOK_DTD, structural=True)
        s.load_text(NESTED_BOOK, name="my_book")
        index = s.struct_index
        index.refresh()
        incomplete = [pre for block in index.blocks.values()
                      for pre in range(block.size)
                      if not block.complete[pre]]
        assert incomplete  # the nested section truncates its ancestors

    def test_complete_flags_are_sound(self):
        s = DocumentStore(BOOK_DTD, structural=True)
        s.load_text(NESTED_BOOK, name="my_book")
        s.struct_index.refresh()
        for block in s.struct_index.blocks.values():
            for pre in range(block.size):
                if not block.complete[pre]:
                    continue
                fresh = list(paths_from(block.values[pre], s.instance,
                                        RESTRICTED))
                scanned = list(block.relative_pairs(pre))
                assert [(p, id(v)) for p, v in fresh] \
                    == [(p, id(v)) for p, v in scanned]

    def test_fused_attr_scan_rechecks_blocked_derefs(self):
        # a suppressed dereference leaves the oid with no subtree in
        # the block, but a live ``.title`` still auto-dereferences it:
        # the fused scan must re-check such oids against the instance
        plain = DocumentStore(BOOK_DTD, backend="algebra")
        fused = DocumentStore(BOOK_DTD, backend="algebra",
                              structural=True)
        for s in (plain, fused):
            s.load_text(NESTED_BOOK, name="my_book")
        index = fused.struct_index
        index.refresh()
        assert any(block.blocked_oids
                   for block in index.blocks.values())
        metrics = fused.enable_metrics()
        for q in ("select t from my_book PATH_p.title(t)",
                  "select name(ATT_a) from my_book PATH_p.ATT_a(v)"):
            assert fused.query(q) == plain.query(q)
        assert metrics.get("structindex.range_scans") > 0

    def test_locate_skips_incomplete_occurrences(self):
        s = DocumentStore(BOOK_DTD, structural=True)
        s.load_text(NESTED_BOOK, name="my_book")
        index = s.struct_index
        for oid in s.instance.all_oids():
            located = index.locate(oid)
            if located is None:
                continue
            block, pre = located
            assert block.complete[pre]


class TestTruncation:
    def test_node_budget_disables_block_but_not_queries(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        index = StructuralIndex(s.instance, epoch_source=s.plan_cache,
                                max_block_nodes=10)
        index.note_data_change(epoch=s.plan_cache.epoch)
        index.refresh()
        assert all(block.truncated and block.size == 0
                   for block in index.blocks.values())
        s._engine.ctx.struct_index = index
        s.struct_index = index
        s._engine.structural = True
        metrics = s.enable_metrics()
        result = s.query("select t from my_article PATH_p.title(t)")
        assert len(result) == 3
        assert metrics.get("structindex.fallback_walks") > 0
        assert metrics.get("structindex.range_scans") == 0


class TestMaxPathsParity:
    def test_scan_raises_the_walk_error_text(self, store):
        index = store.struct_index
        block, pre = index.locate(store.instance.root("my_article"))
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError, match="exceeded 5 paths"):
            list(block.relative_pairs(pre, max_paths=5))
        # lazy: a consumer that stops early never sees the error
        pairs = block.relative_pairs(pre, max_paths=5)
        assert next(pairs) is not None
