"""Property tests on the pre/post encoding itself.

The invariants under test are the ones the scan/join operators rely on:

* interval containment is ancestry —
  ``pre(a) < pre(d) ∧ post(d) < post(a)  ⇔  a is an ancestor of d``
  (ground truth: the parent chain);
* level/parent/end consistency (pre-order array well-formedness);
* a *complete* node's range scan enumerates exactly what a fresh
  ``paths_from`` walk from its value would;
* the encoding is stable across serialize → reload.
"""

import random
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.oodb.values import Oid
from repro.paths import RESTRICTED, paths_from
from repro.structindex import StructuralIndex


@lru_cache(maxsize=None)
def indexed_store(size: int, seed: int):
    store = DocumentStore(ARTICLE_DTD)
    for position, tree in enumerate(generate_corpus(size, seed=seed)):
        name = f"doc{position}" if position % 2 == 0 else None
        store.load_tree(tree, name=name, validate=False)
    index = store.build_structural_index()
    return store, index


corpora = st.tuples(st.integers(1, 3), st.integers(0, 19))


def _is_ancestor_by_chain(block, a: int, d: int) -> bool:
    node = block.parent[d]
    while node != -1:
        if node == a:
            return True
        node = block.parent[node]
    return False


class TestIntervalContainment:
    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_pre_post_interval_iff_ancestor(self, corpus):
        size, seed = corpus
        _, index = indexed_store(size, seed)
        rng = random.Random(seed)
        for block in index.blocks.values():
            pairs = [(rng.randrange(block.size), rng.randrange(block.size))
                     for _ in range(200)]
            for a, d in pairs:
                interval = a < d and block.post[d] < block.post[a]
                assert interval == _is_ancestor_by_chain(block, a, d)
                assert block.is_ancestor(a, d) == interval

    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_descendants_are_the_contiguous_pre_range(self, corpus):
        size, seed = corpus
        _, index = indexed_store(size, seed)
        for block in index.blocks.values():
            for pre in range(block.size):
                stop = block.end[pre]
                assert pre < stop <= block.size
                # exactly the nodes in [pre+1, stop) are descendants
                for d in range(pre + 1, min(stop, pre + 40)):
                    assert block.is_ancestor(pre, d)
                if stop < block.size:
                    assert not block.is_ancestor(pre, stop)


class TestArrayConsistency:
    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_level_parent_and_nesting(self, corpus):
        size, seed = corpus
        _, index = indexed_store(size, seed)
        for block in index.blocks.values():
            assert block.parent[0] == -1
            assert block.level[0] == 0
            assert block.paths[0].steps == ()
            for pre in range(1, block.size):
                parent = block.parent[pre]
                assert 0 <= parent < pre
                assert block.level[pre] == block.level[parent] + 1
                # a child's interval nests strictly inside its parent's
                assert parent < pre < block.end[pre] <= block.end[parent]
                # the path is the parent's path plus one step
                assert len(block.paths[pre].steps) \
                    == len(block.paths[parent].steps) + 1
                assert block.paths[pre].steps[:-1] \
                    == block.paths[parent].steps

    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_post_order_is_a_permutation(self, corpus):
        size, seed = corpus
        _, index = indexed_store(size, seed)
        for block in index.blocks.values():
            assert sorted(block.post) == list(range(block.size))

    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_secondary_slices_are_sorted_and_point_back(self, corpus):
        size, seed = corpus
        _, index = indexed_store(size, seed)
        for block in index.blocks.values():
            for oid, positions in block.oids.items():
                assert positions == sorted(positions)
                assert all(block.values[p] == oid for p in positions)
            for atom, positions in block.atoms.items():
                assert positions == sorted(positions)
                assert all(block.values[p] == atom for p in positions)
            for cls, positions in block.classes.items():
                assert all(block.values[p].class_name == cls
                           for p in positions)


class TestScanEquivalence:
    @given(corpora)
    @settings(max_examples=15, deadline=None)
    def test_complete_subtree_scan_equals_fresh_walk(self, corpus):
        size, seed = corpus
        store, index = indexed_store(size, seed)
        rng = random.Random(seed + 1)
        for block in index.blocks.values():
            sample = rng.sample(range(block.size),
                                min(block.size, 25))
            for pre in sample:
                if not block.complete[pre]:
                    continue
                fresh = list(paths_from(block.values[pre],
                                        store.instance, RESTRICTED))
                scanned = list(block.relative_pairs(pre))
                assert len(fresh) == len(scanned)
                for (fp, fv), (sp, sv) in zip(fresh, scanned):
                    assert fp == sp
                    assert fv is sv


class TestAttrCandidates:
    """The fused scan's candidate set is exact: running the live
    selection over the candidates yields the same (path, holder,
    value) triples as running it over every node of a fresh walk."""

    @staticmethod
    def _deref(value, instance):
        while isinstance(value, Oid):
            value = instance.deref(value)
        return value

    def _select(self, store, node, name):
        from repro.calculus.evaluator import _select_attribute
        base = self._deref(node, store.instance)
        return _select_attribute(base, name)

    @given(corpora)
    @settings(max_examples=10, deadline=None)
    def test_candidates_match_the_walk(self, corpus):
        size, seed = corpus
        store, index = indexed_store(size, seed)
        rng = random.Random(seed + 2)
        for block in index.blocks.values():
            names = sorted(block.attr_steps) + [None]
            sample = rng.sample(range(block.size),
                                min(block.size, 8))
            for pre in sample:
                if not block.complete[pre]:
                    continue
                for name in names:
                    live = set()
                    for path, node in paths_from(
                            block.values[pre], store.instance,
                            RESTRICTED):
                        tried = ([name] if name is not None
                                 else sorted(block.attr_steps))
                        for n in tried:
                            for v in self._select(store, node, n):
                                live.add((str(path), id(node), n,
                                          id(v)))
                    depth = len(block.paths[pre].steps)
                    fused = set()
                    for i in block.attr_candidates(pre, name):
                        rel = str(block.paths[i].steps[depth:])
                        tried = ([name] if name is not None
                                 else sorted(block.attr_steps))
                        for n in tried:
                            for v in self._select(
                                    store, block.values[i], n):
                                fused.add((rel, id(block.values[i]),
                                           n, id(v)))
                    live = {(p, nid, n, vid)
                            for p, nid, n, vid in live}
                    # compare on (holder, name, value): the candidate
                    # set must find every holder the walk finds
                    assert ({t[1:] for t in fused}
                            == {t[1:] for t in live})


class TestReloadStability:
    def _fingerprint(self, index):
        printed = {}
        for name, block in index.blocks.items():
            printed[name] = [
                (str(block.paths[pre]), block.level[pre],
                 block.parent[pre], block.post[pre], block.end[pre],
                 block.complete[pre],
                 type(block.values[pre]).__name__)
                for pre in range(block.size)]
        return printed

    @pytest.mark.parametrize("seed", [0, 3, 7, 9])
    def test_encoding_survives_serialize_reload(self, seed, tmp_path):
        store = DocumentStore(ARTICLE_DTD)
        for position, tree in enumerate(
                generate_corpus(2, seed=seed)):
            store.load_tree(tree, name=f"doc{position}", validate=False)
        before = self._fingerprint(store.build_structural_index())
        path = tmp_path / f"snapshot{seed}.db"
        store.save(path)
        reloaded = DocumentStore.load(path)
        after = self._fingerprint(reloaded.build_structural_index())
        assert before == after

    def test_rebuild_on_same_instance_is_identical(self):
        store, index = indexed_store(2, 3)
        before = self._fingerprint(index)
        fresh = StructuralIndex(store.instance)
        fresh.refresh()
        assert self._fingerprint(fresh) == before
