"""Mutation testing for the verifier gate: corrupt one optimizer
rewrite under the test-only ``_TEST_MUTATION`` flag and prove the
verifier catches the broken plan before it can execute — then prove
the intact optimizer sails through the same gate."""

import warnings

import pytest

import repro.algebra.optimizer as optimizer
from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import PlanVerificationError
from repro.observe import MetricsRegistry

#: Pushdown victim: the guarded sink would stop at the Bind that
#: produces ``t``; unguarded, the select dives below its producer.
Q_PUSHDOWN = "select t from my_article PATH_p.title(t) where t = 'On Sets'"

#: Interval-join victim: the fused probe must come from the *other*
#: path; misbound, it probes the variable the scan itself binds.
Q_JOIN = "select v from my_article PATH_p(v), my_old_article PATH_q(v)"

#: Cost-stage victim: a path variable compiles to a multi-branch union,
#: which the cost stage reorders (and would prune, were the ``contains``
#: word absent from the corpus).
Q_COST = ('select t from a in Articles, a PATH_p.title(t) '
          'where a contains ("SGML")')


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.load_text(SAMPLE_ARTICLE, name="my_old_article")
    s.build_text_index()
    s.build_structural_index()
    return s


def _plan_for(store, text):
    query = store._engine.translate(text)
    return query, compile_query(query, store.schema)


class TestSeededBreakage:
    def test_unguarded_pushdown_is_caught(self, store, monkeypatch):
        query, plan = _plan_for(store, Q_PUSHDOWN)
        monkeypatch.setattr(optimizer, "_TEST_MUTATION",
                            "pushdown_unguarded")
        with pytest.raises(PlanVerificationError) as exc:
            optimizer.optimize(plan, verify="raise", query=query)
        assert any(f.code == "PC-UNBOUND" for f in exc.value.faults)

    def test_misbound_interval_probe_is_caught(self, store, monkeypatch):
        query, plan = _plan_for(store, Q_JOIN)
        monkeypatch.setattr(optimizer, "_TEST_MUTATION",
                            "interval_probe_misbound")
        with pytest.raises(PlanVerificationError) as exc:
            optimizer.optimize(plan, structural=True, verify="raise",
                               query=query)
        assert any(f.code in ("PC-JOIN", "PC-UNBOUND")
                   for f in exc.value.faults)

    def test_scrambled_branch_order_is_caught(self, store, monkeypatch):
        """A cost stage that duplicates one branch and drops another no
        longer carries a permutation in its evidence — PC-COST."""
        query, plan = _plan_for(store, Q_COST)
        snapshot = store.stats_manager.snapshot()
        monkeypatch.setattr(optimizer, "_TEST_MUTATION",
                            "branch_order_scrambled")
        with pytest.raises(PlanVerificationError) as exc:
            optimizer.optimize(plan, verify="raise", query=query,
                               stats=snapshot)
        assert any(f.code == "PC-COST" for f in exc.value.faults)

    def test_pruning_nonempty_branch_is_caught(self, store, monkeypatch):
        """A cost stage that prunes a branch without re-checkable zero
        evidence is rejected — PC-COST."""
        query, plan = _plan_for(store, Q_COST)
        snapshot = store.stats_manager.snapshot()
        monkeypatch.setattr(optimizer, "_TEST_MUTATION",
                            "prune_nonempty_branch")
        with pytest.raises(PlanVerificationError) as exc:
            optimizer.optimize(plan, verify="raise", query=query,
                               stats=snapshot)
        assert any(f.code == "PC-COST" for f in exc.value.faults)

    def test_warn_policy_keeps_last_verified_plan(self, store,
                                                  monkeypatch):
        """Production policy: the faulty stage is dropped (with one
        warning and a counter), the pre-stage plan is served, and the
        served plan still verifies — a broken rewrite can degrade the
        plan, never the answer."""
        from repro.plancheck import verify_plan
        query, plan = _plan_for(store, Q_PUSHDOWN)
        metrics = MetricsRegistry()
        monkeypatch.setattr(optimizer, "_TEST_MUTATION",
                            "pushdown_unguarded")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            served = optimizer.optimize(plan, verify="warn", query=query,
                                        metrics=metrics)
        assert any("fails static verification" in str(w.message)
                   for w in caught)
        counters = metrics.snapshot()["counters"]
        assert counters["plancheck.stages_rejected"] >= 1
        assert verify_plan(served, query=query) == []


class TestIntactOptimizer:
    @pytest.mark.parametrize("text", [Q_PUSHDOWN, Q_JOIN])
    @pytest.mark.parametrize("options", [
        {"factor": False},
        {},
        {"structural": True},
    ])
    def test_raise_gate_stays_silent(self, store, text, options):
        assert optimizer._TEST_MUTATION is None
        query, plan = _plan_for(store, text)
        optimizer.optimize(plan, verify="raise", query=query, **options)

    @pytest.mark.parametrize("text", [Q_PUSHDOWN, Q_JOIN, Q_COST])
    def test_cost_stage_passes_raise_gate(self, store, text):
        assert optimizer._TEST_MUTATION is None
        query, plan = _plan_for(store, text)
        optimizer.optimize(plan, verify="raise", query=query,
                           stats=store.stats_manager.snapshot())

    def test_mutation_flag_defaults_off(self):
        assert optimizer._TEST_MUTATION is None
