"""Property tests for the plancheck guarantees.

* Soundness of the gate: every plan the compiler + every diffcheck
  optimizer configuration produce from fuzzer-generated queries passes
  the verifier (the gate never rejects a correct plan).
* The linter's headline guarantee: a lint-clean query text never
  raises :class:`SafetyError` at execution time.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.algebra.optimizer import optimize
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.diffcheck import DiffHarness, generate_cases
from repro.errors import CompilationError, QueryError, SafetyError
from repro.plancheck import verify_plan

#: One optimize() call per diffcheck algebra configuration
#: ("unoptimized" is the bare compile, "cached" re-executes "factored").
CONFIG_OPTIONS = {
    "optimized": {"factor": False},
    "factored": {},
    "structural": {"structural": True},
}

_HARNESS = DiffHarness()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_every_generated_plan_verifies(seed):
    for case in generate_cases(2, seed=seed):
        store = _HARNESS.store_for(case.corpus)
        schema = store._engine.instance.schema
        try:
            plan = compile_query(case.query, schema,
                                 path_semantics="restricted")
        except CompilationError:
            continue  # statically rejected on both sides: no plan
        faults = verify_plan(plan, query=case.query, stage="compile")
        assert faults == [], [f.render() for f in faults]
        for label, options in CONFIG_OPTIONS.items():
            rewritten = optimize(plan, verify="off", **options)
            faults = verify_plan(rewritten, query=case.query, stage=label)
            assert faults == [], [f.render() for f in faults]


# -- lint-clean queries never trip the safety check at run time -------------

_STORE = None


def _shared_store():
    global _STORE
    if _STORE is None:
        _STORE = DocumentStore(ARTICLE_DTD, backend="algebra")
        _STORE.load_text(SAMPLE_ARTICLE, name="my_article")
        _STORE.build_text_index()
    return _STORE


_ATTRS = st.sampled_from(["title", "status", "sections", "body",
                          "zzz_ghost", "figure"])
_COMPARISONS = st.sampled_from([None, "x = 'On Sets'", "x = 3",
                                "1 = 2", "'a' = 'a'"])


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(attr=_ATTRS, comparison=_COMPARISONS,
       root=st.sampled_from(["a in Articles", "my_article"]))
def test_lint_clean_queries_execute_without_safety_error(
        attr, comparison, root):
    store = _shared_store()
    source = "a" if root.startswith("a ") else "my_article"
    text = f"select x from {root}, {source} PATH_p.{attr}(x)"
    if comparison:
        text += f" where {comparison}"
    diagnostics = store.lint(text)
    if any(d.is_error for d in diagnostics):
        # a dirty query may be rejected — that is the linter doing its
        # job; the property only constrains *clean* queries
        with pytest.raises(QueryError):
            store.query(text)
        return
    try:
        store.query(text)
    except SafetyError as exc:  # pragma: no cover - the property
        pytest.fail(f"lint-clean query raised SafetyError: {exc}")
