"""The schema-aware query linter: one test per diagnostic code,
positions, hints, and the ``DocumentStore.lint`` surface."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import QueryTypeError, SafetyError
from repro.plancheck import lint_query
from repro.plancheck.diagnostics import position_of


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    return s


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestErrors:
    def test_clean_query_has_no_diagnostics(self, store):
        assert store.lint("select t from my_article PATH_p.title(t)") == []

    def test_syntax_error_with_position(self, store):
        diags = store.lint("select from where")
        assert codes(diags) == ["PC-E100"]
        assert diags[0].is_error
        assert diags[0].line == 1 and diags[0].column == 8

    def test_unknown_identifier(self, store):
        diags = store.lint("select x from x in Nonexistent_Root")
        assert codes(diags) == ["PC-E101"]
        assert "Nonexistent_Root" in diags[0].message
        assert diags[0].hint

    def test_unsafe_query(self, store, monkeypatch):
        # translation only emits range-restricted shapes against this
        # schema, so exercise the safety branch directly
        import repro.plancheck.lint as lint

        def unsafe(query):
            raise SafetyError("head variable never positively bound")

        monkeypatch.setattr(lint, "check_safety", unsafe)
        diags = store.lint("select t from my_article PATH_p.title(t)")
        assert codes(diags) == ["PC-E102"]
        assert "range-restricted" in diags[0].message

    def test_statically_empty_path(self, store):
        diags = store.lint(
            "select x from a in Articles, a PATH_p.zzz_ghost(x)")
        assert codes(diags) == ["PC-E103"]
        assert "can never hold" in diags[0].message
        assert "fix the attribute names" in diags[0].hint

    def test_other_type_error(self, store, monkeypatch):
        import repro.plancheck.lint as lint

        def reject(query, schema):
            raise QueryTypeError("selector applied to an atom")

        monkeypatch.setattr(lint, "infer_types", reject)
        diags = store.lint("select t from my_article PATH_p.title(t)")
        assert codes(diags) == ["PC-E104"]

    def test_errors_stop_warning_passes(self, store):
        # a broken front end yields exactly one error, no warnings
        diags = store.lint("select from unusedvar where 1 = 2")
        assert codes(diags) == ["PC-E100"]


class TestWarnings:
    def test_unused_variable(self, store):
        text = ("select t from my_article PATH_p.title(t),"
                " my_article PATH_q.status(unusedvar)")
        diags = store.lint(text)
        assert codes(diags) == ["PC-W001"]
        assert not diags[0].is_error
        assert diags[0].fragment == "unusedvar"
        assert (diags[0].line, diags[0].column) \
            == position_of(text, "unusedvar")

    def test_head_variables_are_used(self, store):
        assert store.lint("select t from my_article PATH_p.title(t)") == []

    def test_impossible_comparison(self, store):
        diags = store.lint(
            "select a from a in Articles where a.status = 3")
        assert codes(diags) == ["PC-W002"]
        assert "string vs integer" in diags[0].message

    def test_numeric_widths_are_compatible(self, store):
        # 1 ≡ 1.0 holds under the ≡ equivalence, so PC-W002 stays
        # silent — the constant folder still reports it as always true
        diags = store.lint(
            "select a from a in Articles where 1 = 1.0")
        assert codes(diags) == ["PC-W003"]
        assert "always true" in diags[0].message

    def test_always_false_predicate(self, store):
        diags = store.lint(
            "select t from my_article PATH_p.title(t) where 1 = 2")
        assert codes(diags) == ["PC-W003"]
        assert "always false" in diags[0].message

    def test_always_true_predicate_with_position(self, store):
        text = "select t from my_article PATH_p.title(t) where 'x' = 'x'"
        diags = store.lint(text)
        assert codes(diags) == ["PC-W003"]
        assert "always true" in diags[0].message
        assert (diags[0].line, diags[0].column) == position_of(text, "x")

    def test_constant_comparator_folds(self, store):
        diags = store.lint(
            "select t from my_article PATH_p.title(t) where 2 < 1")
        assert codes(diags) == ["PC-W003"]
        assert "always false" in diags[0].message


class TestSurface:
    def test_lint_query_is_store_lint(self, store):
        text = "select x from a in Articles, a PATH_p.zzz_ghost(x)"
        assert ([d.render() for d in lint_query(text, store.schema)]
                == [d.render() for d in store.lint(text)])

    def test_lint_never_raises_on_garbage(self, store):
        for text in ("", "   ", "select", "от картины"):
            diags = store.lint(text)
            assert diags and all(d.is_error for d in diags)

    def test_lint_counts_metrics(self, store):
        store.reset_metrics()
        store.enable_metrics()
        store.lint("select t from my_article PATH_p.title(t) where 1 = 2")
        counters = store.metrics()["counters"]
        assert counters["plancheck.lint_runs"] == 1
        assert counters["plancheck.diagnostics"] == 1

    def test_render_carries_position_and_hint(self, store):
        diags = store.lint("select from where")
        rendered = diags[0].render()
        assert rendered.startswith("1:8: error PC-E100")
