"""The plan verifier: every fault code on a hand-built broken plan,
silence on every plan the real compiler + optimizer produce."""

import pytest

from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.algebra.operators import (
    BindOp,
    IntervalJoinOp,
    Operator,
    ProjectOp,
    SeedOp,
    SelectOp,
    SharedOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
)
from repro.algebra.optimizer import optimize
from repro.calculus.formulas import Eq, In, Query
from repro.calculus.terms import Const, DataVar, Name, PathVar
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import PlanVerificationError
from repro.plancheck import check_plan, verify_plan, verify_structural_index

X = DataVar("x")
Y = DataVar("y")
P = PathVar("PATH_p")


def codes(faults):
    return [f.code for f in faults]


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.load_text(SAMPLE_ARTICLE, name="my_old_article")
    s.build_text_index()
    s.build_structural_index()
    return s


class TestCleanPlans:
    """The gate must stay silent on every correct plan."""

    QUERIES = [
        "select t from my_article PATH_p.title(t)",
        "select t from my_article PATH_p.title(t) where t = 'On Sets'",
        "select ss from a in Articles, s in a.sections,"
        " ss in s.body where ss contains ('group')",
        "select v from my_article PATH_p(v), my_old_article PATH_q(v)",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_compiled_plan_verifies(self, store, text):
        query = store._engine.translate(text)
        plan = compile_query(query, store.schema)
        assert verify_plan(plan, query=query, stage="compile") == []

    @pytest.mark.parametrize("text", QUERIES)
    @pytest.mark.parametrize("options", [
        {"factor": False},
        {},
        {"structural": True},
    ])
    def test_optimized_plan_verifies(self, store, text, options):
        query = store._engine.translate(text)
        plan = compile_query(query, store.schema)
        rewritten = optimize(plan, verify="off", **options)
        assert verify_plan(rewritten, query=query) == []

    def test_trivial_plan(self):
        plan = ProjectOp(BindOp(SeedOp(), X, Const(1)), [X])
        assert verify_plan(plan) == []


class TestFaultCodes:
    def test_unbound_consumption(self):
        plan = ProjectOp(SelectOp(SeedOp(), Eq(X, Const(1))), [X])
        found = codes(verify_plan(plan))
        assert "PC-UNBOUND" in found
        assert "PC-HEAD" in found  # the head is unbound too

    def test_root_not_projection(self):
        assert codes(verify_plan(SeedOp())) == ["PC-ROOT"]

    def test_head_mismatch_against_query(self):
        plan = ProjectOp(BindOp(SeedOp(), X, Const(1)), [X])
        query = Query([Y], In(Y, Name("Articles")))
        assert codes(verify_plan(plan, query=query)) == ["PC-HEAD"]

    def test_non_seed_leaf(self):
        class Stray(Operator):
            def describe(self, indent=0):
                return "Stray"

        plan = ProjectOp(Stray(), [])
        assert "PC-LEAF" in codes(verify_plan(plan))

    def test_cyclic_plan(self):
        bind = BindOp(SeedOp(), X, Const(1))
        select = SelectOp(bind, Eq(X, Const(1)))
        bind.child = select  # the rewrite bug PC-CYCLE exists for
        assert "PC-CYCLE" in codes(verify_plan(ProjectOp(select, [X])))

    def test_duplicate_shared_ids(self):
        left = SharedOp(BindOp(SeedOp(), X, Const(1)), 2, shared_id=1)
        right = SharedOp(BindOp(SeedOp(), X, Const(2)), 2, shared_id=1)
        plan = ProjectOp(UnionOp([left, right]), [X])
        assert "PC-SHARED" in codes(verify_plan(plan))

    def test_nonpositive_ref_count(self):
        inner = SharedOp(BindOp(SeedOp(), X, Const(1)), 0, shared_id=1)
        plan = ProjectOp(inner, [X])
        assert "PC-SHARED" in codes(verify_plan(plan))

    def test_scan_binding_its_source(self):
        scan = StructuralScanOp(BindOp(SeedOp(), X, Const(1)), X, P, X)
        plan = ProjectOp(scan, [X])
        assert "PC-SCAN" in codes(verify_plan(plan))

    def test_attr_scan_needs_exactly_one_name_source(self):
        scan = StructuralAttrScanOp(
            BindOp(SeedOp(), X, Const(1)), X, P, Y,
            attr="title", attr_var=DataVar("A0"), value_var=DataVar("v"))
        plan = ProjectOp(scan, [Y])
        assert "PC-ATTRSCAN" in codes(verify_plan(plan))

    def test_join_probing_its_own_output(self):
        join = IntervalJoinOp(BindOp(SeedOp(), X, Const(1)), X, P, Y,
                              probe_var=Y, recheck_atom=Eq(Y, Y))
        plan = ProjectOp(join, [Y])
        assert "PC-JOIN" in codes(verify_plan(plan))

    def test_join_with_foreign_recheck_atom(self):
        probe = BindOp(BindOp(SeedOp(), X, Const(1)), Y, Const(2))
        join = IntervalJoinOp(probe, X, P, DataVar("out"),
                              probe_var=Y,
                              recheck_atom=Eq(DataVar("zz"), Y))
        plan = ProjectOp(join, [Y])
        assert "PC-JOIN" in codes(verify_plan(plan))


class TestDeadBranches:
    """The compiler encodes a statically-impossible branch as
    ``Select (0 = 1)``: no row flows above it, so nothing above it may
    be flagged (the false positive that would break diffcheck)."""

    def test_dead_chain_is_vacuously_bound(self):
        dead = SelectOp(SeedOp(), Eq(Const(0), Const(1)))
        plan = ProjectOp(SelectOp(dead, Eq(X, Const(1))), [X])
        assert verify_plan(plan) == []

    def test_dead_union_branch_does_not_constrain(self):
        dead = SelectOp(SeedOp(), Eq(Const(0), Const(1)))
        live = BindOp(SeedOp(), X, Const(1))
        plan = ProjectOp(UnionOp([dead, live]), [X])
        assert verify_plan(plan) == []

    def test_live_select_still_checks(self):
        # a *satisfiable* constant select is not a dead marker
        alive = SelectOp(SeedOp(), Eq(Const(1), Const(1)))
        plan = ProjectOp(SelectOp(alive, Eq(X, Const(1))), [X])
        assert "PC-UNBOUND" in codes(verify_plan(plan))


class TestCheckPlan:
    def test_raises_with_fault_list(self):
        plan = ProjectOp(SeedOp(), [X])
        with pytest.raises(PlanVerificationError) as exc:
            check_plan(plan, stage="pushdown")
        assert exc.value.faults
        assert "pushdown" in str(exc.value)

    def test_silent_on_clean_plan(self):
        check_plan(ProjectOp(BindOp(SeedOp(), X, Const(1)), [X]))


class TestStructuralIndexInvariants:
    def test_built_index_verifies(self, store):
        assert verify_structural_index(store.struct_index) == []

    def test_corrupted_post_order_detected(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="doc")
        index = s.build_structural_index()
        block = next(iter(index.blocks.values()))
        block.post[0], block.post[-1] = block.post[-1], block.post[0]
        faults = verify_structural_index(index)
        assert faults and all(f.code == "PC-INDEX" for f in faults)

    def test_corrupted_parent_detected(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="doc")
        index = s.build_structural_index()
        block = next(iter(index.blocks.values()))
        block.parent[1] = 1  # self-parenting: not a preceding node
        assert "PC-INDEX" in codes(verify_structural_index(index))
