"""Observability of the gate: ``plancheck.*`` counters in
``metrics()`` / ``explain_analyze``, and the per-stage compile-phase
breakdown (one ``optimize.<stage>`` span per rewrite) in the trace."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE

QUERY = "select t from my_article PATH_p.title(t) where t = 'On Sets'"


@pytest.fixture()
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.build_text_index()
    return s


class TestCounters:
    def test_query_run_counts_verifications(self, store):
        store.enable_metrics()
        store.query(QUERY)
        counters = store.metrics()["counters"]
        # one verification per optimizer stage (index, pushdown,
        # factor, cost)
        assert counters["plancheck.verifications"] == 4
        assert "plancheck.faults" not in counters

    def test_explain_analyze_snapshot_carries_counters(self, store):
        report = store.explain_analyze(QUERY)
        counters = report.metrics["counters"]
        assert counters["plancheck.verifications"] >= 1
        assert "plancheck.verifications" in report.render()


class TestCompileBreakdown:
    def test_optimizer_stages_nest_under_compile(self, store):
        report = store.explain_analyze(QUERY)
        compile_span = report.trace.child("compile")
        assert compile_span is not None
        names = compile_span.path_names()
        assert names == ["optimize.index", "optimize.pushdown",
                         "optimize.factor", "optimize.cost"]
        for span in compile_span.children:
            assert span.elapsed >= 0.0
        assert compile_span.attributes["verified"] is True

    def test_structural_store_adds_structuralize_stage(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra",
                          structural=True)
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        s.build_structural_index()
        report = s.explain_analyze("select t from my_article"
                                   " PATH_p.title(t)")
        compile_span = report.trace.child("compile")
        assert compile_span.path_names()[0] == "optimize.structuralize"

    def test_unoptimized_engine_traces_bare_verification(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        s._engine.optimize = False
        report = s.explain_analyze(QUERY)
        compile_span = report.trace.child("compile")
        assert compile_span.path_names() == ["optimize.verify"]
        assert compile_span.attributes["verified"] is True

    def test_cache_hit_skips_compile_side_spans(self, store):
        store.query(QUERY)  # warm the plan cache
        report = store.explain_analyze(QUERY)
        assert report.trace.child("compile") is None
