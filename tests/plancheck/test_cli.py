"""``python -m repro.plancheck`` — exit codes, --json, --file, --verify."""

import json

import pytest

from repro.plancheck.__main__ import main

CLEAN = "select a from a in Articles"
DIRTY = "select x from a in Articles, a PATH_p.zzz_ghost(x)"
WARNED = "select a from a in Articles where 1 = 2"


class TestExitCodes:
    def test_clean_query_exits_zero(self, capsys):
        assert main([CLEAN]) == 0
        assert capsys.readouterr().out.startswith("ok ")

    def test_error_counts_into_exit_code(self, capsys):
        assert main([DIRTY]) == 1
        out = capsys.readouterr().out
        assert "PC-E103" in out and DIRTY in out

    def test_warnings_do_not_fail(self, capsys):
        assert main([WARNED]) == 0
        assert "PC-W003" in capsys.readouterr().out

    def test_exit_code_sums_over_queries(self, capsys):
        assert main([DIRTY, CLEAN, DIRTY]) == 2

    def test_no_queries_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])


class TestVerify:
    def test_clean_query_verifies_all_configs(self, capsys):
        assert main(["--verify", CLEAN]) == 0

    def test_dirty_query_skips_verification(self, capsys):
        # an error-level lint stops before compilation: the exit code
        # counts the diagnostic once, not a cascade of plan faults
        assert main(["--verify", DIRTY]) == 1


class TestInputs:
    def test_file_input(self, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(f"{CLEAN}\n\n{DIRTY}\n")
        assert main(["--file", str(queries)]) == 1

    def test_json_output(self, capsys):
        assert main(["--json", DIRTY, WARNED]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert [r["query"] for r in reports] == [DIRTY, WARNED]
        assert reports[0]["diagnostics"][0]["code"] == "PC-E103"
        assert reports[0]["diagnostics"][0]["severity"] == "error"
        assert reports[1]["diagnostics"][0]["code"] == "PC-W003"

    def test_json_verify_reports_plan_faults_key(self, capsys):
        assert main(["--json", "--verify", CLEAN]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["plan_faults"] == []

    def test_custom_dtd(self, tmp_path, capsys):
        dtd = tmp_path / "note.dtd"
        dtd.write_text("<!ELEMENT note - - (subject)>\n"
                       "<!ELEMENT subject - - (#PCDATA)>")
        assert main(["--dtd", str(dtd),
                     "select n from n in Notes"]) == 0
        assert main(["--dtd", str(dtd), CLEAN]) == 1  # no Articles root
