"""Tests for content-model parsing and syntactic properties."""

import pytest

from repro.errors import ContentModelError
from repro.sgml.contentmodel import (
    AndGroup,
    AnyContent,
    Choice,
    ElementRef,
    Empty,
    Opt,
    PCData,
    PCDATA_NAME,
    Plus,
    Seq,
    Star,
    parse_content_model,
)


class TestParsing:
    def test_figure1_article_model(self):
        model = parse_content_model(
            "(title, author+, affil, abstract, section+, acknowl)")
        assert isinstance(model, Seq)
        assert len(model.parts) == 6
        assert model.parts[0] == ElementRef("title")
        assert isinstance(model.parts[1], Plus)
        assert model.parts[1].child == ElementRef("author")

    def test_figure1_section_model(self):
        model = parse_content_model(
            "((title, body+) | (title, body*, subsectn+))")
        assert isinstance(model, Choice)
        assert len(model.parts) == 2
        left, right = model.parts
        assert isinstance(left, Seq) and len(left.parts) == 2
        assert isinstance(right, Seq) and len(right.parts) == 3
        assert isinstance(right.parts[1], Star)

    def test_figure1_figure_model(self):
        model = parse_content_model("(picture, caption?)")
        assert isinstance(model, Seq)
        assert isinstance(model.parts[1], Opt)

    def test_pcdata(self):
        assert parse_content_model("(#PCDATA)") == PCData()
        assert parse_content_model("(#PCDATA)").allows_pcdata()

    def test_empty_and_any(self):
        assert parse_content_model("EMPTY") == Empty()
        assert parse_content_model("ANY") == AnyContent()

    def test_and_group(self):
        model = parse_content_model("(to & from)")
        assert isinstance(model, AndGroup)
        assert [str(p) for p in model.parts] == ["to", "from"]

    def test_single_part_group_unwraps(self):
        assert parse_content_model("(title)") == ElementRef("title")

    def test_group_occurrence(self):
        model = parse_content_model("(a, b)+")
        assert isinstance(model, Plus)
        assert isinstance(model.child, Seq)

    def test_nested_groups(self):
        model = parse_content_model("((a | b), (c, d)*)")
        assert isinstance(model, Seq)
        assert isinstance(model.parts[0], Choice)
        assert isinstance(model.parts[1], Star)

    def test_mixed_connectors_rejected(self):
        with pytest.raises(ContentModelError):
            parse_content_model("(a, b | c)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ContentModelError):
            parse_content_model("(a) extra")

    def test_unterminated_group_rejected(self):
        with pytest.raises(ContentModelError):
            parse_content_model("(a, b")

    def test_empty_input_rejected(self):
        with pytest.raises(ContentModelError):
            parse_content_model("")

    def test_unknown_reserved_name_rejected(self):
        with pytest.raises(ContentModelError):
            parse_content_model("(#CDETA)")

    def test_str_round_trip(self):
        texts = [
            "(title, author+, affil)",
            "((a | b), c?)",
            "(a & b & c)",
            "(#PCDATA)",
            "EMPTY",
        ]
        for text in texts:
            model = parse_content_model(text)
            assert parse_content_model(str(model)) == model


class TestProperties:
    def test_nullable(self):
        assert not parse_content_model("(a, b)").nullable()
        assert parse_content_model("(a?, b*)").nullable()
        assert parse_content_model("(a | b?)").nullable()
        assert not parse_content_model("(a | b)").nullable()
        assert parse_content_model("(a, b)*").nullable()
        assert not parse_content_model("(a, b)+").nullable()
        assert parse_content_model("(a?, b?)+").nullable()
        assert parse_content_model("EMPTY").nullable()
        assert parse_content_model("(#PCDATA)").nullable()

    def test_first_of_seq_skips_nullable_prefix(self):
        model = parse_content_model("(a?, b*, c)")
        assert model.first() == {"a", "b", "c"}
        model2 = parse_content_model("(a, b)")
        assert model2.first() == {"a"}

    def test_first_of_choice_unions(self):
        model = parse_content_model("((title, body+) | (intro, body*))")
        assert model.first() == {"title", "intro"}

    def test_first_of_and_group(self):
        model = parse_content_model("(to & from)")
        assert model.first() == {"to", "from"}

    def test_mentioned(self):
        model = parse_content_model("((a | b), c?, #PCDATA)")
        assert model.mentioned() == {"a", "b", "c"}
        assert model.allows_pcdata()

    def test_first_of_pcdata(self):
        assert parse_content_model("(#PCDATA)").first() == {PCDATA_NAME}
