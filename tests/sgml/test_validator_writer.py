"""Tests for the validator and the writer (round trips)."""

import pytest

from repro.corpus.article_dtd import article_dtd
from repro.corpus.sample_article import sample_article_tree
from repro.errors import ValidationError
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance import Element, Text
from repro.sgml.instance_parser import parse_document
from repro.sgml.validator import validate, validation_problems
from repro.sgml.writer import escape_text, write_document


class TestValidator:
    def test_figure2_is_valid(self):
        validate(sample_article_tree(), article_dtd())

    def test_wrong_document_element(self):
        dtd = parse_dtd("<!DOCTYPE doc [<!ELEMENT doc - - (#PCDATA)>]>")
        tree = Element("other", children=[Text("x")])
        problems = validation_problems(tree, dtd)
        assert any("document element" in p for p in problems)

    def test_undeclared_element(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        tree.append(Element("ghost"))
        problems = validation_problems(tree, dtd)
        assert any("ghost" in p for p in problems)

    def test_bad_child_sequence(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        # remove the mandatory acknowl
        tree.children = [c for c in tree.children
                         if not (isinstance(c, Element)
                                 and c.name == "acknowl")]
        problems = validation_problems(tree, dtd)
        assert any("content model" in p for p in problems)

    def test_empty_element_with_content(self):
        dtd = article_dtd()
        picture = Element("picture", children=[Text("illegal")])
        problems = validation_problems(picture, dtd)
        assert any("EMPTY" in p for p in problems)

    def test_pcdata_element_with_child_elements(self):
        dtd = article_dtd()
        title = Element("title", children=[Element("author")])
        problems = validation_problems(title, dtd)
        assert any("#PCDATA" in p for p in problems)

    def test_undeclared_attribute(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        tree.attributes["bogus"] = "1"
        problems = validation_problems(tree, dtd)
        assert any("bogus" in p for p in problems)

    def test_enumerated_value_out_of_range(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        tree.attributes["status"] = "published"
        problems = validation_problems(tree, dtd)
        assert any("published" in p for p in problems)

    def test_required_attribute_missing(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc id ID #REQUIRED>
        """)
        tree = Element("doc", children=[Text("x")])
        problems = validation_problems(tree, dtd)
        assert any("required" in p for p in problems)

    def test_number_attribute(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc n NUMBER #IMPLIED>
        """)
        good = Element("doc", {"n": "42"}, [Text("x")])
        assert validation_problems(good, dtd) == []
        bad = Element("doc", {"n": "x42"}, [Text("x")])
        assert any("NUMBER" in p for p in validation_problems(bad, dtd))

    def test_duplicate_id_detected(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        section = tree.find_all("section")[0]
        for _ in range(2):
            body = Element("body")
            figure = Element("figure", {"label": "fig-1"})
            figure.append(Element("picture", {"sizex": "16cm"}))
            body.append(figure)
            section.append(body)
        problems = validation_problems(tree, dtd)
        assert any("duplicate ID" in p for p in problems)

    def test_idref_resolution(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        paragraph = tree.find_all("paragr")[0]
        paragraph.attributes["reflabel"] = "nowhere"
        problems = validation_problems(tree, dtd)
        assert any("IDREF" in p for p in problems)

    def test_idref_resolves_when_target_exists(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        section = tree.find_all("section")[0]
        body = Element("body")
        figure = Element("figure", {"label": "fig-1"})
        figure.append(Element("picture", {"sizex": "16cm"}))
        body.append(figure)
        section.append(body)
        paragraph = tree.find_all("paragr")[0]
        paragraph.attributes["reflabel"] = "fig-1"
        assert validation_problems(tree, dtd) == []

    def test_entity_attribute_checked(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        section = tree.find_all("section")[0]
        body = Element("body")
        figure = Element("figure")
        picture = Element("picture", {"sizex": "16cm", "file": "fig1"})
        figure.append(picture)
        body.append(figure)
        section.append(body)
        assert validation_problems(tree, dtd) == []
        picture.attributes["file"] = "ghost-entity"
        assert any("entity" in p for p in validation_problems(tree, dtd))

    def test_validate_raises_on_first_problem(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        tree.attributes["status"] = "published"
        with pytest.raises(ValidationError):
            validate(tree, dtd)


class TestWriter:
    def test_escaping(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_figure2_round_trip(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        text = write_document(tree, dtd)
        reparsed = parse_document(text, dtd)
        assert reparsed == tree

    def test_minimized_round_trip(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        minimized = write_document(tree, dtd, minimize=True)
        # minimized output drops omissible end tags...
        assert "</author>" not in minimized
        # ...but re-parses to the same structure
        assert parse_document(minimized, dtd) == tree

    def test_minimized_is_shorter(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        full = write_document(tree, dtd)
        minimized = write_document(tree, dtd, minimize=True)
        assert len(minimized) < len(full)

    def test_well_formed_round_trip_without_dtd(self):
        tree = parse_document("<a><b>x &amp; y</b><c>z</c></a>")
        text = write_document(tree)
        assert parse_document(text) == tree

    def test_attributes_written(self):
        tree = parse_document('<a x="1">t</a>')
        assert 'x="1"' in write_document(tree)

    def test_attribute_escaping(self):
        tree = Element("a", {"t": 'say "hi" & bye'}, [Text("x")])
        text = write_document(tree)
        assert "&quot;" in text
        reparsed = parse_document(text)
        assert reparsed.attributes["t"] == 'say "hi" & bye'

    def test_empty_element_has_no_end_tag(self):
        dtd = article_dtd()
        figure = Element("figure")
        figure.append(Element("picture", {"sizex": "16cm"}))
        text = write_document(figure, dtd)
        assert "</picture>" not in text
        assert "<picture" in text

    def test_indented_output_round_trips(self):
        dtd = article_dtd()
        tree = sample_article_tree()
        pretty = write_document(tree, dtd, indent=2)
        assert "\n" in pretty
        assert parse_document(pretty, dtd) == tree
