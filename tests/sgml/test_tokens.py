"""Unit tests for the shared character cursor."""

import pytest

from repro.errors import DtdSyntaxError, SgmlError
from repro.sgml.tokens import Cursor, is_name


class TestNames:
    def test_valid_names(self):
        assert is_name("article")
        assert is_name("a1-b.c_d")

    def test_invalid_names(self):
        assert not is_name("")
        assert not is_name("1abc")
        assert not is_name("a b")
        assert not is_name("-x")


class TestCursor:
    def test_position_tracking(self):
        cursor = Cursor("ab\ncd\nef")
        assert (cursor.line, cursor.column) == (1, 1)
        cursor.advance(3)
        assert (cursor.line, cursor.column) == (2, 1)
        cursor.advance(1)
        assert (cursor.line, cursor.column) == (2, 2)
        cursor.advance(2)
        assert cursor.line == 3

    def test_peek_and_startswith(self):
        cursor = Cursor("hello world")
        assert cursor.peek() == "h"
        assert cursor.peek(5) == "hello"
        assert cursor.startswith("hello")
        assert not cursor.startswith("world")

    def test_expect(self):
        cursor = Cursor("<!ELEMENT")
        cursor.expect("<!")
        assert cursor.peek() == "E"
        with pytest.raises(SgmlError):
            cursor.expect("xyz")

    def test_expect_error_class(self):
        cursor = Cursor("nope")
        with pytest.raises(DtdSyntaxError):
            cursor.expect("yes", DtdSyntaxError)

    def test_take_while_until_name(self):
        cursor = Cursor("abc123 rest")
        assert cursor.take_while(str.isalnum) == "abc123"
        cursor.skip_whitespace()
        assert cursor.take_until("st") == "re"
        assert cursor.peek(2) == "st"

    def test_take_until_missing_raises(self):
        cursor = Cursor("no terminator here")
        with pytest.raises(SgmlError):
            cursor.take_until("@@")

    def test_take_name(self):
        cursor = Cursor("article>")
        assert cursor.take_name() == "article"
        assert cursor.peek() == ">"
        with pytest.raises(SgmlError):
            Cursor("123").take_name()

    def test_at_end(self):
        cursor = Cursor("x")
        assert not cursor.at_end()
        cursor.advance()
        assert cursor.at_end()
        assert cursor.advance() == ""  # advancing past the end is safe

    def test_error_carries_position(self):
        cursor = Cursor("line1\nline2")
        cursor.advance(7)
        error = cursor.error("problem")
        assert error.line == 2
        assert error.column == 2
