"""Tests for DTD parsing — experiment F1 lives here.

The F1 assertions check that the Figure-1 DTD parses to exactly the
inventory the paper presents: 13 elements, 4 attribute lists, the fig1
entity, and the tag-omission flags of each declaration.
"""

import pytest

from repro.corpus.article_dtd import ARTICLE_DTD, article_dtd
from repro.errors import DtdSyntaxError
from repro.sgml.contentmodel import (
    Choice,
    ElementRef,
    Empty,
    PCData,
    Seq,
)
from repro.sgml.dtd import (
    ATT_CDATA,
    ATT_ENTITY,
    ATT_ID,
    ATT_IDREF,
    ATT_NAME_GROUP,
    ATT_NMTOKEN,
    DEFAULT_IMPLIED,
    DEFAULT_REQUIRED,
)
from repro.sgml.dtd_parser import parse_dtd


class TestFigure1:
    """Experiment F1: the paper's DTD parses to the right inventory."""

    def test_doctype(self):
        assert article_dtd().doctype == "article"

    def test_all_thirteen_elements_declared(self):
        dtd = article_dtd()
        assert set(dtd.element_names) == {
            "article", "title", "author", "affil", "abstract", "section",
            "subsectn", "body", "figure", "picture", "caption", "paragr",
            "acknowl"}

    def test_article_content_model(self):
        model = article_dtd().element("article").model
        assert isinstance(model, Seq)
        assert [str(p) for p in model.parts] == [
            "title", "author+", "affil", "abstract", "section+", "acknowl"]

    def test_section_is_a_choice_of_two_shapes(self):
        model = article_dtd().element("section").model
        assert isinstance(model, Choice)
        assert len(model.parts) == 2

    def test_body_is_figure_or_paragr(self):
        model = article_dtd().element("body").model
        assert model == Choice([ElementRef("figure"), ElementRef("paragr")])

    def test_picture_is_empty(self):
        assert article_dtd().element("picture").model == Empty()

    def test_pcdata_elements(self):
        dtd = article_dtd()
        for name in ("title", "author", "abstract", "caption", "paragr",
                     "acknowl"):
            assert dtd.element(name).model == PCData(), name

    def test_tag_omission_flags(self):
        dtd = article_dtd()
        assert not dtd.element("article").omit_start
        assert not dtd.element("article").omit_end
        assert not dtd.element("title").omit_start
        assert dtd.element("title").omit_end
        assert dtd.element("caption").omit_start  # declared O O
        assert dtd.element("caption").omit_end

    def test_article_status_attribute(self):
        status = article_dtd().attlist("article").get("status")
        assert status.kind == ATT_NAME_GROUP
        assert status.allowed_values == ("final", "draft")
        assert status.has_default
        assert status.default_value == "draft"

    def test_figure_label_is_id(self):
        label = article_dtd().attlist("figure").get("label")
        assert label.kind == ATT_ID
        assert label.default_kind == DEFAULT_IMPLIED

    def test_picture_attributes(self):
        attlist = article_dtd().attlist("picture")
        assert attlist.get("sizex").kind == ATT_NMTOKEN
        assert attlist.get("sizex").default_value == "16cm"
        assert attlist.get("sizey").default_kind == DEFAULT_IMPLIED
        assert attlist.get("file").kind == ATT_ENTITY

    def test_paragr_reflabel_is_idref(self):
        reflabel = article_dtd().attlist("paragr").get("reflabel")
        assert reflabel.kind == ATT_IDREF

    def test_fig1_entity(self):
        entity = article_dtd().entity("fig1")
        assert entity is not None
        assert entity.is_external
        assert entity.system_id == "/u/christop/SGML/image1"
        assert entity.ndata == ""  # Figure 1 omits the notation name

    def test_check_clean(self):
        assert article_dtd().check() == []

    def test_source_text_has_doctype_wrapper(self):
        assert ARTICLE_DTD.startswith("<!DOCTYPE article [")


class TestDtdParserGeneral:
    def test_bare_declarations_without_doctype(self):
        dtd = parse_dtd("<!ELEMENT doc - - (#PCDATA)>")
        assert dtd.doctype == "doc"
        assert dtd.has_element("doc")

    def test_comments_skipped(self):
        dtd = parse_dtd("""
            <!-- a comment -->
            <!ELEMENT doc - - (item*)>
            <!-- another <!ELEMENT fake> -->
            <!ELEMENT item - O (#PCDATA)>
        """)
        assert set(dtd.element_names) == {"doc", "item"}

    def test_multi_element_declaration(self):
        dtd = parse_dtd("<!ELEMENT (a|b|c) - O (#PCDATA)>")
        assert set(dtd.element_names) == {"a", "b", "c"}
        assert dtd.element("b").omit_end

    def test_required_attribute(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc id ID #REQUIRED>
        """)
        assert dtd.attlist("doc").get("id").required

    def test_cdata_attribute(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc note CDATA "none">
        """)
        note = dtd.attlist("doc").get("note")
        assert note.kind == ATT_CDATA
        assert note.default_value == "none"

    def test_fixed_attribute(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc version CDATA #FIXED "1.0">
        """)
        version = dtd.attlist("doc").get("version")
        assert version.has_default
        assert version.default_value == "1.0"

    def test_attlists_accumulate(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc a CDATA #IMPLIED>
            <!ATTLIST doc b CDATA #IMPLIED>
        """)
        assert len(dtd.attlist("doc")) == 2

    def test_internal_entity(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ENTITY inria "Institut National de Recherche">
        """)
        entity = dtd.entity("inria")
        assert entity.is_internal
        assert entity.text == "Institut National de Recherche"

    def test_parameter_entity_substitution(self):
        dtd = parse_dtd("""
            <!ENTITY % common "title, author">
            <!ELEMENT doc - - (%common;, body)>
            <!ELEMENT title - O (#PCDATA)>
            <!ELEMENT author - O (#PCDATA)>
            <!ELEMENT body - O (#PCDATA)>
        """)
        model = dtd.element("doc").model
        assert [str(p) for p in model.parts] == ["title", "author", "body"]

    def test_undefined_parameter_entity_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("<!ELEMENT doc - - (%ghost;)>")

    def test_duplicate_element_rejected(self):
        with pytest.raises(Exception):
            parse_dtd("""
                <!ELEMENT doc - - (#PCDATA)>
                <!ELEMENT doc - - (#PCDATA)>
            """)

    def test_first_entity_declaration_wins(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ENTITY e "first">
            <!ENTITY e "second">
        """)
        assert dtd.entity("e").text == "first"

    def test_check_reports_undeclared_reference(self):
        dtd = parse_dtd("<!ELEMENT doc - - (ghost+)>")
        problems = dtd.check()
        assert any("ghost" in p for p in problems)

    def test_check_reports_attlist_on_undeclared_element(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST ghost a CDATA #IMPLIED>
        """)
        assert any("ghost" in p for p in dtd.check())

    def test_check_reports_multiple_id_attributes(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc i1 ID #IMPLIED i2 ID #IMPLIED>
        """)
        assert any("ID" in p for p in dtd.check())

    def test_bad_declaration_keyword_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("<!WIDGET doc>")

    def test_unterminated_declaration_rejected(self):
        with pytest.raises(DtdSyntaxError):
            parse_dtd("<!ELEMENT doc - - (#PCDATA)")

    def test_notation_declarations_tolerated(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!NOTATION gif SYSTEM "gifviewer">
        """)
        assert dtd.has_element("doc")

    def test_error_carries_line_number(self):
        try:
            parse_dtd("<!ELEMENT doc - - (#PCDATA)>\n<!WIDGET x>")
        except DtdSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected DtdSyntaxError")
