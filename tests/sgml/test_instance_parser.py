"""Tests for instance parsing and omitted-tag inference — experiment F2."""

import pytest

from repro.corpus.article_dtd import article_dtd
from repro.corpus.sample_article import SAMPLE_ARTICLE, sample_article_tree
from repro.errors import DocumentSyntaxError, EntityError
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance import Element, Text, element_count, iter_elements
from repro.sgml.instance_parser import parse_document


class TestFigure2:
    """Experiment F2: the Figure-2 instance parses against Figure 1."""

    def test_root_and_status(self):
        tree = sample_article_tree()
        assert tree.name == "article"
        assert tree.attributes["status"] == "final"

    def test_four_authors_via_end_tag_inference(self):
        tree = sample_article_tree()
        authors = tree.find_all("author")
        assert [a.text_content() for a in authors] == [
            "V. Christophides", "S. Abiteboul", "S. Cluet", "M. Scholl"]
        assert all(a.end_inferred for a in authors)

    def test_title_inferred_end(self):
        tree = sample_article_tree()
        title = tree.first("title")
        assert title is not None
        assert title.end_inferred
        assert "Novel Query Facilities" in title.text_content()

    def test_two_sections_each_with_title_and_body(self):
        tree = sample_article_tree()
        sections = tree.find_all("section")
        assert len(sections) == 2
        for section in sections:
            assert section.first("title") is not None
            assert section.first("body") is not None

    def test_section_titles(self):
        tree = sample_article_tree()
        titles = [s.first("title").text_content()
                  for s in tree.find_all("section")]
        assert titles == ["Introduction", "SGML preliminaries"]

    def test_paragraphs_inside_bodies(self):
        tree = sample_article_tree()
        paragraphs = tree.find_all("paragr")
        assert len(paragraphs) == 2
        assert "SGML standard" in paragraphs[0].text_content()

    def test_child_order_follows_document(self):
        tree = sample_article_tree()
        names = [c.name for c in tree.child_elements()]
        assert names == ["title", "author", "author", "author", "author",
                         "affil", "abstract", "section", "section",
                         "acknowl"]

    def test_element_count(self):
        # article + title + 4 authors + affil + abstract
        # + 2 x (section + title + body + paragr) + acknowl = 17
        assert element_count(sample_article_tree()) == 17


class TestTagInference:
    def test_end_tag_inference_chain(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (item+)>
            <!ELEMENT item - O (#PCDATA)>
        """)
        tree = parse_document(
            "<doc><item>one<item>two<item>three</doc>", dtd)
        assert [i.text_content() for i in tree.find_all("item")] == [
            "one", "two", "three"]

    def test_start_tag_inference(self):
        # `caption` is O O: its start tag may be omitted where unambiguous.
        dtd = parse_dtd("""
            <!ELEMENT fig - - (caption)>
            <!ELEMENT caption O O (#PCDATA)>
        """)
        tree = parse_document("<fig>the caption text</fig>", dtd)
        caption = tree.first("caption")
        assert caption is not None
        assert caption.start_inferred
        assert caption.text_content() == "the caption text"

    def test_nested_start_tag_inference(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (sec)>
            <!ELEMENT sec O O (par+)>
            <!ELEMENT par O O (#PCDATA)>
        """)
        tree = parse_document("<doc>hello</doc>", dtd)
        sec = tree.first("sec")
        assert sec is not None and sec.start_inferred
        par = sec.first("par")
        assert par is not None and par.start_inferred
        assert par.text_content() == "hello"

    def test_end_inference_at_eof(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - O (item+)>
            <!ELEMENT item - O (#PCDATA)>
        """)
        tree = parse_document("<doc><item>only", dtd)
        assert tree.end_inferred
        assert tree.first("item").text_content() == "only"

    def test_unclosed_strict_element_at_eof_rejected(self):
        dtd = parse_dtd("<!ELEMENT doc - - (#PCDATA)>")
        with pytest.raises(DocumentSyntaxError):
            parse_document("<doc>text", dtd)

    def test_element_not_allowed_anywhere_rejected(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (a)>
            <!ELEMENT a - O (#PCDATA)>
        """)
        with pytest.raises(DocumentSyntaxError):
            parse_document("<doc><doc>x</doc></doc>", dtd)

    def test_incomplete_content_on_explicit_close_rejected(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (a, b)>
            <!ELEMENT (a|b) - O (#PCDATA)>
        """)
        with pytest.raises(DocumentSyntaxError):
            parse_document("<doc><a>x</doc>", dtd)

    def test_empty_element_closes_immediately(self):
        dtd = parse_dtd("""
            <!ELEMENT fig - - (picture, caption)>
            <!ELEMENT picture - O EMPTY>
            <!ELEMENT caption - O (#PCDATA)>
        """)
        tree = parse_document("<fig><picture><caption>hi</fig>", dtd)
        assert tree.first("picture") is not None
        assert tree.first("picture").children == []
        assert tree.first("caption").text_content() == "hi"

    def test_undeclared_element_rejected(self):
        dtd = parse_dtd("<!ELEMENT doc - - (#PCDATA)>")
        with pytest.raises(DocumentSyntaxError):
            parse_document("<doc><ghost>x</ghost></doc>", dtd)


class TestWellFormedMode:
    """Parsing without a DTD requires explicit tags."""

    def test_basic(self):
        tree = parse_document("<a><b>text</b><b>more</b></a>")
        assert tree.name == "a"
        assert len(tree.find_all("b")) == 2

    def test_mismatched_end_tag_rejected(self):
        with pytest.raises(DocumentSyntaxError):
            parse_document("<a><b>text</a></b>")

    def test_unclosed_rejected(self):
        with pytest.raises(DocumentSyntaxError):
            parse_document("<a><b>text</b>")

    def test_text_outside_root_rejected(self):
        with pytest.raises(DocumentSyntaxError):
            parse_document("hello <a>x</a>")

    def test_second_root_rejected(self):
        with pytest.raises(DocumentSyntaxError):
            parse_document("<a>x</a><b>y</b>")

    def test_empty_document_rejected(self):
        with pytest.raises(DocumentSyntaxError):
            parse_document("   ")

    def test_comments_ignored(self):
        tree = parse_document("<a><!-- hidden <b> -->text</a>")
        assert tree.text_content() == "text"
        assert tree.find_all("b") == []

    def test_xmlish_empty_element_tolerated(self):
        tree = parse_document("<a><b/>text</a>")
        assert tree.first("b") is not None


class TestAttributes:
    def test_quoted_and_unquoted(self):
        tree = parse_document('<a x="1" y=two z=\'three\'>t</a>')
        assert tree.attributes == {"x": "1", "y": "two", "z": "three"}

    def test_minimized_enumerated_attribute(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc status (final | draft) draft>
        """)
        tree = parse_document("<doc final>x</doc>", dtd)
        assert tree.attributes["status"] == "final"

    def test_minimized_unknown_token_rejected(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc status (final | draft) draft>
        """)
        with pytest.raises(DocumentSyntaxError):
            parse_document("<doc bogus>x</doc>", dtd)

    def test_defaults_applied(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc status (final | draft) draft
                          note CDATA #IMPLIED>
        """)
        tree = parse_document("<doc>x</doc>", dtd)
        assert tree.attributes == {"status": "draft"}

    def test_explicit_value_overrides_default(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc status (final | draft) draft>
        """)
        tree = parse_document('<doc status="final">x</doc>', dtd)
        assert tree.attributes["status"] == "final"

    def test_entities_in_attribute_values(self):
        tree = parse_document('<a title="x &amp; y">t</a>')
        assert tree.attributes["title"] == "x & y"


class TestEntities:
    def test_predefined(self):
        tree = parse_document("<a>&lt;tag&gt; &amp; &quot;quote&quot;</a>")
        assert tree.text_content() == '<tag> & "quote"'

    def test_numeric_character_references(self):
        tree = parse_document("<a>&#65;&#x42;</a>")
        assert tree.text_content() == "AB"

    def test_internal_entity_from_dtd(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ENTITY inria "I.N.R.I.A.">
        """)
        tree = parse_document("<doc>at &inria; labs</doc>", dtd)
        assert tree.text_content() == "at I.N.R.I.A. labs"

    def test_nested_internal_entities(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ENTITY inner "core">
            <!ENTITY outer "the &inner; text">
        """)
        tree = parse_document("<doc>&outer;</doc>", dtd)
        assert tree.text_content() == "the core text"

    def test_entity_cycle_rejected(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ENTITY a "&b;">
            <!ENTITY b "&a;">
        """)
        with pytest.raises(EntityError):
            parse_document("<doc>&a;</doc>", dtd)

    def test_undefined_entity_rejected(self):
        with pytest.raises(EntityError):
            parse_document("<a>&ghost;</a>")

    def test_external_entity_marker(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ENTITY pic SYSTEM "/images/pic1">
        """)
        tree = parse_document("<doc>see &pic;</doc>", dtd)
        assert "/images/pic1" in tree.text_content()

    def test_bare_ampersand_tolerated(self):
        tree = parse_document("<a>AT&T rules</a>")
        assert "AT&T" in tree.text_content().replace("&amp;", "&") or \
            "AT&T" in tree.text_content()


class TestTreeApi:
    def test_text_merging(self):
        element = Element("p")
        element.append_text("a")
        element.append_text("b")
        assert element.children == [Text("ab")]

    def test_structural_equality_ignores_inference_flags(self):
        explicit = parse_document("<a><b>t</b></a>")
        dtd = parse_dtd("""
            <!ELEMENT a - - (b)>
            <!ELEMENT b - O (#PCDATA)>
        """)
        inferred = parse_document("<a><b>t</a>", dtd)
        assert explicit == inferred

    def test_iter_elements_preorder(self):
        tree = parse_document("<a><b><c>x</c></b><d>y</d></a>")
        assert [e.name for e in iter_elements(tree)] == ["a", "b", "c", "d"]

    def test_depth(self):
        tree = parse_document("<a><b><c>x</c></b></a>")
        c = tree.find_all("c")[0]
        assert c.depth() == 2
        assert tree.depth() == 0

    def test_whitespace_dropped_in_element_content(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (item+)>
            <!ELEMENT item - O (#PCDATA)>
        """)
        tree = parse_document("<doc>\n  <item>one\n  <item>two\n</doc>", dtd)
        assert all(isinstance(c, Element) for c in tree.children)
