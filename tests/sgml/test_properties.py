"""Property-based tests for the SGML substrate.

Hypothesis generates random document trees over a small DTD; the
invariants are (i) writer→parser round trips, (ii) tag-minimised
serialisations re-parse to the same structure, (iii) content automata
agree with a brute-force regex-style acceptance oracle on random child
sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sgml.automata import ContentAutomaton
from repro.sgml.contentmodel import parse_content_model
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance import Element, Text
from repro.sgml.instance_parser import parse_document
from repro.sgml.validator import validation_problems
from repro.sgml.writer import write_document

DTD_TEXT = """
<!DOCTYPE doc [
<!ELEMENT doc - - (meta?, item+)>
<!ELEMENT meta - O (#PCDATA)>
<!ELEMENT item - O (label, note*)>
<!ELEMENT label - O (#PCDATA)>
<!ELEMENT note - O (#PCDATA)>
<!ATTLIST item kind (plain | fancy) plain>
]>
"""

DTD = parse_dtd(DTD_TEXT)

# Text without markup characters or entity ampersands, non-empty after
# whitespace normalization.
safe_text = st.text(
    alphabet="abcdefghij XYZ.,!?0123456789-",
    min_size=1, max_size=30).filter(lambda s: s.strip())


def pcdata(name: str, content: str) -> Element:
    element = Element(name)
    # loading normalizes whitespace, so generate normalized content
    element.append_text(" ".join(content.split()))
    return element


@st.composite
def documents(draw) -> Element:
    doc = Element("doc")
    if draw(st.booleans()):
        doc.append(pcdata("meta", draw(safe_text)))
    for _ in range(draw(st.integers(1, 4))):
        item = Element("item", {
            "kind": draw(st.sampled_from(["plain", "fancy"]))})
        item.append(pcdata("label", draw(safe_text)))
        for _ in range(draw(st.integers(0, 2))):
            item.append(pcdata("note", draw(safe_text)))
        doc.append(item)
    return doc


class TestRoundTripProperties:
    @given(documents())
    @settings(max_examples=80)
    def test_write_parse_round_trip(self, tree):
        text = write_document(tree, DTD)
        assert parse_document(text, DTD) == tree

    @given(documents())
    @settings(max_examples=80)
    def test_minimized_round_trip(self, tree):
        minimized = write_document(tree, DTD, minimize=True)
        assert parse_document(minimized, DTD) == tree

    @given(documents())
    @settings(max_examples=50)
    def test_generated_documents_validate(self, tree):
        assert validation_problems(tree, DTD) == []

    @given(documents())
    @settings(max_examples=50)
    def test_pretty_printed_round_trip(self, tree):
        pretty = write_document(tree, DTD, indent=2)
        assert parse_document(pretty, DTD) == tree


# ---------------------------------------------------------------------------
# Content automata vs an independent oracle
# ---------------------------------------------------------------------------

MODELS = [
    "(a, b, c)",
    "(a?, b+, c*)",
    "((a | b), c)",
    "((a, b) | (a, c))",       # ambiguous, but the DFA stays exact
    "(a & b)",
    "((a | b)*, c?)",
    "(a, (b | c)+)",
]


def _oracle(model_text: str, sequence: tuple[str, ...]) -> bool:
    """Brute-force acceptance by translating to Python's re engine."""
    import re

    def regex_of(node):
        from repro.sgml.contentmodel import (
            AndGroup, AnyContent, Choice, ElementRef, Empty, Opt,
            PCData, Plus, Seq, Star)
        import itertools
        if isinstance(node, ElementRef):
            return f"(?:{node.name},)"
        if isinstance(node, Seq):
            return "".join(regex_of(p) for p in node.parts)
        if isinstance(node, Choice):
            return ("(?:" + "|".join(regex_of(p)
                                     for p in node.parts) + ")")
        if isinstance(node, AndGroup):
            alternatives = []
            for perm in itertools.permutations(node.parts):
                alternatives.append(
                    "".join(regex_of(p) for p in perm))
            return "(?:" + "|".join(alternatives) + ")"
        if isinstance(node, Opt):
            return f"(?:{regex_of(node.child)})?"
        if isinstance(node, Plus):
            return f"(?:{regex_of(node.child)})+"
        if isinstance(node, Star):
            return f"(?:{regex_of(node.child)})*"
        if isinstance(node, (Empty, AnyContent, PCData)):
            return ""
        raise AssertionError(node)

    pattern = re.compile(regex_of(parse_content_model(model_text)) + r"\Z")
    return pattern.match("".join(f"{s}," for s in sequence)) is not None


class TestAutomataAgainstOracle:
    @given(st.sampled_from(MODELS),
           st.lists(st.sampled_from(["a", "b", "c"]), max_size=6))
    @settings(max_examples=300)
    def test_acceptance_agrees(self, model_text, sequence):
        automaton = ContentAutomaton(parse_content_model(model_text))
        assert automaton.accepts(sequence) == _oracle(
            model_text, tuple(sequence))

    @given(st.sampled_from(MODELS),
           st.lists(st.sampled_from(["a", "b", "c"]), max_size=6))
    @settings(max_examples=150)
    def test_allowed_is_sound(self, model_text, sequence):
        """allowed(state) lists exactly the symbols with a transition."""
        automaton = ContentAutomaton(parse_content_model(model_text))
        state = automaton.start_state
        for symbol in sequence:
            next_state = automaton.step(state, symbol)
            if next_state is None:
                assert symbol not in automaton.allowed(state)
                return
            assert symbol in automaton.allowed(state)
            state = next_state
