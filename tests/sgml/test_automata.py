"""Tests for the Glushkov content automata."""

import pytest

from repro.errors import ContentModelError
from repro.sgml.automata import (
    ContentAutomaton,
    ambiguity_witness,
    expand_and_groups,
)
from repro.sgml.contentmodel import PCDATA_NAME, parse_content_model


def automaton(text: str) -> ContentAutomaton:
    return ContentAutomaton(parse_content_model(text))


class TestAcceptance:
    def test_simple_sequence(self):
        auto = automaton("(a, b, c)")
        assert auto.accepts(["a", "b", "c"])
        assert not auto.accepts(["a", "b"])
        assert not auto.accepts(["a", "c", "b"])
        assert not auto.accepts([])

    def test_occurrences(self):
        auto = automaton("(a?, b+, c*)")
        assert auto.accepts(["b"])
        assert auto.accepts(["a", "b", "b", "c", "c"])
        assert not auto.accepts(["a"])
        assert not auto.accepts(["a", "c"])

    def test_choice(self):
        auto = automaton("(a | b)")
        assert auto.accepts(["a"])
        assert auto.accepts(["b"])
        assert not auto.accepts(["a", "b"])

    def test_article_model(self):
        auto = automaton("(title, author+, affil, abstract, section+, acknowl)")
        assert auto.accepts(["title", "author", "author", "affil",
                             "abstract", "section", "acknowl"])
        assert not auto.accepts(["title", "affil", "abstract", "section",
                                 "acknowl"])  # author+ requires one

    def test_section_model_both_branches(self):
        auto = automaton("((title, body+) | (title, body*, subsectn+))")
        assert auto.accepts(["title", "body"])
        assert auto.accepts(["title", "body", "body"])
        assert auto.accepts(["title", "subsectn"])
        assert auto.accepts(["title", "body", "subsectn", "subsectn"])
        assert not auto.accepts(["title"])
        assert not auto.accepts(["body"])

    def test_empty_model(self):
        auto = automaton("EMPTY")
        assert auto.accepts([])
        assert not auto.accepts(["a"])

    def test_any_model(self):
        auto = automaton("ANY")
        assert auto.accepts([])
        assert auto.accepts(["x", "y", PCDATA_NAME])

    def test_pcdata_loops(self):
        auto = automaton("(#PCDATA)")
        assert auto.accepts([])
        assert auto.accepts([PCDATA_NAME])
        assert auto.accepts([PCDATA_NAME, PCDATA_NAME])

    def test_mixed_content(self):
        auto = automaton("(#PCDATA | a)*")
        assert auto.accepts([PCDATA_NAME, "a", PCDATA_NAME, "a"])
        assert auto.accepts([])

    def test_nested_plus(self):
        auto = automaton("((a, b)+, c)")
        assert auto.accepts(["a", "b", "c"])
        assert auto.accepts(["a", "b", "a", "b", "c"])
        assert not auto.accepts(["a", "b", "a", "c"])


class TestAndGroups:
    def test_expansion_accepts_all_orders(self):
        auto = automaton("(to & from)")
        assert auto.accepts(["to", "from"])
        assert auto.accepts(["from", "to"])
        assert not auto.accepts(["to"])
        assert not auto.accepts(["to", "from", "to"])

    def test_three_way(self):
        auto = automaton("(a & b & c)")
        import itertools
        for perm in itertools.permutations(["a", "b", "c"]):
            assert auto.accepts(list(perm))
        assert not auto.accepts(["a", "b"])

    def test_and_group_with_occurrence_parts(self):
        auto = automaton("(a? & b)")
        assert auto.accepts(["b"])
        assert auto.accepts(["a", "b"])
        assert auto.accepts(["b", "a"])

    def test_oversized_group_rejected(self):
        parts = " & ".join("abcdefgh"[i] for i in range(8))
        with pytest.raises(ContentModelError):
            automaton(f"({parts})")

    def test_expand_preserves_non_and_models(self):
        model = parse_content_model("(a, b+)")
        assert expand_and_groups(model) == model


class TestDfaApi:
    def test_step_and_allowed(self):
        auto = automaton("(a, b?)")
        state = auto.step(auto.start_state, "a")
        assert state is not None
        assert auto.allowed(auto.start_state) == {"a"}
        assert auto.allowed(state) == {"b"}
        assert auto.is_accepting(state)  # b is optional
        assert auto.step(state, "a") is None

    def test_start_not_accepting_unless_nullable(self):
        assert not automaton("(a)").is_accepting(0)
        assert automaton("(a?)").is_accepting(0)

    def test_state_count_reasonable(self):
        auto = automaton("(title, author+, affil, abstract, section+, acknowl)")
        assert auto.state_count <= 8


class TestAmbiguity:
    def test_figure1_section_model_is_ambiguous(self):
        # Both alternatives begin with `title`: a strict SGML parser must
        # flag this model as 1-ambiguous.
        model = parse_content_model(
            "((title, body+) | (title, body*, subsectn+))")
        witness = ambiguity_witness(model)
        assert witness is not None
        assert "title" in witness

    def test_unambiguous_model(self):
        model = parse_content_model("(a, b?, c*)")
        assert ambiguity_witness(model) is None

    def test_classic_ambiguity(self):
        model = parse_content_model("((a, b) | (a, c))")
        assert ambiguity_witness(model) is not None

    def test_star_follow_ambiguity(self):
        model = parse_content_model("((a?, a))")
        assert ambiguity_witness(model) is not None
