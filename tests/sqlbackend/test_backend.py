"""The hybrid backend: parity, refusal guards, serving integration."""

import sqlite3

import pytest

from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.algebra.optimizer import optimize
from repro.calculus.evaluator import EvalContext
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import SQLUnsupportedError
from repro.paths.enumeration import LIBERAL
from repro.sqlbackend.backend import SQLBackend

QUERIES = [
    "select t from my_article PATH_p.title(t)",
    """select tuple (t: a.title, f_author: first(a.authors))
       from a in Articles, s in a.sections
       where s.title contains ("SGML" and "OODBMS")""",
    """select name(ATT_a)
       from my_article PATH_p.ATT_a(val)
       where val contains ("final")""",
    "my_article PATH_p - my_article PATH_q.title(t)",
]


def build_store(backend):
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.build_text_index()
    store.build_structural_index()
    return store


def structural_hybrid(store, text):
    engine = store._engine
    query = engine.translate(text)
    plan = optimize(
        compile_query(query, store.schema,
                      path_semantics="restricted"),
        structural=True, verify="raise", query=query)
    backend = SQLBackend(store.instance,
                         epoch_source=store.plan_cache)
    return backend, backend.compile(plan), plan


class TestParity:
    def test_sql_store_matches_algebra_store(self):
        sql_store = build_store("sql")
        algebra_store = build_store("algebra")
        for text in QUERIES:
            assert sql_store.query(text) == algebra_store.query(text), text

    def test_backend_execute_matches_plan_execution(self):
        from repro.algebra.execute import execute_plan
        store = build_store("algebra")
        for text in QUERIES:
            backend, hybrid, plan = structural_hybrid(store, text)
            expected = execute_plan(plan, store._engine.ctx.fork())
            assert backend.execute(hybrid,
                                   store._engine.ctx.fork()) == expected


class TestRefusals:
    def test_non_projection_root_is_refused(self):
        store = build_store("algebra")
        engine = store._engine
        query = engine.translate(QUERIES[0])
        plan = compile_query(query, store.schema,
                             path_semantics="restricted")
        backend = SQLBackend(store.instance,
                             epoch_source=store.plan_cache)
        with pytest.raises(SQLUnsupportedError):
            backend.compile(plan.child)  # root is not the ProjectOp

    def test_scan_program_needs_restricted_semantics(self):
        store = build_store("algebra")
        backend, hybrid, _ = structural_hybrid(store, QUERIES[0])
        assert any(p.has_scans for p in hybrid.programs)
        ctx = EvalContext(store.instance, path_semantics=LIBERAL)
        with pytest.raises(SQLUnsupportedError, match="semantics"):
            backend.execute(hybrid, ctx)

    def test_scan_program_respects_the_enumeration_budget(self):
        store = build_store("algebra")
        backend, hybrid, _ = structural_hybrid(store, QUERIES[0])
        ctx = EvalContext(store.instance, max_paths=1)
        with pytest.raises(SQLUnsupportedError, match="budget"):
            backend.execute(hybrid, ctx)

    def test_non_navigable_root_is_refused_then_falls_back(self):
        from repro.algebra.execute import execute_plan
        store = build_store("algebra")
        backend, hybrid, plan = structural_hybrid(store, QUERIES[0])
        # sabotage the shred the way a node-budget overflow would
        backend.shred.max_nodes = 2
        backend.shred._built = False
        with pytest.raises(SQLUnsupportedError, match="navigable"):
            backend.execute(hybrid, store._engine.ctx.fork())
        # the serving fallback runs the same plan exactly
        assert execute_plan(plan, store._engine.ctx.fork()) \
            == store.query(QUERIES[0])


class TestServing:
    def test_explain_analyze_surfaces_sql_and_counters(self):
        store = build_store("sql")
        report = store._engine.profile(QUERIES[0])
        assert report.sql is not None
        assert "WITH" in report.sql
        rendered = report.render()
        assert "emitted SQL:" in rendered
        counters = report.metrics["counters"]
        assert counters.get("sql.compiles", 0) >= 1
        assert counters.get("sql.statements", 0) >= 1
        assert counters.get("sql.rows_fetched", 0) >= 1

    def test_shred_stays_epoch_fresh_across_mutation(self):
        store = build_store("sql")
        before = store.query(QUERIES[0])
        store.load_text(SAMPLE_ARTICLE, name="second_article")
        # the second article contributes its own title row
        after = store.query("select t from second_article PATH_p.title(t)")
        assert len(after) >= 1
        assert store.query(QUERIES[0]) == before

    def test_save_load_keeps_the_sql_backend(self, tmp_path):
        store = build_store("sql")
        expected = store.query(QUERIES[0])
        path = tmp_path / "snapshot.db"
        store.save(path)
        reloaded = DocumentStore.load(path, backend="sql")
        assert reloaded._engine.sql_backend is not None
        assert reloaded.query(QUERIES[0]) == expected


class TestErrorCoarsening:
    def test_sql_refusals_coarsen_to_rejected(self):
        from repro.diffcheck.harness import _error_label
        from repro.errors import SQLExecutionError
        assert _error_label(SQLUnsupportedError("no")) == "rejected"
        assert _error_label(SQLExecutionError("boom")) == "rejected"
        assert _error_label(
            sqlite3.OperationalError("no such table")) == "rejected"
        assert _error_label(ValueError("x")) == "ValueError"
