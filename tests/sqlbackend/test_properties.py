"""Property tests: the shred is a faithful relational image.

The round-trips under test are the ones the emitter relies on:

* an ordered SQL scan of ``node`` reproduces the ``walk_events``
  pre-order stream (paths, values, levels, kinds) exactly;
* pre/post interval containment *in SQL* is ancestry (ground truth:
  the parent chain read back from the same table);
* ``content``/``attr`` rows match the structural index's secondary
  slices — the two physical layers index the same walk;
* ``vkey`` round-trips through SQLite's TEXT affinity unchanged.
"""

import random
from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.paths.enumeration import ENTER, RESTRICTED, walk_events
from repro.sqlbackend.shred import Shred, value_key


@lru_cache(maxsize=None)
def shredded_store(size: int, seed: int):
    store = DocumentStore(ARTICLE_DTD)
    for position, tree in enumerate(generate_corpus(size, seed=seed)):
        store.load_tree(tree, name=f"doc{position}", validate=False)
    shred = Shred(store.instance, epoch_source=store.plan_cache)
    shred.refresh()
    return store, shred


corpora = st.tuples(st.integers(1, 3), st.integers(0, 19))


class TestWalkRoundTrip:
    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_ordered_scan_reproduces_the_enter_stream(self, corpus):
        size, seed = corpus
        store, shred = shredded_store(size, seed)
        for name, root in shred.roots.items():
            enters = [(path, value, level)
                      for kind, path, value, level in walk_events(
                          root.origin, store.instance, RESTRICTED,
                          shred.max_nodes)
                      if kind is ENTER]
            assert len(enters) == root.size
            _, rows = shred.execute(
                "SELECT pre, level, kind FROM node WHERE root = ? "
                "ORDER BY pre", (name,))
            assert [r[0] for r in rows] == list(range(root.size))
            for (path, value, level), (pre, sql_level, _) in zip(
                    enters, rows):
                assert root.paths[pre] == path
                assert root.values[pre] is value
                assert sql_level == level

    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_interval_containment_in_sql_is_ancestry(self, corpus):
        size, seed = corpus
        _, shred = shredded_store(size, seed)
        rng = random.Random(seed)
        for name, root in shred.roots.items():
            if root.size < 2:
                continue
            _, rows = shred.execute(
                "SELECT pre, post, parent, end_pre FROM node "
                "WHERE root = ? ORDER BY pre", (name,))
            post = [r[1] for r in rows]
            parent = [r[2] for r in rows]
            end = [r[3] for r in rows]
            for _ in range(200):
                a = rng.randrange(root.size)
                d = rng.randrange(root.size)
                interval = a < d and post[d] < post[a]
                node = parent[d]
                chain = False
                while node != -1:
                    if node == a:
                        chain = True
                        break
                    node = parent[node]
                assert interval == chain
                # end_pre is the same relation, range-scan shaped
                assert (a < d < end[a]) == chain

    @given(corpora)
    @settings(max_examples=20, deadline=None)
    def test_vkey_round_trips_through_sqlite(self, corpus):
        size, seed = corpus
        _, shred = shredded_store(size, seed)
        for name, root in shred.roots.items():
            _, rows = shred.execute(
                "SELECT pre, vkey FROM node WHERE root = ? "
                "ORDER BY pre", (name,))
            for pre, vkey in rows:
                assert vkey == value_key(root.values[pre])


class TestIndexAgreement:
    """The shred and the structural index fold the same walk, so
    their secondary structures must agree slice for slice."""

    @given(corpora)
    @settings(max_examples=15, deadline=None)
    def test_content_rows_match_the_atom_slices(self, corpus):
        size, seed = corpus
        store, shred = shredded_store(size, seed)
        index = store.build_structural_index()
        for name, root in shred.roots.items():
            block = index.blocks[name]
            _, rows = shred.execute(
                "SELECT pre, value FROM content WHERE root = ? "
                "ORDER BY pre", (name,))
            expected = [(pre, value)
                        for pre, value in enumerate(root.values)
                        if isinstance(value, str)]
            assert rows == expected
            for pre, value in rows:
                assert pre in block.atoms[value]

    @given(corpora)
    @settings(max_examples=15, deadline=None)
    def test_attr_rows_match_the_attr_step_slices(self, corpus):
        size, seed = corpus
        store, shred = shredded_store(size, seed)
        index = store.build_structural_index()
        for name in shred.roots:
            block = index.blocks[name]
            _, rows = shred.execute(
                "SELECT name, pre FROM attr WHERE root = ? "
                "ORDER BY name, pre", (name,))
            by_name: dict = {}
            for attr_name, pre in rows:
                by_name.setdefault(attr_name, []).append(pre)
            assert by_name == {n: sorted(p)
                               for n, p in block.attr_steps.items()}
            assert sorted(pre for _, pre in rows) \
                == sorted(block.attr_positions)
