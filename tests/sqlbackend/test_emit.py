"""Unit tests for the plan->SQL emitter (`repro.sqlbackend.emit`)."""

import pytest

from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.calculus.formulas import Pred
from repro.calculus.terms import Const, DataVar
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import SQLUnsupportedError
from repro.sqlbackend.emit import (
    Emitter,
    Fragment,
    ValCol,
    emit_program,
)


def build_store():
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.build_structural_index()
    return store


def compiled(store, text):
    engine = store._engine
    query = engine.translate(text)
    return compile_query(query, store.schema,
                         path_semantics="restricted")


class TestEmitProgram:
    def test_whole_plan_root_is_outside_the_subset(self):
        # emit_program compiles one operator subtree; the ProjectOp
        # root belongs to the hybridizer, never the emitter
        store = build_store()
        plan = compiled(store, "select t from my_article PATH_p.title(t)")
        with pytest.raises(SQLUnsupportedError,
                           match="relational subset"):
            emit_program(plan, store.instance.root_names)

    def test_structural_path_plan_emits_one_statement(self):
        store = build_store()
        engine = store._engine
        query = engine.translate("select t from my_article PATH_p.title(t)")
        from repro.algebra.optimizer import optimize
        plan = optimize(
            compile_query(query, store.schema,
                          path_semantics="restricted"),
            structural=True, verify="raise", query=query)
        program = emit_program(plan.child, store.instance.root_names)
        assert program.sql.startswith("WITH ")
        assert program.has_scans
        assert "SELECT" in program.sql
        assert program.roots <= frozenset(store.instance.root_names)
        assert program.columns  # at least the head variable survives
        # the statement actually runs on the live shred
        from repro.sqlbackend.shred import Shred
        shred = Shred(store.instance, epoch_source=store.plan_cache)
        shred.refresh()
        names, rows = shred.execute(program.sql, program.params)
        assert rows


class TestContainsPrefilter:
    def _fragment(self, emitter, variable):
        name = emitter._cte(
            "SELECT root AS vr, pre AS vp, 'n' AS vm FROM node")
        columns = {variable: ValCol("vr", "vp", "vm",
                                    frozenset(("n", "h")))}
        return Fragment(name, columns)

    def test_non_contains_atom_is_left_alone(self):
        emitter = Emitter()
        x = DataVar("x")
        fragment = self._fragment(emitter, x)
        atom = Pred("near", [x, Const("a"), Const("b"), Const(2)])
        assert emitter.contains_prefilter(fragment, atom) is None
        assert emitter.prefilters == 0

    def test_unbound_subject_is_left_alone(self):
        emitter = Emitter()
        fragment = self._fragment(emitter, DataVar("x"))
        atom = Pred("contains", [DataVar("y"), Const("word")])
        assert emitter.contains_prefilter(fragment, atom) is None

    def test_required_words_narrow_with_passthrough(self):
        emitter = Emitter()
        x = DataVar("x")
        fragment = self._fragment(emitter, x)
        atom = Pred("contains", [x, Const("complex object")])
        narrowed = emitter.contains_prefilter(fragment, atom)
        assert narrowed is not None
        assert emitter.prefilters == 1
        assert narrowed.columns == fragment.columns
        _, sql = emitter.ctes[-1]
        # exact, case-sensitive substring probes...
        assert "instr(" in sql
        # ...that only ever drop *string atoms*: rows whose subject has
        # no content row (oids, tuples, wrappers) must pass through,
        # because calculus contains() routes them through text()
        assert "!= 'n'" in sql
        assert "NOT EXISTS" in sql

    def test_disjunction_requires_nothing(self):
        # "a" or "b": neither word is required, so no sound prefilter
        emitter = Emitter()
        x = DataVar("x")
        fragment = self._fragment(emitter, x)
        atom = Pred("contains", [x, Const('"alpha" or "beta"')])
        assert emitter.contains_prefilter(fragment, atom) is None
        assert emitter.prefilters == 0
