"""Unit tests for the shredder (`repro.sqlbackend.shred`)."""

import math

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.oodb.values import Nil, Oid
from repro.sqlbackend.shred import Shred, value_key


def build_store():
    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    return store


class TestValueKey:
    def test_oid_key_includes_the_class(self):
        assert value_key(Oid(7, "Section")) == "o:7:Section"
        assert value_key(Oid(7, "Article")) != value_key(
            Oid(7, "Section"))
        assert value_key(Oid(7, "Section")) != value_key(
            Oid(8, "Section"))

    def test_numeric_tower_canonicalizes(self):
        # equivalent() follows Python ==, so 1, 1.0 and True must
        # share one key or SQL joins would miss pairs == finds
        assert value_key(1) == value_key(1.0) == value_key(True)
        assert value_key(0) == value_key(False)
        assert value_key(1.5) == value_key(1.5)
        assert value_key(1) != value_key(2)

    def test_nan_is_never_joinable(self):
        assert value_key(float("nan")) is None

    def test_infinities_keep_their_sign(self):
        assert value_key(float("inf")) != value_key(float("-inf"))

    def test_strings_ints_do_not_collide(self):
        assert value_key("1") != value_key(1)
        assert value_key(Nil()) == "nil"

    def test_collections_get_no_key(self):
        from repro.oodb.values import ListValue, SetValue, TupleValue
        assert value_key(ListValue(["a"])) is None
        assert value_key(SetValue(["a"])) is None
        assert value_key(TupleValue([("t", "x")])) is None


class TestShredBuild:
    def test_content_rows_are_exactly_the_string_atoms(self):
        store = build_store()
        shred = Shred(store.instance, epoch_source=store.plan_cache)
        shred.refresh()
        for name, root in shred.roots.items():
            _, rows = shred.execute(
                "SELECT pre, value FROM content WHERE root = ? "
                "ORDER BY pre", (name,))
            expected = [(pre, value)
                        for pre, value in enumerate(root.values)
                        if isinstance(value, str)]
            assert rows == expected

    def test_node_count_matches_hydration_arrays(self):
        store = build_store()
        shred = Shred(store.instance, epoch_source=store.plan_cache)
        shred.refresh()
        for name, root in shred.roots.items():
            _, rows = shred.execute(
                "SELECT COUNT(*) FROM node WHERE root = ?", (name,))
            assert rows[0][0] == root.size == len(root.values) \
                == len(root.paths) == len(root.names)

    def test_refresh_is_epoch_gated(self):
        store = build_store()
        shred = Shred(store.instance, epoch_source=store.plan_cache)
        assert shred.refresh() > 0
        # clean: a second refresh is a no-op
        assert shred.refresh() == 0
        # any store mutation bumps the cache epoch -> stale again
        store.load_text(SAMPLE_ARTICLE, name="another")
        assert shred.stale()
        assert shred.refresh() > 0
        assert "another" in shred.roots

    def test_no_epoch_source_means_always_stale(self):
        store = build_store()
        shred = Shred(store.instance, epoch_source=None)
        first = shred.refresh()
        assert first > 0
        # correct-but-slow mode: every refresh rebuilds
        assert shred.refresh() == first

    def test_node_budget_yields_unusable_stub(self):
        store = build_store()
        shred = Shred(store.instance, epoch_source=store.plan_cache,
                      max_nodes=3)
        shred.refresh()
        root = shred.root_shred("my_article")
        assert root is not None
        assert not root.navigable
        assert root.size == 0
        assert "budget" in root.reason
        assert shred.max_root_size() == 0
