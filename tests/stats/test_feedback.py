"""The feedback loop around the cost model: stats-generation plan-cache
invalidation, adaptive re-costing with its per-key damper, profiled
unit-cost/branch-cardinality ingestion, and the estimation-error
surface of EXPLAIN ANALYZE."""

import pytest

from repro import DocumentStore, PlanCache
from repro.cache.plancache import CachedArtifacts
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.observe import MetricsRegistry

QUERY = ('select t from a in Articles, a PATH_p.title(t) '
         'where a contains ("SGML")')


def build_store():
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    for tree in generate_corpus(8, seed=7):
        store.load_tree(tree, validate=False)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.build_text_index()
    return store


def _entry(key, generation):
    return CachedArtifacts(query=None, plan=None, epoch=0, key=key,
                           stats_generation=generation)


class TestCacheStatsInvalidation:
    def test_lookup_drops_stale_generation(self):
        cache = PlanCache()
        metrics = MetricsRegistry()
        key = ("q",)
        cache.store(key, _entry(key, generation=0))
        assert cache.lookup(key, stats_generation=0) is not None
        assert cache.lookup(key, metrics=metrics,
                            stats_generation=1) is None
        counters = metrics.snapshot()["counters"]
        assert counters["cache.stats_invalidations"] == 1
        assert counters["cache.misses"] == 1
        # the stale-costing drop is not a data-epoch invalidation
        assert "cache.invalidations" not in counters

    def test_uncosted_entry_survives_generation_moves(self):
        cache = PlanCache()
        key = ("q",)
        cache.store(key, _entry(key, generation=None))
        assert cache.lookup(key, stats_generation=7) is not None

    def test_lookup_without_generation_is_a_hit(self):
        cache = PlanCache()
        key = ("q",)
        cache.store(key, _entry(key, generation=3))
        assert cache.lookup(key, stats_generation=None) is not None

    def test_recost_forces_recompile_end_to_end(self):
        store = build_store()
        store.enable_metrics()
        first = store.query(QUERY)
        again = store.query(QUERY)          # warm: plan-cache hit
        store.stats_manager.recost()
        third = store.query(QUERY)          # costing moved: recompile
        counters = store.metrics()["counters"]
        assert counters["cache.stats_invalidations"] == 1
        assert counters["stats.recostings"] == 1
        assert counters["cache.misses"] == 2
        assert first == again == third


class TestAdaptiveRecosting:
    def test_default_is_not_adaptive(self):
        store = build_store()
        manager = store.stats_manager
        assert manager.adaptive is False
        before = manager.generation
        assert manager.record_execution("k", 1000.0, 1) is False
        assert manager.generation == before

    def test_misestimate_advances_generation_once_per_key(self):
        store = build_store()
        manager = store.stats_manager
        manager.adaptive = True
        before = manager.generation
        assert manager.record_execution("k1", 1000.0, 1) is True
        assert manager.generation == before + 1
        # the damper: one correction per key per epoch
        assert manager.record_execution("k1", 1000.0, 1) is False
        assert manager.generation == before + 1
        # a different key may still correct
        assert manager.record_execution("k2", 1.0, 500) is True
        assert manager.generation == before + 2

    def test_good_estimates_never_bump(self):
        store = build_store()
        manager = store.stats_manager
        manager.adaptive = True
        before = manager.generation
        assert manager.record_execution("k", 10.0, 12) is False
        assert manager.generation == before

    def test_snapshot_follows_the_generation(self):
        store = build_store()
        manager = store.stats_manager
        old = manager.snapshot()
        manager.recost()
        new = manager.snapshot()
        assert new is not old
        assert new.generation == old.generation + 1


class TestProfiledFeedback:
    def test_profiled_run_harvests_unit_costs_and_branches(self):
        store = build_store()
        manager = store.stats_manager
        store.explain_analyze(QUERY)
        snap = manager.refresh()
        # per-operator-class unit costs were learned (normalized so
        # the cheapest measured class costs 1.0, clamped)
        assert snap.unit_costs
        assert all(0.25 <= value <= 50.0
                   for value in snap.unit_costs.values())
        # the reordered union's per-branch actuals were recorded under
        # (cache key, evidence ordinal, original branch index)
        assert snap.branch_actuals
        assert snap.to_dict()["recorded_branches"] > 0

    def test_result_cardinality_is_recorded(self):
        store = build_store()
        result = store.query(QUERY)
        snap = store.stats_manager.refresh()
        assert len(result) in snap.actual_rows.values()


class TestExplainEstimation:
    def test_report_surfaces_est_vs_actual(self):
        store = build_store()
        report = store.explain_analyze(QUERY)
        errors = report.estimation_errors()
        assert errors
        worst = errors[0]
        assert {"operator", "label", "est_rows", "actual_rows",
                "q_error"} <= set(worst)
        assert all(entry["q_error"] >= 1.0 for entry in errors)
        # worst-first ordering
        qs = [entry["q_error"] for entry in errors]
        assert qs == sorted(qs, reverse=True)

    def test_summary_and_render(self):
        store = build_store()
        report = store.explain_analyze(QUERY)
        summary = report.estimation_summary()
        assert summary is not None
        assert summary["operators"] == len(report.estimation_errors())
        assert summary["max_q_error"] >= summary["mean_q_error"] >= 1.0
        rendered = report.render()
        assert "est=" in rendered
        assert "estimation error: mean q=" in rendered

    def test_uncosted_run_has_no_estimates(self):
        store = DocumentStore(ARTICLE_DTD, backend="calculus")
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        report = store.explain_analyze(
            "select t from my_article PATH_p.title(t)")
        assert report.estimation_summary() is None
