"""Regression tests: degenerate estimates must not poison reporting.

The q-error is total — zero rows, negative annotations, NaN and
infinities all produce a defined (if pessimal) value — and the
``explain_analyze`` aggregate excludes non-finite nodes from the mean
so one degenerate operator cannot wash it out.
"""

import math

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.observe.report import ExplainReport
from repro.stats.manager import q_error


class TestQError:
    def test_perfect_and_symmetric(self):
        assert q_error(10, 10) == 1.0
        assert q_error(3, 12) == q_error(12, 3)

    def test_zero_rows_is_defined(self):
        # the original formulation divided by min(est, actual)
        assert q_error(0.0, 0.0) == 1.0
        assert math.isfinite(q_error(0.0, 5.0))
        assert q_error(0.0, 5.0) == 6.0

    def test_nan_reports_worst_possible(self):
        assert q_error(float("nan"), 5.0) == math.inf
        assert q_error(5.0, float("nan")) == math.inf

    def test_negative_annotations_clamp_to_zero(self):
        # low = -1 used to divide by zero after the +1 smoothing
        assert math.isfinite(q_error(-1.0, 0.0))
        assert q_error(-1.0, -1.0) == 1.0
        assert q_error(-3.0, 4.0) == q_error(0.0, 4.0)

    def test_infinite_estimates(self):
        assert q_error(math.inf, 5.0) == math.inf
        assert q_error(5.0, math.inf) == math.inf
        assert q_error(math.inf, math.inf) == 1.0


class _StubReport(ExplainReport):
    """estimation_summary() only consults estimation_errors()."""

    def __init__(self, qs):
        self._qs = qs

    def estimation_errors(self):
        return [{"q_error": q} for q in self._qs]


class TestEstimationSummary:
    def test_non_finite_nodes_do_not_wash_out_the_mean(self):
        summary = _StubReport([1.0, 3.0, math.inf]).estimation_summary()
        assert summary["operators"] == 3
        assert summary["mean_q_error"] == 2.0
        assert summary["max_q_error"] == math.inf

    def test_all_degenerate_reports_inf_not_a_crash(self):
        summary = _StubReport([math.inf, math.inf]).estimation_summary()
        assert summary["mean_q_error"] == math.inf

    def test_no_estimates_is_none(self):
        assert _StubReport([]).estimation_summary() is None

    def test_costed_plan_returning_zero_rows(self):
        # end to end: a costed run whose operators produce no rows
        # must render and summarize without dividing by zero
        store = DocumentStore(ARTICLE_DTD, backend="algebra")
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        store.build_text_index()
        store.build_structural_index()
        report = store._engine.profile(
            """select s from a in Articles, s in a.sections
               where s.title contains ("zzznothingzzz")""")
        assert len(report.result) == 0
        rendered = report.render()  # must not raise
        summary = report.estimation_summary()
        if summary is not None:
            assert summary["mean_q_error"] >= 1.0
            assert not math.isnan(summary["mean_q_error"])
            assert "estimation error" in rendered
