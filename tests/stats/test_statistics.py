"""The statistics snapshot: collection, posting bounds, cost model."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.stats import Statistics, estimate, q_error
from repro.stats.statistics import DEFAULT_FANOUT
from repro.text.patterns import parse_pattern_expr


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra")
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.load_text(SAMPLE_ARTICLE, name="my_old_article")
    s.build_text_index()
    s.build_structural_index()
    return s


class TestCollection:
    def test_snapshot_measures_the_store(self, store):
        snap = store.statistics()
        assert snap.class_cardinality("Article") == 2
        assert snap.root_cardinality("Articles") == 2
        assert snap.root_cardinality("my_article") == 1
        assert snap.object_count == store.instance.object_count()
        assert snap.document_count > 0
        assert snap.vocabulary_size > 0
        # the structural index was built over every root
        assert snap.index_nodes > 0
        assert snap.index_roots > 0
        assert snap.attr_density("title") >= 1.0

    def test_snapshot_is_memoized_per_epoch(self, store):
        assert store.statistics() is store.statistics()

    def test_mutation_triggers_lazy_recollection(self):
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        before = s.statistics()
        s.load_text(SAMPLE_ARTICLE, name="another")
        after = s.statistics()
        assert after is not before
        assert after.epoch > before.epoch
        assert (after.class_cardinality("Article")
                == before.class_cardinality("Article") + 1)

    def test_index_built_after_queries_refreshes_snapshot(self):
        """Building an index moves no store epoch, so the facade must
        refresh the memoized snapshot explicitly — otherwise costing
        stays index-blind until the next data mutation."""
        s = DocumentStore(ARTICLE_DTD, backend="algebra")
        s.load_text(SAMPLE_ARTICLE, name="my_article")
        before = s.statistics()
        assert before.vocabulary_size == 0
        s.build_text_index()
        after = s.statistics()
        assert after.vocabulary_size > 0
        assert after.document_count > 0
        s.build_structural_index()
        assert s.statistics().index_nodes > 0

    def test_report_block_in_store_stats(self, store):
        block = store.stats()["statistics"]
        assert block["classes"] > 0
        assert block["adaptive"] is False

    def test_fanout_defaults_without_structural_index(self):
        empty = Statistics()
        assert empty.avg_fanout() == DEFAULT_FANOUT
        assert empty.avg_subtree_size() == DEFAULT_FANOUT ** 3
        assert empty.unit_cost("StepOp") == 1.0


class TestPostingBounds:
    def test_literal_word_bound_is_posting_size(self, store):
        snap = store.statistics()
        expr = parse_pattern_expr('"SGML"')
        bound = snap.candidate_upper_bound(expr)
        assert bound == store.text_index.posting_size("SGML")
        assert bound > 0

    def test_absent_word_bound_is_zero_proof(self, store):
        snap = store.statistics()
        assert snap.candidate_upper_bound(
            parse_pattern_expr('"xyzzynotthere"')) == 0

    def test_conjunction_takes_the_min(self, store):
        snap = store.statistics()
        both = snap.candidate_upper_bound(
            parse_pattern_expr('"SGML" and "xyzzynotthere"'))
        assert both == 0

    def test_disjunction_adds(self, store):
        snap = store.statistics()
        left = snap.candidate_upper_bound(parse_pattern_expr('"SGML"'))
        right = snap.candidate_upper_bound(
            parse_pattern_expr('"OODBMS"'))
        union = snap.candidate_upper_bound(
            parse_pattern_expr('"SGML" or "OODBMS"'))
        assert union == left + right

    def test_negation_is_unbounded(self, store):
        snap = store.statistics()
        assert snap.candidate_upper_bound(
            parse_pattern_expr('not "SGML"')) is None
        assert snap.prunes_nothing(parse_pattern_expr('not "SGML"'))
        assert not snap.prunes_nothing(parse_pattern_expr('"SGML"'))

    def test_prunes_nothing_mirrors_index_candidates(self, store):
        """The static predicate must agree with the runtime probe on
        whether pruning is possible — that is what makes index-filter
        demotion a pure win."""
        snap = store.statistics()
        for source in ('"SGML"', 'not "SGML"', '"SGML" and not "x"',
                       '"SGML" or not "x"', 'not "a" and not "b"'):
            expr = parse_pattern_expr(source)
            runtime = store.text_index.candidates(expr)
            assert snap.prunes_nothing(expr) == (runtime is None)

    def test_regex_word_forces_vocabulary_scan_cost(self, store):
        snap = store.statistics()
        literal = snap.probe_cost(parse_pattern_expr('"SGML"'))
        regex = snap.probe_cost(parse_pattern_expr('"SG.*"'))
        assert regex == float(snap.vocabulary_size)
        assert literal < regex


class TestCostModel:
    def test_estimates_are_positive_and_monotone(self, store):
        from repro.algebra.compile import compile_query
        engine = store._engine
        query = engine.translate(
            "select t from a in Articles, a PATH_p.title(t)")
        plan = compile_query(query, store.schema)
        snap = store.statistics()
        root = estimate(plan, snap)
        assert root.rows >= 0.0
        assert root.cost > 0.0
        # a child can never cost more than its parent chain
        child = estimate(plan.children()[0], snap)
        assert child.cost <= root.cost

    def test_shared_memo_costs_dag_nodes_once(self, store):
        from repro.algebra.compile import compile_query
        from repro.algebra.optimizer import optimize
        engine = store._engine
        query = engine.translate(
            "select t from a in Articles, a PATH_p.title(t)")
        plan = optimize(compile_query(query, store.schema))
        snap = store.statistics()
        memo = {}
        estimate(plan, snap, memo)
        # the memo holds one entry per distinct DAG node
        assert len(memo) == len(set(memo))


class TestQError:
    def test_perfect_estimate_is_one(self):
        assert q_error(10, 10) == 1.0
        assert q_error(0, 0) == 1.0

    def test_symmetric(self):
        assert q_error(3, 12) == q_error(12, 3)

    def test_grows_with_the_miss(self):
        assert q_error(1, 100) > q_error(1, 10) > 1.0
