"""Differential testing of the plan cache.

For randomized corpora and a pool of paper-style queries, a query must
return the *same* result whether its plan was

* freshly compiled (cold — cache cleared first),
* served from the cache (warm — second run), or
* executed through a :class:`~repro.cache.prepared.PreparedQuery`.

Any divergence would mean the cache key is too coarse (two different
queries sharing an entry) or invalidation is broken (a stale plan
surviving a mutation).  A small sweep runs by default; the full sweep
is marked ``bench``.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus

QUERY_POOL = [
    "select a.title from a in Articles",
    """select tuple (t: a.title, f_author: first(a.authors))
       from a in Articles, s in a.sections
       where s.title contains ("SGML" and "OODBMS")""",
    """select ss from a in Articles, s in a.sections,
       ss in s.subsectns where ss contains ("complex object")""",
    "select t from doc0 PATH_p.title(t)",
    "doc0 PATH_p - doc1 PATH_p",
    """select name(ATT_a) from doc0 PATH_p.ATT_a(val)
       where val contains ("final")""",
    """select s.title from a in Articles, s in a.sections
       where s.title contains ("the" or "of")""",
]


def build_random_store(backend, seed, size=4, with_index=False):
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    for i, tree in enumerate(generate_corpus(size, seed=seed)):
        store.load_tree(tree, name=f"doc{i}", validate=False)
    if with_index:
        store.build_text_index()
    return store


def run_three_ways(store, query):
    store.plan_cache.clear()
    cold = store.query(query)       # compiled fresh
    warm = store.query(query)       # served from cache
    prepared = store.prepare(query).run()
    return cold, warm, prepared


def sweep(seeds, backends, with_index):
    for backend in backends:
        for seed in seeds:
            store = build_random_store(
                backend, seed, with_index=with_index)
            for query in QUERY_POOL:
                cold, warm, prepared = run_three_ways(store, query)
                context = (backend, seed, query)
                assert cold == warm, context
                assert cold == prepared, context


class TestSmallSweep:
    @pytest.mark.parametrize("backend", ["calculus", "algebra"])
    def test_cold_warm_prepared_agree(self, backend):
        sweep(seeds=[7, 42], backends=[backend], with_index=False)

    def test_agreement_with_text_index(self):
        # index-backed plans (IndexFilterOp candidates) must not
        # diverge from scans when served from the cache
        sweep(seeds=[42], backends=["algebra"], with_index=True)

    def test_backends_agree_through_the_cache(self):
        calculus = build_random_store("calculus", seed=42)
        algebra = build_random_store("algebra", seed=42)
        for query in QUERY_POOL:
            c = run_three_ways(calculus, query)
            a = run_three_ways(algebra, query)
            assert c[0] == a[0], query
            assert c[1] == a[1] and c[2] == a[2], query

    def test_agreement_survives_interleaved_edits(self):
        store = build_random_store("algebra", seed=11, with_index=True)
        title = next(iter(store.query(
            "select s.title from a in Articles, s in a.sections")))
        for round_no in range(3):
            store.update_text(title, f"Edited Round {round_no}")
            for query in QUERY_POOL:
                cold, warm, prepared = run_three_ways(store, query)
                assert cold == warm == prepared, (round_no, query)


@pytest.mark.bench
class TestFullSweep:
    @pytest.mark.parametrize("backend", ["calculus", "algebra"])
    @pytest.mark.parametrize("seed", [1, 7, 13, 42, 99])
    def test_large_randomized_sweep(self, backend, seed):
        sweep(seeds=[seed], backends=[backend], with_index=True)
        store = build_random_store(backend, seed, size=8,
                                   with_index=True)
        for query in QUERY_POOL:
            cold, warm, prepared = run_three_ways(store, query)
            assert cold == warm == prepared, (backend, seed, query)
