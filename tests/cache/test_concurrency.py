"""Concurrency stress: readers querying while a writer edits.

The cache is lock-protected and every run evaluates on a forked
per-call context, so N threads hammering the same store while
``update_text`` bumps the epoch must (a) raise nothing, (b) honour
epoch ordering — a query that starts after an edit completes, with no
further concurrent edit, sees that edit — and (c) leave invalidation
counters behind as evidence the stale plans really were recompiled.
"""

import threading
import time

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus

READERS = 4
EDITS = 6

STATIC_QUERY = "select t from my_article PATH_p.title(t)"
SENTINEL_QUERY = ('select s.title from a in Articles, s in a.sections '
                  'where s.title contains ("Sentinel{n}")')


def build_store(backend="algebra"):
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    for tree in generate_corpus(3, seed=42):
        store.load_tree(tree, validate=False)
    store.build_text_index()
    return store


@pytest.mark.parametrize("backend", ["calculus", "algebra"])
def test_readers_and_writer_interleave(backend):
    store = build_store(backend)
    store.enable_metrics()
    title = next(iter(store.query(
        "select s.title from a in Articles, s in a.sections")))

    started = []                    # edit numbers, append BEFORE the edit
    committed = []                  # edit numbers, append AFTER commit
    done = threading.Event()
    errors = []

    def writer():
        try:
            for n in range(EDITS):
                started.append(n)
                store.update_text(title, f"Sentinel{n} Heading")
                committed.append(n)
                time.sleep(0.005)   # let readers interleave
        except Exception as exc:    # pragma: no cover - fails the test
            errors.append(exc)
        finally:
            done.set()

    def reader():
        try:
            while not done.is_set():
                # static query: exercises concurrent cache hits
                assert len(store.query(STATIC_QUERY)) == 3
                # epoch ordering: only assert when the writer was idle
                # for the whole query — every started edit had committed
                # before we snapshotted, and none started while we ran
                starts, commits = len(started), len(committed)
                if commits == 0 or starts != commits:
                    continue
                latest = committed[commits - 1]
                hits = store.query(SENTINEL_QUERY.format(n=latest))
                if len(started) == starts:
                    assert len(hits) == 1, latest
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(t.is_alive() for t in threads)
    assert errors == []

    # after the dust settles: the final edit is visible, exactly once
    final = store.query(SENTINEL_QUERY.format(n=EDITS - 1))
    assert len(final) == 1
    assert store.text(next(iter(final))) == f"Sentinel{EDITS - 1} Heading"

    # deterministic invalidation check: cache an entry at the current
    # epoch, edit once more, and watch the stale entry get evicted
    store.query(STATIC_QUERY)
    store.update_text(title, "Post Stress Heading")
    store.query(STATIC_QUERY)

    counters = store.metrics()["counters"]
    assert counters["cache.epoch_bumps"] >= EDITS + 1
    assert counters["cache.invalidations"] >= 1
    assert counters["cache.hits"] > 0
    assert counters["cache.misses"] >= 1


def test_concurrent_warmup_compiles_at_most_once_per_epoch():
    """Many threads racing on a cold cache: results agree and the cache
    ends with exactly one entry for the query."""
    store = build_store("algebra")
    store.plan_cache.clear()
    results, errors = [], []
    barrier = threading.Barrier(READERS)

    def racer():
        try:
            barrier.wait(timeout=30)
            results.append(store.query(STATIC_QUERY))
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=racer) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    assert len(results) == READERS
    assert all(r == results[0] for r in results)
    assert len(store.plan_cache) == 1


def test_prepared_handles_shared_across_threads():
    store = build_store("algebra")
    prepared = store.prepare(STATIC_QUERY)
    errors = []

    def runner():
        try:
            for _ in range(5):
                assert len(prepared.run()) == 3
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=runner) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
