"""Counter-based proof that prepared queries skip the front end.

The acceptance bar for the plan cache: the *second* execution of each
of the paper's queries through ``prepare()`` does zero parse /
translate / compile work.  We do not time anything — we assert on the
span tree (no ``parse`` span on a warm run) and on the deterministic
``cache.*`` counters.
"""

import pytest

from repro import DocumentStore, PlanCache, PreparedQuery
from repro.cache import normalize_query_text
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus

Q1 = """
    select tuple (t: a.title, f_author: first(a.authors))
    from a in Articles, s in a.sections
    where s.title contains ("SGML" and "OODBMS")
"""
Q2 = """
    select ss
    from a in Articles, s in a.sections, ss in s.subsectns
    where ss contains ("complex object")
"""
Q3 = "select t from my_article PATH_p.title(t)"
Q4 = "my_article PATH_p - my_old_article PATH_p"
Q5 = """
    select name(ATT_a)
    from my_article PATH_p.ATT_a(val)
    where val contains ("final")
"""
Q6 = """
    select letter
    from letter in Letters, letter[i].from, letter[j].to
    where i < j
"""

PAPER_QUERIES = [Q1, Q2, Q3, Q4, Q5]

FRONT_END = ["parse", "translate", "safety", "inference"]


def build_store(backend):
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.load_text(SAMPLE_ARTICLE, name="my_old_article")
    for tree in generate_corpus(6, seed=42):
        store.load_tree(tree, validate=False)
    return store


class TestSecondRunDoesZeroFrontEndWork:
    @pytest.mark.parametrize("backend", ["calculus", "algebra"])
    @pytest.mark.parametrize("query", PAPER_QUERIES)
    def test_warm_run_has_no_front_end_spans(self, backend, query):
        store = build_store(backend)
        prepared = store.prepare(query)          # compiles eagerly
        cold = store.query(query)                # first execution: hit
        report = store.explain_analyze(query)    # second: still a hit
        names = report.trace.path_names()
        for stage in FRONT_END + ["compile"]:
            assert stage not in names, (backend, stage)
        assert report.trace.attributes["plan_cache"] == "hit"
        assert report.counter("cache.hits") == 1
        assert report.counter("cache.misses") == 0
        assert prepared.run() == cold

    def test_q6_on_a_bare_engine(self):
        from repro.corpus.letters import build_letters_database
        from repro.o2sql import QueryEngine
        engine = QueryEngine(build_letters_database())
        prepared = engine.prepare(Q6)            # installs a cache
        first = prepared.run()
        before = len(engine.cache)
        second = prepared.run()
        assert first == second and len(first) == 3
        assert len(engine.cache) == before       # no re-entry stored

    @pytest.mark.parametrize("backend", ["calculus", "algebra"])
    def test_cache_hit_counters_accumulate(self, backend):
        store = build_store(backend)
        store.enable_metrics()
        for query in PAPER_QUERIES:
            store.query(query)
        counters = store.metrics()["counters"]
        assert counters["cache.misses"] == len(PAPER_QUERIES)
        assert "cache.hits" not in counters
        for query in PAPER_QUERIES:
            store.query(query)
            store.query(query)
        counters = store.metrics()["counters"]
        assert counters["cache.misses"] == len(PAPER_QUERIES)
        assert counters["cache.hits"] == 2 * len(PAPER_QUERIES)


class TestPreparedHandle:
    def test_prepare_compiles_eagerly(self):
        store = build_store("algebra")
        store.enable_metrics()
        prepared = store.prepare(Q3)
        assert store.metrics()["counters"]["cache.misses"] == 1
        assert isinstance(prepared, PreparedQuery)
        assert prepared.run() == store.query(Q3)
        # prepare + both runs shared one compilation
        counters = store.metrics()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 2

    def test_handle_survives_epoch_bump(self):
        store = build_store("algebra")
        prepared = store.prepare(Q3)
        three = prepared.run()
        assert len(three) == 3
        store.load_text(SAMPLE_ARTICLE, name="another")
        # the handle transparently recompiles against the new epoch
        after = prepared.run()
        assert len(after) == 3
        assert store.query("select t from another PATH_p.title(t)")

    def test_algebra_plan_property(self):
        store = build_store("algebra")
        prepared = store.prepare(Q3)
        assert prepared.plan is not None
        assert prepared.calculus is not None

    def test_explain_analyze_on_handle_is_warm(self):
        store = build_store("algebra")
        prepared = store.prepare(Q3)
        report = prepared.explain_analyze()
        assert report.trace.path_names() == ["execute"]


class TestEpochInvalidation:
    @pytest.mark.parametrize("backend", ["calculus", "algebra"])
    def test_update_text_forces_recompile(self, backend):
        """An edit bumps the epoch, so the next run of an index-backed
        plan recompiles (one fresh miss) and re-probes the new index
        postings instead of serving memoized stale candidates."""
        store = build_store(backend)
        store.build_text_index()
        query = ('select s.title from a in Articles, s in a.sections '
                 'where s.title contains ("Zanzibar")')
        store.enable_metrics()
        assert len(store.query(query)) == 0
        assert len(store.query(query)) == 0      # warm: a hit
        counters = store.metrics()["counters"]
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        epoch_before = store.epoch
        title_oid = next(iter(store.query(
            "select s.title from a in Articles, s in a.sections")))
        store.update_text(title_oid, "Zanzibar Section")
        assert store.epoch > epoch_before
        hits = store.query(query)                # stale entry → miss
        assert len(hits) == 1
        counters = store.metrics()["counters"]
        assert counters["cache.invalidations"] >= 1
        assert counters["cache.epoch_bumps"] >= 1

    def test_loads_and_define_name_bump_epoch(self):
        store = DocumentStore(ARTICLE_DTD)
        assert store.epoch == 0
        store.load_text(SAMPLE_ARTICLE)               # anonymous load
        after_load = store.epoch
        assert after_load > 0
        store.load_text(SAMPLE_ARTICLE, name="named")
        assert store.epoch > after_load               # load + name

    def test_new_epoch_entry_replaces_stale_one(self):
        store = build_store("algebra")
        store.query(Q3)
        assert len(store.plan_cache) == 1
        store.load_text(SAMPLE_ARTICLE, name="extra")
        store.query(Q3)                               # recompile
        assert len(store.plan_cache) == 1             # replaced, not added
        entry_key = store.plan_cache.key_for(
            Q3, "algebra", store._engine.ctx.path_semantics)
        assert store.plan_cache.lookup(entry_key) is not None


class TestQueryMany:
    def test_batch_results_match_singles_in_order(self):
        store = build_store("algebra")
        batch = store.query_many(PAPER_QUERIES)
        singles = [store.query(q) for q in PAPER_QUERIES]
        assert batch == singles

    def test_duplicate_texts_compile_once(self):
        store = build_store("algebra")
        store.enable_metrics()
        variants = [Q3, "  " + Q3 + "  ",
                    "select t   from my_article PATH_p.title(t)",
                    Q3 + " -- trailing comment"]
        results = store.query_many(variants)
        assert len({len(r) for r in results}) == 1
        assert store.metrics()["counters"]["cache.misses"] == 1


class TestNormalization:
    def test_whitespace_and_comments_collapse(self):
        a = normalize_query_text("select  t\nfrom x -- note\n where y")
        b = normalize_query_text("select t from x where y")
        assert a == b

    def test_string_literals_are_preserved(self):
        q = 'select x from y where x contains ("two  spaces")'
        assert '"two  spaces"' in normalize_query_text(q)
        assert normalize_query_text(q) != normalize_query_text(
            'select x from y where x contains ("two spaces")')

    def test_comment_marker_inside_literal_survives(self):
        q = 'select x from y where x contains ("a -- b")'
        assert '"a -- b"' in normalize_query_text(q)

    def test_distinct_texts_share_one_cache_entry(self):
        store = build_store("calculus")
        store.query(Q3)
        store.query("select t from   my_article PATH_p.title(t)")
        store.query(Q3 + "\n-- same query")
        assert len(store.plan_cache) == 1


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        from repro.cache.plancache import CachedArtifacts
        entries = {}
        for name in ("a", "b", "c"):
            key = (name, "algebra", "restricted", True)
            entries[name] = CachedArtifacts(
                query=name, plan=None, epoch=0, key=key)
            cache.store(key, entries[name])
        assert len(cache) == 2
        assert cache.lookup(("a", "algebra", "restricted", True)) is None
        assert cache.lookup(("c", "algebra", "restricted", True)) \
            is entries["c"]

    def test_stats_shape(self):
        store = build_store("algebra")
        store.query(Q3)
        stats = store.stats()
        assert stats["plan_cache"]["entries"] == 1
        assert stats["plan_cache"]["capacity"] == 256
        assert stats["epoch"] == stats["plan_cache"]["epoch"]

    def test_backends_do_not_share_entries(self):
        key_a = PlanCache.key_for(Q3, "algebra", "restricted")
        key_c = PlanCache.key_for(Q3, "calculus", "restricted")
        assert key_a != key_c
