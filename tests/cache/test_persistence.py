"""Plan cache × persistence: a reloaded store starts cold.

Cached plans hold live oids and schema-resolved operators, so they
must never travel through :meth:`DocumentStore.save`.  A reload gives
a fresh cache at epoch 0, and metrics on the reloaded store count
misses from zero.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE

Q3 = "select t from my_article PATH_p.title(t)"


@pytest.fixture()
def saved(tmp_path):
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.query(Q3)                        # warm the original's cache
    assert len(store.plan_cache) == 1
    path = tmp_path / "session.db"
    store.save(path)
    return store, path


class TestReloadIsCold:
    def test_fresh_cache_and_epoch_zero(self, saved):
        store, path = saved
        reloaded = DocumentStore.load(path)
        assert len(reloaded.plan_cache) == 0
        assert reloaded.epoch == 0
        assert reloaded.stats()["plan_cache"]["entries"] == 0
        # the caches are distinct objects with distinct lifecycles
        assert reloaded.plan_cache is not store.plan_cache
        assert len(store.plan_cache) == 1      # original untouched

    def test_first_query_after_reload_is_a_miss(self, saved):
        _, path = saved
        reloaded = DocumentStore.load(path)
        reloaded.enable_metrics()
        result = reloaded.query(Q3)
        assert len(result) == 3
        counters = reloaded.metrics()["counters"]
        assert counters["cache.misses"] == 1
        assert "cache.hits" not in counters
        reloaded.query(Q3)
        assert reloaded.metrics()["counters"]["cache.hits"] == 1

    def test_reloaded_results_match_warm_original(self, saved):
        store, path = saved
        reloaded = DocumentStore.load(path)
        # oids are preserved by the snapshot, so even oid-valued
        # results compare equal across the reload boundary
        assert reloaded.query(Q3) == store.query(Q3)
        assert reloaded.prepare(Q3).run() == store.query(Q3)

    def test_mutations_after_reload_invalidate(self, saved):
        _, path = saved
        reloaded = DocumentStore.load(path)
        reloaded.enable_metrics()
        reloaded.query(Q3)
        reloaded.load_text(SAMPLE_ARTICLE, name="second")
        assert reloaded.epoch > 0
        assert len(reloaded.query(Q3)) == 3
        counters = reloaded.metrics()["counters"]
        assert counters["cache.invalidations"] == 1
        assert counters["cache.misses"] == 2

    def test_save_is_not_a_mutation(self, saved, tmp_path):
        store, _ = saved
        epoch = store.epoch
        store.save(tmp_path / "again.db")
        assert store.epoch == epoch
        store.enable_metrics()
        store.query(Q3)
        assert store.metrics()["counters"]["cache.hits"] == 1
