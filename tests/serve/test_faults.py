"""Deterministic fault injection via the ``_TEST_DELAY`` hook.

The serve module exposes the plancheck ``_TEST_MUTATION`` idiom: a
module-level hook called at named stages of the execution path —
``"executing"`` (worker picked the flight up) and ``"pinned"`` (epoch
pinned, about to run the query).  Stalling or mutating at those points
forces, on demand, the paths a production race would only hit
probabilistically:

* timeout — the wait expires while the flight is parked; the shared
  execution survives and later waiters still get the value;
* cancellation — every waiter cancels while parked; the flight aborts
  at its next checkpoint without executing (``serve.aborted``);
* epoch bump during a read — a mutation lands inside the pinned
  window; the seqlock validation discards the overlapped read, counts
  ``serve.epoch_conflicts``, and the retry returns a value consistent
  at the *new* epoch — stale-but-consistent is allowed, a torn read
  never escapes;
* persistent conflict — a mutation lands inside *every* retry window;
  the consistency fallback takes the writer lock once and still
  produces an exact single-epoch answer.
"""

import threading

import pytest

from repro import QueryServer
from repro.errors import RequestCancelled, RequestTimeout
from repro.serve import server as server_module
from tests.serve.conftest import Q3, Q6, build_store

EDIT_TARGET = "select s.title from a in Articles, s in a.sections"


@pytest.fixture(autouse=True)
def _clean_hook():
    yield
    server_module._TEST_DELAY = None


@pytest.fixture
def store():
    return build_store()


def _title(store):
    return min(store.query(EDIT_TARGET), key=lambda o: o.number)


class TestTimeoutPath:
    def test_forced_timeout_leaves_the_flight_alive(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(30)
            if stage == "executing" else None)
        with QueryServer(workers=1) as server:
            server.add_tenant("acme", store)
            early = server.submit("acme", Q3)
            late = server.submit("acme", Q3)  # collapses onto early
            with pytest.raises(RequestTimeout):
                early.result(timeout=0.05)
            gate.set()
            # the shared execution outlived the abandoned wait: the
            # collapsed waiter still gets the fanned-out value...
            assert len(late.result(timeout=30).value) == 3
            # ...and so does the timed-out request's future
            assert len(early.result(timeout=30).value) == 3
            assert server.metrics.get("serve.timeouts") == 1
            assert server.metrics.get("serve.executed") == 1


class TestCancellationPath:
    def test_all_waiters_cancelled_aborts_the_flight(self, store):
        parked = threading.Event()
        release = threading.Event()

        def hook(stage, flight):
            if stage == "executing":
                parked.set()
                release.wait(30)

        server_module._TEST_DELAY = hook
        with QueryServer(workers=1) as server:
            server.add_tenant("acme", store)
            requests = [server.submit("acme", Q3) for _ in range(3)]
            assert parked.wait(30)
            for request in requests:
                assert request.cancel() is True
            release.set()
            for request in requests:
                with pytest.raises(RequestCancelled):
                    request.result(timeout=30)
            # the flight hit its checkpoint and aborted: no execution
            server.query("acme", Q6, timeout=30)  # drain the pool
            assert server.metrics.get("serve.aborted") == 1
            assert server.metrics.get("serve.cancelled") == 3

    def test_one_live_waiter_keeps_the_flight_running(self, store):
        parked = threading.Event()
        release = threading.Event()

        def hook(stage, flight):
            if stage == "executing":
                parked.set()
                release.wait(30)

        server_module._TEST_DELAY = hook
        with QueryServer(workers=1) as server:
            server.add_tenant("acme", store)
            quitter = server.submit("acme", Q3)
            stayer = server.submit("acme", Q3)
            assert parked.wait(30)
            assert quitter.cancel() is True
            release.set()
            # one waiter cancelled, one stayed: execution completes
            assert len(stayer.result(timeout=30).value) == 3
            assert server.metrics.get("serve.executed") == 1
            assert server.metrics.get("serve.aborted") == 0


class TestEpochBumpDuringRead:
    def test_overlapped_read_retries_to_a_consistent_snapshot(
            self, store):
        title = _title(store)
        mutated = []

        def hook(stage, flight):
            # land a mutation inside the first pinned window only
            if stage == "pinned" and not mutated:
                mutated.append(True)
                store.update_text(title, "Injected Heading")

        server_module._TEST_DELAY = hook
        with QueryServer(workers=1) as server:
            server.add_tenant("acme", store)
            before_epoch = store.epoch
            result = server.query(
                "acme", EDIT_TARGET, timeout=30)
            # the overlapped read was discarded and retried
            assert result.conflicts == 1
            assert server.metrics.get("serve.epoch_conflicts") == 1
            # the response is consistent at the post-edit epoch —
            # never a torn mix of the two states
            assert result.epoch == store.epoch
            assert result.epoch > before_epoch
            assert result.value == store.query(EDIT_TARGET)
            texts = {store.text(oid) for oid in result.value}
            assert "Injected Heading" in texts

    def test_stale_but_consistent_never_torn(self, store):
        """A response may lag mutations that landed after its window
        closed — its epoch says exactly which state it reflects."""
        title = _title(store)
        with QueryServer(workers=1) as server:
            server.add_tenant("acme", store)
            result = server.query("acme", EDIT_TARGET, timeout=30)
            pinned = result.epoch
            server.update_text("acme", title, "After The Read")
            # the response is now stale — and precisely labelled so
            assert pinned < store.epoch
            assert result.epoch == pinned

    def test_persistent_conflicts_fall_back_to_writer_exclusion(
            self, store):
        title = _title(store)
        retries = 3
        counter = [0]

        def hook(stage, flight):
            # poison every retry window the loop is willing to try
            if stage == "pinned":
                counter[0] += 1
                store.update_text(
                    title, f"Poisoned {counter[0]} Heading")

        server_module._TEST_DELAY = hook
        with QueryServer(workers=1, read_retries=retries) as server:
            server.add_tenant("acme", store)
            result = server.query("acme", EDIT_TARGET, timeout=30)
            # every optimistic attempt conflicted...
            assert counter[0] == retries
            assert server.metrics.get("serve.epoch_conflicts") == retries
            # ...and the fallback still produced an exact single-epoch
            # answer: the final poisoned edit, fully visible
            assert result.epoch == store.epoch
            assert result.value == store.query(EDIT_TARGET)
            texts = {store.text(oid) for oid in result.value}
            assert f"Poisoned {retries} Heading" in texts
