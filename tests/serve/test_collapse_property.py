"""Property test for request collapsing.

For any burst of concurrent submissions drawn from a seeded query
pool, the server must balance its collapse ledger exactly —

    serve.collapsed + serve.flights == serve.submitted

— and every waiter of a collapsed key must receive the *same*
``SetValue`` (the one execution, fanned out), equal to what the bare
store answers.  The pool is parameterized with hypothesis over the
diffcheck query generator's vocabulary (``PATTERNS`` /
``ATTRIBUTES``), so the burst shape (which texts, how many duplicates,
and the submission interleaving) varies per example while remaining
fully replayable from the seed.

Execution is gated behind the ``_TEST_DELAY`` hook: every flight
parks until the whole burst is submitted, making the collapse
decision — taken at submit time under the server lock — deterministic
per example.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import QueryServer
from repro.diffcheck.generator import ATTRIBUTES, PATTERNS
from repro.serve import server as server_module
from tests.serve.conftest import build_store

# the seeded pool: contains-filtered section scans over the diffcheck
# vocabulary plus plain attribute projections — every text is a valid
# query over the Figure-1 schema, and distinct texts have distinct
# plan-cache keys
POOL = [
    f'select s.title from a in Articles, s in a.sections '
    f'where s.title contains ("{pattern}")'
    for pattern in PATTERNS if " " not in pattern
] + [
    f"select a.{attribute} from a in Articles"
    for attribute in ATTRIBUTES[:4]
]


@pytest.fixture(scope="module")
def served():
    store = build_store()
    oracle = {text: store.query(text) for text in POOL}
    server = QueryServer(workers=4, max_pending=512)
    server.add_tenant("acme", store)
    yield server, oracle
    server.close()


@given(burst=st.lists(st.integers(0, len(POOL) - 1),
                      min_size=1, max_size=24))
@settings(max_examples=40, deadline=None)
def test_collapse_ledger_balances_and_waiters_agree(served, burst):
    server, oracle = served
    before = {
        name: server.metrics.get(f"serve.{name}")
        for name in ("submitted", "flights", "collapsed")}

    gate = threading.Event()
    server_module._TEST_DELAY = (
        lambda stage, flight: gate.wait(30)
        if stage == "executing" else None)
    try:
        requests = [(index, server.submit("acme", POOL[index]))
                    for index in burst]
    finally:
        gate.set()
        server_module._TEST_DELAY = None

    results = [(index, request.result(timeout=60))
               for index, request in requests]

    delta = {
        name: server.metrics.get(f"serve.{name}") - before[name]
        for name in ("submitted", "flights", "collapsed")}

    # the ledger balances exactly
    assert delta["submitted"] == len(burst)
    assert delta["collapsed"] + delta["flights"] == delta["submitted"]
    # gated burst: one flight per distinct text, the rest collapsed
    assert delta["flights"] == len(set(burst))
    assert delta["collapsed"] == len(burst) - len(set(burst))

    # every waiter got the one fanned-out value, equal to the oracle
    first_value = {}
    for index, result in results:
        assert result.value == oracle[POOL[index]]
        seen = first_value.setdefault(index, result.value)
        assert result.value == seen
    # exactly one leader (non-collapsed) per distinct text
    for index in set(burst):
        leaders = [r for i, r in results
                   if i == index and not r.collapsed]
        assert len(leaders) == 1
