"""Unit coverage for :class:`repro.serve.QueryServer`.

Single-feature tests: serving parity with the bare store, tenancy
isolation, admission control, timeout/cancel semantics, the asyncio
face, collapse bookkeeping and the write passthroughs.  The gnarly
interleavings live in the stress/fault/property suites next door.
"""

import asyncio
import threading

import pytest

from repro import DocumentStore, QueryServer
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.errors import (
    AdmissionError,
    RequestCancelled,
    RequestTimeout,
    ServeError,
    UnknownTenantError,
)
from repro.serve import server as server_module
from tests.serve.conftest import QUERY_MIX, Q3


@pytest.fixture(autouse=True)
def _clean_hook():
    yield
    server_module._TEST_DELAY = None


class TestParity:
    def test_served_results_match_direct_queries(self, server, store):
        for text in QUERY_MIX:
            assert server.query("acme", text).value == store.query(text)

    def test_result_carries_snapshot_provenance(self, server, store):
        result = server.query("acme", Q3)
        assert result.tenant == "acme"
        assert result.epoch == store.epoch
        assert result.collapsed is False
        assert result.conflicts == 0
        assert result.latency >= 0.0

    def test_query_many_submissions_pipeline(self, server, store):
        requests = [server.submit("acme", text) for text in QUERY_MIX]
        for text, request in zip(QUERY_MIX, requests):
            assert request.result(timeout=30).value == store.query(text)


class TestTenancy:
    def test_tenants_are_isolated(self, server):
        other = DocumentStore(ARTICLE_DTD)
        other.load_text(SAMPLE_ARTICLE, name="my_article")
        server.add_tenant("globex", other)
        acme = server.query("acme", Q3).value
        globex = server.query("globex", Q3).value
        assert acme == globex  # same sample document...
        assert server.tenant("acme") is not server.tenant("globex")

    def test_unknown_tenant_is_refused_at_submit(self, server):
        with pytest.raises(UnknownTenantError):
            server.submit("nobody", Q3)

    def test_duplicate_tenant_is_rejected(self, server, store):
        with pytest.raises(ValueError):
            server.add_tenant("acme", store)

    def test_create_tenant_builds_a_store(self, server):
        created = server.create_tenant("fresh", ARTICLE_DTD)
        created.load_text(SAMPLE_ARTICLE, name="my_article")
        assert len(server.query("fresh", Q3).value) == 3
        assert set(server.tenants) == {"acme", "fresh"}

    def test_unknown_tenant_is_a_serve_error(self):
        assert issubclass(UnknownTenantError, ServeError)
        assert issubclass(AdmissionError, ServeError)
        assert issubclass(RequestTimeout, ServeError)
        assert issubclass(RequestCancelled, ServeError)


class TestAdmission:
    def test_queue_bound_refuses_excess_load(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=1, max_pending=2) as srv:
            srv.add_tenant("acme", store)
            # distinct texts so collapsing can't absorb them
            first = srv.submit("acme", QUERY_MIX[0])
            second = srv.submit("acme", QUERY_MIX[1])
            with pytest.raises(AdmissionError):
                srv.submit("acme", QUERY_MIX[2])
            assert srv.metrics.get("serve.rejected") == 1
            gate.set()
            first.result(timeout=30)
            second.result(timeout=30)
            # slots freed: admission recovers
            srv.query("acme", QUERY_MIX[2], timeout=30)

    def test_collapsed_waiters_cost_no_slot(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=1, max_pending=1) as srv:
            srv.add_tenant("acme", store)
            leader = srv.submit("acme", Q3)
            riders = [srv.submit("acme", Q3) for _ in range(5)]
            assert all(r.collapsed for r in riders)
            gate.set()
            values = [r.result(timeout=30).value
                      for r in [leader, *riders]]
            assert all(v == values[0] for v in values)

    def test_closed_server_refuses_submissions(self, store):
        srv = QueryServer(workers=1)
        srv.add_tenant("acme", store)
        srv.close()
        with pytest.raises(AdmissionError):
            srv.submit("acme", Q3)


class TestTimeoutAndCancel:
    def test_timeout_abandons_the_wait_not_the_flight(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=1) as srv:
            srv.add_tenant("acme", store)
            request = srv.submit("acme", Q3)
            with pytest.raises(RequestTimeout):
                request.result(timeout=0.05)
            assert srv.metrics.get("serve.timeouts") == 1
            gate.set()
            # the shared execution kept running: the result still lands
            assert len(request.result(timeout=30).value) == 3

    def test_cancel_before_completion(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=1) as srv:
            srv.add_tenant("acme", store)
            request = srv.submit("acme", Q3)
            assert request.cancel() is True
            gate.set()
            with pytest.raises(RequestCancelled):
                request.result(timeout=30)
            assert srv.metrics.get("serve.cancelled") == 1

    def test_cancel_after_completion_is_a_noop(self, server):
        request = server.submit("acme", Q3)
        request.result(timeout=30)
        assert request.cancel() is False

    def test_default_timeout_applies(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=1, default_timeout=0.05) as srv:
            srv.add_tenant("acme", store)
            with pytest.raises(RequestTimeout):
                srv.query("acme", Q3)
            gate.set()


class TestAsyncFace:
    def test_aquery_matches_blocking_query(self, server, store):
        async def main():
            results = await asyncio.gather(
                *(server.aquery("acme", text) for text in QUERY_MIX))
            return results
        results = asyncio.run(main())
        for text, result in zip(QUERY_MIX, results):
            assert result.value == store.query(text)

    def test_aquery_timeout(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=1) as srv:
            srv.add_tenant("acme", store)

            async def main():
                with pytest.raises(RequestTimeout):
                    await srv.aquery("acme", Q3, timeout=0.05)
            asyncio.run(main())
            gate.set()


class TestCollapsing:
    def test_identical_concurrent_queries_share_one_execution(
            self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=2) as srv:
            srv.add_tenant("acme", store)
            requests = [srv.submit("acme", Q3) for _ in range(8)]
            gate.set()
            values = [r.result(timeout=30).value for r in requests]
            assert all(v == values[0] for v in values)
            metrics = srv.metrics
            assert metrics.get("serve.submitted") == 8
            assert metrics.get("serve.flights") == 1
            assert metrics.get("serve.collapsed") == 7
            assert metrics.get("serve.executed") == 1

    def test_epoch_bump_prevents_cross_epoch_collapse(self, store):
        """A write between two submissions changes the admission epoch,
        so the second submission may NOT ride the first's execution."""
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        title = next(iter(store.query(Q3)))
        with QueryServer(workers=2) as srv:
            srv.add_tenant("acme", store)
            stale = srv.submit("acme", Q3)
            srv.update_text("acme", title, "Renamed Heading")
            fresh = srv.submit("acme", Q3)
            assert fresh.collapsed is False
            gate.set()
            stale.result(timeout=30)
            fresh.result(timeout=30)
            assert srv.metrics.get("serve.flights") == 2
            assert srv.metrics.get("serve.collapsed") == 0

    def test_collapse_disabled_executes_every_submission(self, store):
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=2, collapse=False) as srv:
            srv.add_tenant("acme", store)
            requests = [srv.submit("acme", Q3) for _ in range(4)]
            gate.set()
            for request in requests:
                request.result(timeout=30)
            assert srv.metrics.get("serve.flights") == 4
            assert srv.metrics.get("serve.collapsed") == 0

    def test_key_normalisation_collapses_reformatted_text(self, store):
        """The collapse key is the plan-cache key, not raw text — the
        same query with different whitespace coalesces."""
        gate = threading.Event()
        server_module._TEST_DELAY = (
            lambda stage, flight: gate.wait(10)
            if stage == "executing" else None)
        with QueryServer(workers=2) as srv:
            srv.add_tenant("acme", store)
            a = srv.submit("acme", Q3)
            b = srv.submit("acme", "select t  from my_article "
                                   "PATH_p.title(t)")
            assert b.collapsed is True
            gate.set()
            assert a.result(timeout=30).value == b.result(
                timeout=30).value


class TestWrites:
    def test_update_text_through_the_server(self, server, store):
        title = next(iter(store.query(
            "select s.title from a in Articles, s in a.sections")))
        epoch = server.update_text("acme", title, "Served Heading")
        assert epoch == store.epoch
        titles = server.query(
            "acme", "select s.title from a in Articles, "
            "s in a.sections where s.title contains (\"Served\")")
        assert len(titles.value) == 1
        assert server.metrics.get("serve.writes") == 1

    def test_load_text_through_the_server(self, server, store):
        before = len(store.query("select a from a in Articles"))
        server.load_text("acme", SAMPLE_ARTICLE)
        after = len(store.query("select a from a in Articles"))
        assert after == before + 1


class TestLifecycle:
    def test_stats_shape(self, server):
        server.query("acme", Q3)
        stats = server.stats()
        assert stats["tenants"] == 1
        assert stats["submitted"] >= 1
        assert stats["executed"] >= 1
        assert stats["qps"] > 0
        assert stats["pending"] == 0

    def test_latency_histograms_recorded(self, server):
        server.query("acme", Q3)
        snapshot = server.metrics.snapshot()["histograms"]
        assert snapshot["serve.latency_ms"]["count"] == 1
        assert snapshot["serve.latency_ms.acme"]["count"] == 1

    def test_invalid_configuration_is_rejected(self):
        with pytest.raises(ValueError):
            QueryServer(workers=0)
        with pytest.raises(ValueError):
            QueryServer(workers=1, max_pending=0)
