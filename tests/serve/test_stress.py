"""The serving stress battery: correctness under concurrent traffic.

Eight reader threads hammer the paper's query mix through the server
while a writer thread applies a *deterministic* mutation script
(in-database sentinel edits plus whole-document loads).  The oracle is
single-threaded replay: the same script runs against an identically
built second store, recording every query's answer after every step —
``expected[epoch][query]``.  Because oid identity is structural and
loading is deterministic, the two stores agree value-for-value, so
every live response must equal the replay answer *at the epoch the
response pinned*:

* zero wrong results — stale is allowed (a response may reflect an
  earlier epoch), torn is not (the value must exactly match some
  single-epoch replay state);
* zero deadlocks — every thread finishes inside the wall-clock budget;
* the collapse ledger balances — ``collapsed + flights == submitted``.

``SERVE_STRESS_EDITS`` / ``SERVE_STRESS_READERS`` shrink the run for
the CI smoke job.
"""

import os
import random
import threading

from repro import QueryServer
from repro.corpus.generator import generate_corpus
from tests.serve.conftest import QUERY_MIX, build_store

EDITS = int(os.environ.get("SERVE_STRESS_EDITS", "12"))
READERS = int(os.environ.get("SERVE_STRESS_READERS", "8"))
SECTION_TITLES = "select s.title from a in Articles, s in a.sections"


def _title_of(store):
    return min(store.query(SECTION_TITLES), key=lambda o: o.number)


def _script(edits):
    """The deterministic mutation script: step kind per index."""
    plan = []
    loads = 0
    for n in range(edits):
        if n % 4 == 3:
            plan.append(("load", loads))
            loads += 1
        else:
            plan.append(("edit", n))
    trees = generate_corpus(max(loads, 1), seed=7)
    return plan, trees


def _apply(step, trees, *, store=None, server=None, title=None):
    kind, argument = step
    if kind == "edit":
        text = f"Sentinel{argument} Heading"
        if server is not None:
            server.update_text("acme", title, text)
        else:
            store.update_text(title, text)
    else:
        if server is not None:
            server.load_tree("acme", trees[argument], validate=False)
        else:
            store.load_tree(trees[argument], validate=False)


def test_stress_readers_vs_writer_replay_exact():
    plan, live_trees = _script(EDITS)
    _, replay_trees = _script(EDITS)

    # the oracle: replay the script single-threaded, snapshotting every
    # query's answer at every epoch the live server could ever pin
    replay = build_store()
    expected = {}

    def snapshot():
        expected[replay.epoch] = {
            text: replay.query(text) for text in QUERY_MIX}

    replay_title = _title_of(replay)
    snapshot()
    for step in plan:
        _apply(step, replay_trees, store=replay, title=replay_title)
        snapshot()

    # the live run
    store = build_store()
    title = _title_of(store)
    assert title == replay_title  # structural oid identity holds

    errors = []
    responses = []
    responses_lock = threading.Lock()
    done = threading.Event()

    with QueryServer(workers=READERS, max_pending=READERS * 64) as server:
        server.add_tenant("acme", store)

        def writer():
            try:
                for step in plan:
                    _apply(step, live_trees, server=server, title=title)
            except Exception as exc:  # pragma: no cover - fails below
                errors.append(exc)
            finally:
                done.set()

        def reader(index):
            rng = random.Random(index)
            try:
                while not done.is_set():
                    text = rng.choice(QUERY_MIX)
                    result = server.query("acme", text, timeout=60)
                    with responses_lock:
                        responses.append(
                            (text, result.epoch, result.value))
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        # zero deadlocks: every thread finished inside the budget
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert responses, "readers never completed a query"

        # zero wrong results: every response equals the single-threaded
        # replay at its pinned epoch — stale-but-consistent, never torn
        for text, epoch, value in responses:
            assert epoch in expected, (
                f"response pinned epoch {epoch} the script never "
                f"produced (known: {sorted(expected)})")
            assert value == expected[epoch][text], (
                f"torn read at epoch {epoch} for {text!r}")

        # the final state converged on the replay's final state
        for text in QUERY_MIX:
            final = server.query("acme", text, timeout=60)
            assert final.epoch == replay.epoch
            assert final.value == expected[replay.epoch][text]

        # the collapse ledger balances
        metrics = server.metrics
        assert (metrics.get("serve.collapsed")
                + metrics.get("serve.flights")
                == metrics.get("serve.submitted"))
        assert metrics.get("serve.errors") == 0
        assert metrics.get("serve.rejected") == 0
