"""Shared fixtures for the serving-layer battery.

``build_store`` mirrors the cache concurrency suite: the paper's
sample article plus a small generated corpus, with both indexes built
so reads exercise the index-backed plans the writer invalidates.
"""

import pytest

from repro import DocumentStore, QueryServer
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus

# the paper's queries (tests/observe/test_backend_parity.py) — the
# serving read mix
Q1 = """
    select tuple (t: a.title, f_author: first(a.authors))
    from a in Articles, s in a.sections
    where s.title contains ("SGML" and "OODBMS")
"""
Q2 = "select ss from a in Articles, s in a.sections, ss in s.subsectns"
Q3 = "select t from my_article PATH_p.title(t)"
Q4 = "my_article PATH_p - my_old_article PATH_p"
Q5 = """
    select name(ATT_a) from my_article PATH_p.ATT_a(val)
    where val contains ("final")
"""
Q6 = "select s.title from a in Articles, s in a.sections"

QUERY_MIX = [Q1, Q2, Q3, Q4, Q5, Q6]


def build_store(documents: int = 3, backend: str = "algebra",
                indexes: bool = True) -> DocumentStore:
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.load_text(SAMPLE_ARTICLE, name="my_old_article")
    for tree in generate_corpus(documents, seed=42):
        store.load_tree(tree, validate=False)
    if indexes:
        store.build_text_index()
        store.build_structural_index()
    return store


@pytest.fixture
def store():
    return build_store()


@pytest.fixture
def server(store):
    with QueryServer(workers=4) as srv:
        srv.add_tenant("acme", store)
        yield srv
