"""The index-level concurrency contract the serving layer builds on.

Two deterministic checks pin the copy-on-write discipline down without
any scheduling luck — a reader that grabbed a posting list (TextIndex)
or an ``_oid_nodes`` entry list (StructuralIndex) before a mutation
must keep iterating the *old, internally consistent* snapshot, because
mutators swap fresh lists in instead of filtering in place.  Two
threaded hammers then drive the same paths under real interleaving:
probes racing ``replace`` edits, and ``locate`` racing full block
rebuilds, with zero exceptions and only-valid-states results.
"""

import threading

from repro.corpus import SAMPLE_ARTICLE
from repro.text import TextIndex
from tests.serve.conftest import build_store

ROUNDS = 150


class TestTextIndexCopyOnWrite:
    def test_remove_swaps_never_filters_in_place(self):
        index = TextIndex()
        index.add("a", "shared token stream")
        index.add("b", "shared token stream")
        held = index._postings["shared"]
        assert {key for key, _ in held} == {"a", "b"}

        index.remove("a")

        # the held snapshot is untouched — a concurrent probe mid-scan
        # sees the complete pre-edit posting list, never a torn filter
        assert {key for key, _ in held} == {"a", "b"}
        # the published list is a fresh object with "a" gone
        fresh = index._postings["shared"]
        assert fresh is not held
        assert {key for key, _ in fresh} == {"b"}

    def test_replace_preserves_held_snapshots(self):
        index = TextIndex()
        index.add("doc", "alpha beta alpha")
        held = index._postings["alpha"]
        index.replace("doc", "beta gamma")
        assert len(held) == 2  # the old snapshot survives intact
        assert "alpha" not in index._postings

    def test_probes_racing_replace_see_only_valid_states(self):
        """Readers probing words and phrases while a writer re-indexes.

        The per-token contract: a probe sees some swapped-in snapshot
        of each posting list — possibly one edit stale, never torn —
        so every result is a subset of the live keys, phrase positions
        stay internally coherent, and nothing raises.  (Consistency
        *across* tokens is explicitly the serve fence's job, so two
        probes may straddle an edit — the test only asserts what the
        index itself promises.)"""
        index = TextIndex()
        for n in range(8):
            index.add(n, "stable prefix version zero")
        errors = []
        done = threading.Event()

        def writer():
            try:
                for round_number in range(ROUNDS):
                    key = round_number % 8
                    version = ("one" if round_number % 2
                               else "zero")
                    index.replace(
                        key, f"stable prefix version {version}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    for word in ("stable", "zero", "one"):
                        assert (index.keys_with_word(word)
                                <= set(range(8)))
                    # positions within each snapshot stay coherent:
                    # the phrase probe never invents a key
                    from repro.text.patterns import Pattern
                    phrase = index.keys_with_phrase(
                        Pattern("stable prefix"))
                    assert phrase <= set(range(8))
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert errors == []

        # the dust settled: the index converged on the exact final
        # state of the deterministic write sequence
        last_round = {key: max(r for r in range(ROUNDS)
                               if r % 8 == key)
                      for key in range(8)}
        assert index.keys_with_word("stable") == set(range(8))
        for key, round_number in last_round.items():
            version = "one" if round_number % 2 else "zero"
            assert key in index.keys_with_word(version)
            other = "zero" if version == "one" else "one"
            assert key not in index.keys_with_word(other)


class TestStructuralIndexRebuildRaces:
    def test_drop_block_swaps_oid_entries(self):
        store = build_store(documents=1)
        index = store.struct_index
        index.refresh()
        oid, entries = next(
            (oid, entries)
            for oid, entries in index._oid_nodes.items()
            if len(entries) >= 2)
        held = entries
        before = list(held)
        # force a rebuild of one of the roots the oid appears under
        name = held[0][0]
        index._dirty.add(name)
        index.refresh()
        # the held snapshot never mutated under the reader
        assert held == before
        # the published entry list is a different object (rebuilt)
        assert index._oid_nodes[oid] is not held

    def test_locate_racing_rebuilds(self):
        """Readers locating + scanning blocks while a writer keeps
        dirtying the index: every locate returns either None or an
        internally consistent immutable block."""
        store = build_store(documents=2)
        index = store.struct_index
        index.refresh()
        title = min(
            store.query("select s.title from a in Articles, "
                        "s in a.sections"),
            key=lambda o: o.number)
        errors = []
        done = threading.Event()

        def writer():
            try:
                for n in range(ROUNDS // 3):
                    store.update_text(title, f"Race {n} Heading")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                done.set()

        def reader():
            try:
                while not done.is_set():
                    found = index.locate(title)
                    if found is None:
                        continue
                    block, pre = found
                    # the block is immutable: its arrays agree with
                    # each other even if a rebuild already replaced it
                    assert 0 <= pre < block.size
                    assert block.oids.get(title), "oid lost from block"
                    assert len(block.values) == block.size
                    assert len(block.complete) == block.size
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert errors == []


class TestDocumentStoreFence:
    def test_write_seq_is_odd_exactly_during_mutation(self):
        store = build_store(documents=1, indexes=False)
        observed = []

        assert store.write_seq % 2 == 0
        with store.mutating():
            observed.append(store.write_seq)
            with store.mutating():  # nested mutators don't double-bump
                observed.append(store.write_seq)
        assert all(seq % 2 == 1 for seq in observed)
        assert len(set(observed)) == 1
        assert store.write_seq % 2 == 0

    def test_every_mutator_bumps_the_fence(self):
        store = build_store(documents=1, indexes=False)
        title = min(
            store.query("select s.title from a in Articles, "
                        "s in a.sections"),
            key=lambda o: o.number)
        before = store.write_seq
        store.update_text(title, "Fenced Heading")
        after_edit = store.write_seq
        assert after_edit == before + 2  # enter + exit
        store.load_text(SAMPLE_ARTICLE)
        assert store.write_seq == after_edit + 2

    def test_excluding_writers_blocks_mutators(self):
        store = build_store(documents=1, indexes=False)
        title = min(
            store.query("select s.title from a in Articles, "
                        "s in a.sections"),
            key=lambda o: o.number)
        entered = threading.Event()
        committed = threading.Event()

        def writer():
            entered.set()
            store.update_text(title, "Blocked Heading")
            committed.set()

        with store.excluding_writers():
            thread = threading.Thread(target=writer)
            thread.start()
            assert entered.wait(10)
            # the writer cannot commit while we hold the exclusion
            assert not committed.wait(0.1)
            seq_inside = store.write_seq
            assert seq_inside % 2 == 0
        assert committed.wait(10)
        thread.join(timeout=10)
        assert store.write_seq == seq_inside + 2
