"""Tests for the document loader and the text() inverse operator."""

import pytest

from repro.corpus.article_dtd import article_dtd
from repro.corpus.sample_article import sample_article_tree
from repro.errors import MappingError
from repro.mapping import DocumentLoader, load_document, map_dtd, text_of
from repro.oodb import ListValue, NIL, Oid, TupleValue
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance_parser import parse_document


@pytest.fixture(scope="module")
def mapped():
    return map_dtd(article_dtd())


@pytest.fixture()
def loader(mapped):
    return load_document(mapped, sample_article_tree())


class TestFigure2Loading:
    def test_instance_is_well_typed(self, loader):
        loader.instance.check()

    def test_constraints_hold(self, mapped, loader):
        mapped.constraints.check_instance(loader.instance)

    def test_root_holds_one_article(self, mapped, loader):
        root = loader.instance.root("Articles")
        assert len(root) == 1
        assert root[0].class_name == "Article"

    def test_article_value_shape(self, mapped, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        assert article.attribute_names == (
            "title", "authors", "affil", "abstract", "sections",
            "acknowl", "status")
        assert article.get("status") == "final"
        assert len(article.get("authors")) == 4

    def test_authors_are_text_objects(self, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        first_author = article.get("authors")[0]
        assert isinstance(first_author, Oid)
        value = loader.instance.deref(first_author)
        assert value.get("text") == "V. Christophides"

    def test_sections_use_a1_branch(self, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        for section_oid in article.get("sections"):
            section = loader.instance.deref(section_oid)
            assert section.is_marked
            assert section.marker == "a1"  # no subsections in Figure 2
            assert section.marked_value.has_attribute("bodies")

    def test_body_union_marked_by_element_name(self, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        section = loader.instance.deref(article.get("sections")[0])
        body_oid = section.marked_value.get("bodies")[0]
        body = loader.instance.deref(body_oid)
        assert body.marker == "paragr"

    def test_object_count(self, loader):
        # one object per element of Figure 2 (17 elements)
        assert loader.instance.object_count() == 17

    def test_provenance_recorded(self, loader):
        for oid in loader.instance.all_oids():
            assert oid.number in loader.provenance

    def test_multiple_documents_share_root(self, mapped):
        loader = DocumentLoader(mapped)
        loader.load(sample_article_tree())
        loader.load(sample_article_tree())
        assert len(loader.instance.root("Articles")) == 2


class TestTextInverse:
    def test_text_of_title_object(self, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        title = article.get("title")
        assert "Novel Query Facilities" in text_of(
            title, loader.instance, loader.provenance)

    def test_text_of_section_concatenates(self, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        section_text = text_of(article.get("sections")[0],
                               loader.instance, loader.provenance)
        assert "Introduction" in section_text
        assert "SGML standard" in section_text

    def test_structural_fallback_without_provenance(self, loader):
        article = loader.instance.deref(loader.instance.root("Articles")[0])
        text = text_of(article.get("sections")[0], loader.instance)
        assert "Introduction" in text

    def test_text_of_plain_values(self):
        assert text_of("hello") == "hello"
        assert text_of(42) == ""
        assert text_of(TupleValue([("a", "x"), ("b", "y")])) == "x y"
        assert text_of(ListValue(["p", NIL, "q"])) == "p q"

    def test_text_of_cyclic_references_terminates(self, mapped):
        # Build two objects referencing each other through reflabel-ish
        # structure: text_of must not loop.
        from repro.oodb import Instance
        instance = Instance(mapped.schema)
        a = instance.new_object("Paragr")
        b = instance.new_object("Paragr")
        instance.set_value(a, TupleValue([("text", "A"), ("reflabel", b)]))
        instance.set_value(b, TupleValue([("text", "B"), ("reflabel", a)]))
        assert text_of(a, instance) == "A B"


class TestCrossReferences:
    @pytest.fixture()
    def ref_mapped(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (fig+, par+)>
            <!ELEMENT fig - O (#PCDATA)>
            <!ATTLIST fig label ID #REQUIRED>
            <!ELEMENT par - O (#PCDATA)>
            <!ATTLIST par ref IDREF #IMPLIED>
        """)
        return map_dtd(dtd)

    def test_idref_resolved_to_oid(self, ref_mapped):
        tree = parse_document(
            '<doc><fig label="f1">a figure'
            '<par ref="f1">see figure</doc>',
            parse_dtd("""
                <!ELEMENT doc - - (fig+, par+)>
                <!ELEMENT fig - O (#PCDATA)>
                <!ATTLIST fig label ID #REQUIRED>
                <!ELEMENT par - O (#PCDATA)>
                <!ATTLIST par ref IDREF #IMPLIED>
            """))
        loader = load_document(ref_mapped, tree)
        instance = loader.instance
        doc = instance.deref(instance.root("Docs")[0])
        fig_oid = doc.get("figs")[0]
        par_oid = doc.get("pars")[0]
        par = instance.deref(par_oid)
        assert par.get("ref") == fig_oid
        # inverse reference: the figure's label lists the paragraph
        fig = instance.deref(fig_oid)
        assert par_oid in list(fig.get("label"))

    def test_dangling_idref_rejected(self, ref_mapped):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (fig+, par+)>
            <!ELEMENT fig - O (#PCDATA)>
            <!ATTLIST fig label ID #REQUIRED>
            <!ELEMENT par - O (#PCDATA)>
            <!ATTLIST par ref IDREF #IMPLIED>
        """)
        tree = parse_document(
            '<doc><fig label="f1">a<par ref="ghost">b</doc>', dtd)
        with pytest.raises(MappingError):
            load_document(ref_mapped, tree)


class TestLoaderErrors:
    def test_wrong_document_element(self, mapped):
        from repro.sgml.instance import Element, Text
        loader = DocumentLoader(mapped)
        with pytest.raises(MappingError):
            loader.load(Element("title", children=[Text("x")]))

    def test_number_attribute_converted(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc year NUMBER #REQUIRED>
        """)
        mapped = map_dtd(dtd)
        tree = parse_document('<doc year="1994">x</doc>', dtd)
        loader = load_document(mapped, tree)
        doc = loader.instance.deref(loader.instance.root("Docs")[0])
        assert doc.get("year") == 1994

    def test_missing_optional_attribute_is_nil(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc note CDATA #IMPLIED>
        """)
        mapped = map_dtd(dtd)
        tree = parse_document("<doc>x</doc>", dtd)
        loader = load_document(mapped, tree)
        doc = loader.instance.deref(loader.instance.root("Docs")[0])
        assert doc.get("note") == NIL

    def test_letters_and_group_records_document_order(self):
        dtd = parse_dtd("""
            <!ELEMENT letter - - ((to & from), content)>
            <!ELEMENT (to|from|content) - O (#PCDATA)>
        """)
        mapped = map_dtd(dtd)
        to_first = load_document(mapped, parse_document(
            "<letter><to>Alice<from>Bob<content>hi</letter>", dtd))
        letter = to_first.instance.deref(
            to_first.instance.root("Letters")[0])
        assert letter.marker == "a1"
        assert letter.marked_value.attribute_names == (
            "to", "from", "content")
        from_first = load_document(mapped, parse_document(
            "<letter><from>Bob<to>Alice<content>hi</letter>", dtd))
        letter2 = from_first.instance.deref(
            from_first.instance.root("Letters")[0])
        assert letter2.marker == "a2"
        assert letter2.marked_value.attribute_names == (
            "from", "to", "content")
