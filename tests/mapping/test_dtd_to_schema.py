"""Tests for the DTD → schema compiler — experiment F3.

The F3 assertions compare the schema generated from the Figure-1 DTD
against the paper's Figure 3, class by class.
"""

import pytest

from repro.corpus.article_dtd import article_dtd
from repro.errors import MappingError
from repro.mapping import class_name_for, map_dtd, plural_field_name
from repro.mapping.naming import MarkerSupply
from repro.oodb import (
    ANY,
    INTEGER,
    STRING,
    c,
    format_schema,
    list_of,
    tuple_of,
    union_of,
)
from repro.oodb.types import TupleType, UnionType
from repro.sgml.dtd_parser import parse_dtd


@pytest.fixture(scope="module")
def mapped():
    return map_dtd(article_dtd())


class TestNaming:
    def test_class_names(self):
        assert class_name_for("article") == "Article"
        assert class_name_for("subsectn") == "Subsectn"

    def test_plurals_match_figure3(self):
        assert plural_field_name("author") == "authors"
        assert plural_field_name("section") == "sections"
        assert plural_field_name("body") == "bodies"
        assert plural_field_name("subsectn") == "subsectns"

    def test_marker_supply(self):
        supply = MarkerSupply()
        assert [supply.fresh() for _ in range(3)] == ["a1", "a2", "a3"]


class TestFigure3:
    """Experiment F3: Figure 1 compiles to the Figure 3 schema."""

    def test_all_classes_present(self, mapped):
        expected = {
            "Text", "Bitmap", "Article", "Title", "Author", "Affil",
            "Abstract", "Section", "Subsectn", "Body", "Figure",
            "Picture", "Caption", "Paragr", "Acknowl"}
        assert set(mapped.schema.class_names) == expected

    def test_article_class(self, mapped):
        structure = mapped.schema.structure("Article")
        assert structure == tuple_of(
            ("title", c("Title")),
            ("authors", list_of(c("Author"))),
            ("affil", c("Affil")),
            ("abstract", c("Abstract")),
            ("sections", list_of(c("Section"))),
            ("acknowl", c("Acknowl")),
            ("status", STRING))

    def test_section_union(self, mapped):
        structure = mapped.schema.structure("Section")
        assert structure == union_of(
            ("a1", tuple_of(("title", c("Title")),
                            ("bodies", list_of(c("Body"))))),
            ("a2", tuple_of(("title", c("Title")),
                            ("bodies", list_of(c("Body"))),
                            ("subsectns", list_of(c("Subsectn"))))))

    def test_body_union_marked_by_element_names(self, mapped):
        structure = mapped.schema.structure("Body")
        assert structure == union_of(
            ("figure", c("Figure")), ("paragr", c("Paragr")))

    def test_figure_class(self, mapped):
        structure = mapped.schema.structure("Figure")
        assert structure == tuple_of(
            ("picture", c("Picture")),
            ("caption", c("Caption")),
            ("label", list_of(ANY)))

    def test_text_inheritance(self, mapped):
        h = mapped.schema.hierarchy
        for class_name in ("Title", "Author", "Affil", "Abstract",
                           "Caption", "Paragr", "Acknowl"):
            assert h.precedes(class_name, "Text"), class_name

    def test_picture_inherits_bitmap(self, mapped):
        assert mapped.schema.hierarchy.precedes("Picture", "Bitmap")

    def test_paragr_has_reflabel(self, mapped):
        structure = mapped.schema.structure("Paragr")
        assert structure.has_attribute("reflabel")
        assert structure.field_type("reflabel") == ANY

    def test_root_matches_figure3(self, mapped):
        assert mapped.root_name == "Articles"
        assert mapped.schema.root_type("Articles") == list_of(c("Article"))

    def test_private_attributes_recorded(self, mapped):
        assert mapped.is_private("Article", "status")
        assert mapped.is_private("Figure", "label")
        assert mapped.is_private("Paragr", "reflabel")
        assert not mapped.is_private("Article", "title")

    def test_article_constraints(self, mapped):
        described = {c.describe()
                     for c in mapped.constraints.for_class("Article")}
        assert "title != nil" in described
        assert "authors != list()" in described
        assert "sections != list()" in described
        assert "status in set('final', 'draft')" in described

    def test_section_disjunction_constraint(self, mapped):
        constraints = mapped.constraints.for_class("Section")
        assert len(constraints) == 1
        described = constraints[0].describe()
        assert "a1.title != nil" in described
        assert "a2.subsectns != list()" in described
        # the paper's constraint on a2 omits bodies (body* may be empty)
        assert "a2.bodies" not in described

    def test_schema_well_formed(self, mapped):
        mapped.schema.hierarchy.check_well_formed()

    def test_rendering_mentions_every_figure3_line(self, mapped):
        rendered = format_schema(mapped.schema, mapped.constraints)
        for fragment in (
                "class Article",
                "class Title inherit Text",
                "class Section public type union (a1: tuple",
                "class Body public type union (figure: Figure, "
                "paragr: Paragr)",
                "class Picture inherit Bitmap",
                "name Articles: list (Article)"):
            assert fragment in rendered, fragment


class TestGeneralMapping:
    def test_number_attribute_maps_to_integer(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (#PCDATA)>
            <!ATTLIST doc year NUMBER #REQUIRED>
        """)
        mapped = map_dtd(dtd)
        assert mapped.schema.structure("Doc").field_type("year") == INTEGER
        described = {c.describe()
                     for c in mapped.constraints.for_class("Doc")}
        assert "year != nil" in described

    def test_optional_component_no_constraint(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (title?, note*)>
            <!ELEMENT title - O (#PCDATA)>
            <!ELEMENT note - O (#PCDATA)>
        """)
        mapped = map_dtd(dtd)
        structure = mapped.schema.structure("Doc")
        assert structure.field_type("title") == c("Title")
        assert structure.field_type("notes") == list_of(c("Note"))
        assert mapped.constraints.for_class("Doc") == ()

    def test_and_group_expands_to_union_of_orderings(self):
        # Section 5.3's Letters typing.
        dtd = parse_dtd("""
            <!ELEMENT letter - - ((to & from), content)>
            <!ELEMENT (to|from|content) - O (#PCDATA)>
        """)
        mapped = map_dtd(dtd)
        structure = mapped.schema.structure("Letter")
        assert isinstance(structure, UnionType)
        assert set(structure.markers) == {"a1", "a2"}
        branch_a1 = structure.branch_type("a1")
        branch_a2 = structure.branch_type("a2")
        assert branch_a1.attribute_names == ("to", "from", "content")
        assert branch_a2.attribute_names == ("from", "to", "content")

    def test_oversized_and_group_rejected(self):
        parts = " & ".join(f"e{i}" for i in range(6))
        names = "|".join(f"e{i}" for i in range(6))
        dtd = parse_dtd(f"""
            <!ELEMENT doc - - ({parts})>
            <!ELEMENT ({names}) - O (#PCDATA)>
        """)
        with pytest.raises(MappingError):
            map_dtd(dtd)

    def test_nested_group_gets_system_name(self):
        dtd = parse_dtd("""
            <!ELEMENT doc - - (title, (note | warning))>
            <!ELEMENT (title|note|warning) - O (#PCDATA)>
        """)
        mapped = map_dtd(dtd)
        structure = mapped.schema.structure("Doc")
        assert structure.attribute_names == ("title", "a1")
        assert isinstance(structure.field_type("a1"), UnionType)

    def test_duplicate_component_names_disambiguated(self):
        dtd = parse_dtd("""
            <!ELEMENT pair - - (item, item)>
            <!ELEMENT item - O (#PCDATA)>
        """)
        mapped = map_dtd(dtd)
        structure = mapped.schema.structure("Pair")
        assert structure.attribute_names == ("item", "item2")

    def test_mixed_content(self):
        dtd = parse_dtd("""
            <!ELEMENT para - - (#PCDATA | emph)*>
            <!ELEMENT emph - O (#PCDATA)>
        """)
        mapped = map_dtd(dtd)
        structure = mapped.schema.structure("Para")
        assert isinstance(structure, TupleType)
        inner = structure.field_type("texts")
        assert inner == list_of(union_of(
            ("text", STRING), ("emph", c("Emph"))))

    def test_empty_dtd_rejected(self):
        from repro.sgml.dtd import Dtd
        with pytest.raises(MappingError):
            map_dtd(Dtd("ghost"))

    def test_doctype_without_explicit_wrapper(self):
        dtd = parse_dtd("<!ELEMENT memo - - (#PCDATA)>")
        mapped = map_dtd(dtd)
        assert mapped.doctype_class == "Memo"
        assert mapped.root_name == "Memos"
