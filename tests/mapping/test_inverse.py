"""Tests for the inverse mapping (database → SGML, footnote 1 / §6)."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.mapping import map_dtd
from repro.mapping.inverse import export_document, schema_to_dtd
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance_parser import parse_document
from repro.sgml.writer import write_document


@pytest.fixture()
def store():
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    return s


class TestSchemaToDtd:
    def test_regenerated_dtd_parses(self, store):
        text = store.export_dtd()
        dtd = parse_dtd(text)
        assert set(dtd.element_names) == set(store.dtd.element_names)

    def test_regenerated_dtd_maps_to_equivalent_schema(self, store):
        regenerated = map_dtd(parse_dtd(store.export_dtd()))
        original = store.mapped
        for class_name in original.schema.class_names:
            assert regenerated.schema.structure(class_name) == \
                original.schema.structure(class_name), class_name

    def test_attlists_survive(self, store):
        dtd = parse_dtd(store.export_dtd())
        status = dtd.attlist("article").get("status")
        assert status.allowed_values == ("final", "draft")
        assert status.default_value == "draft"
        assert dtd.attlist("figure").get("label").kind == "ID"
        assert dtd.attlist("paragr").get("reflabel").kind == "IDREF"

    def test_content_models_survive(self, store):
        dtd = parse_dtd(store.export_dtd())
        assert str(dtd.element("article").model) == (
            "(title, author+, affil, abstract, section+, acknowl)")
        assert str(dtd.element("body").model) == "(figure | paragr)"
        assert str(dtd.element("picture").model) == "EMPTY"


class TestExportDocument:
    def test_figure2_round_trip(self, store):
        exported = store.export_document("my_article")
        # re-parse the serialization and compare structurally with a
        # fresh parse of the original (whitespace-normalised on load)
        original = parse_document(SAMPLE_ARTICLE, store.dtd)
        assert exported == original

    def test_export_text_reparses_and_revalidates(self, store):
        text = store.export_text("my_article")
        tree = parse_document(text, store.dtd)
        from repro.sgml.validator import validation_problems
        assert validation_problems(tree, store.dtd) == []

    def test_corpus_round_trip(self):
        s = DocumentStore(ARTICLE_DTD)
        oids = [s.load_tree(tree)
                for tree in generate_corpus(5, seed=3)]
        for oid, tree in zip(oids, generate_corpus(5, seed=3)):
            exported = export_document(s.mapped, s.instance, oid,
                                       s.loader.id_tokens)
            # normalise the generated tree the way loading does
            reloaded = parse_document(
                write_document(tree, s.dtd), s.dtd)
            assert exported == reloaded

    def test_idref_tokens_survive(self):
        dtd_text = """
            <!DOCTYPE doc [
            <!ELEMENT doc - - (fig+, par+)>
            <!ELEMENT fig - O (#PCDATA)>
            <!ATTLIST fig label ID #REQUIRED>
            <!ELEMENT par - O (#PCDATA)>
            <!ATTLIST par ref IDREF #IMPLIED> ]>
        """
        s = DocumentStore(dtd_text)
        oid = s.load_text(
            '<doc><fig label="f1">a figure'
            '<par ref="f1">see the figure</doc>')
        exported = s.export_document(oid)
        figure = exported.first("fig")
        paragraph = exported.first("par")
        assert figure.attributes["label"] == "f1"
        assert paragraph.attributes["ref"] == "f1"


class TestUpdateThenExport:
    def test_update_visible_in_export_and_text(self, store):
        article = store.instance.root("my_article")
        value = store.instance.deref(article)
        title_oid = value.get("title")
        store.update_text(title_oid, "A Brand New Title")
        # text() reflects the update
        assert store.text(title_oid) == "A Brand New Title"
        assert "A Brand New Title" in store.text(article)
        # export reflects the update
        exported = store.export_document("my_article")
        assert exported.first("title").text_content() == \
            "A Brand New Title"
        # ...and queries see it too
        result = store.query("""
            select t from my_article PATH_p.title(t)
            where t contains ("Brand")
        """)
        assert len(result) == 1

    def test_update_keeps_instance_valid(self, store):
        article = store.instance.root("my_article")
        value = store.instance.deref(article)
        store.update_text(value.get("abstract"), "Shorter abstract.")
        store.check()

    def test_update_rejects_non_text_objects(self, store):
        from repro.errors import MappingError
        article = store.instance.root("my_article")
        with pytest.raises(MappingError):
            store.update_text(article, "nope")
