"""Unit tests for the O₂SQL → calculus translation."""

import pytest

from repro.calculus import (
    And,
    AttVar,
    Const,
    DataVar,
    Eq,
    Exists,
    FunTerm,
    In,
    Not,
    Or,
    PathAtom,
    PathVar,
    Pred,
    Query,
)
from repro.errors import QueryTypeError
from repro.o2sql import parse, to_calculus

ROOTS = {"Articles", "Letters", "my_article", "my_old_article"}


def translate(text: str) -> Query:
    return to_calculus(parse(text), ROOTS)


def _unwrap(formula):
    """Strip the outer Exists for structural inspection."""
    while isinstance(formula, Exists):
        formula = formula.body
    return formula


class TestSelectTranslation:
    def test_range_item_becomes_membership(self):
        query = translate("select a from a in Articles")
        body = _unwrap(query.formula)
        assert isinstance(body, In)
        assert query.head == (DataVar("a"),)

    def test_where_becomes_conjunct(self):
        query = translate(
            "select a from a in Articles where a.status = 'final'")
        body = _unwrap(query.formula)
        assert isinstance(body, And)
        kinds = {type(c) for c in body.conjuncts}
        assert kinds == {In, Eq}

    def test_path_item_becomes_path_atom(self):
        query = translate("select t from my_article PATH_p.title(t)")
        body = _unwrap(query.formula)
        assert isinstance(body, PathAtom)
        assert PathVar("PATH_p") in body.path.variables()
        assert DataVar("t") in body.path.variables()

    def test_hidden_variables_quantified(self):
        query = translate("select t from my_article PATH_p.title(t)")
        assert isinstance(query.formula, Exists)
        assert PathVar("PATH_p") in query.formula.variables

    def test_anonymous_path_variable_for_dotdot(self):
        query = translate("select t from my_article .. .title(t)")
        body = _unwrap(query.formula)
        (pvar,) = [v for v in body.path.variables()
                   if isinstance(v, PathVar)]
        assert pvar.name.startswith("PATH_anon")

    def test_select_expression_gets_result_variable(self):
        query = translate(
            "select first(a.authors) from a in Articles")
        body = _unwrap(query.formula)
        eq = [c for c in body.conjuncts if isinstance(c, Eq)][0]
        assert isinstance(eq.right, FunTerm)
        assert query.head[0].name.startswith("_first")

    def test_contains_becomes_predicate_with_pattern(self):
        query = translate("""
            select a from a in Articles
            where a.status contains ("final" or "draft")
        """)
        body = _unwrap(query.formula)
        pred = [c for c in body.conjuncts if isinstance(c, Pred)][0]
        assert pred.predicate == "contains"
        from repro.text.patterns import OrExpr
        assert isinstance(pred.arguments[1].value, OrExpr)

    def test_comparisons_map_to_predicates(self):
        for op, predicate in [("<", "lt"), ("<=", "le"), (">", "gt"),
                              (">=", "ge"), ("!=", "neq")]:
            query = translate(
                f"select l from l in Letters, l[i].from, l[j].to "
                f"where i {op} j")
            body = _unwrap(query.formula)
            preds = [c for c in body.conjuncts if isinstance(c, Pred)]
            assert preds[0].predicate == predicate, op

    def test_boolean_structure_preserved(self):
        query = translate("""
            select a from a in Articles
            where not (a.status = 'x' or a.status = 'y')
        """)
        body = _unwrap(query.formula)
        negation = [c for c in body.conjuncts
                    if isinstance(c, Not)][0]
        assert isinstance(negation.child, Or)

    def test_attvar_usable_in_select(self):
        query = translate("""
            select ATT_a from my_article PATH_p.ATT_a(v)
        """)
        assert query.head == (AttVar("ATT_a"),)


class TestExpressionQueries:
    def test_difference_builds_membership_form(self):
        query = translate("my_article PATH_p - my_old_article PATH_p")
        body = query.formula
        assert isinstance(body, And)
        membership, negation = body.conjuncts
        assert isinstance(membership, In)
        assert isinstance(negation, Not)
        assert isinstance(negation.child, In)
        # both collections are nested queries
        assert isinstance(membership.collection, Query)

    def test_union_intersect(self):
        union = translate(
            "my_article PATH_p union my_old_article PATH_p")
        assert isinstance(union.formula, Or)
        intersect = translate(
            "my_article PATH_p intersect my_old_article PATH_p")
        assert isinstance(intersect.formula, And)

    def test_bare_path_expression(self):
        query = translate("my_article PATH_p")
        assert query.head == (PathVar("PATH_p"),)
        assert isinstance(query.formula, PathAtom)

    def test_bare_projection_is_singleton_query(self):
        query = translate("my_article.title")
        assert len(query.head) == 1
        body = query.formula
        assert isinstance(body, Eq)

    def test_unknown_identifier_raises(self):
        with pytest.raises(QueryTypeError):
            translate("select x from x in GhostRoot")

    def test_undeclared_index_variable_raises(self):
        with pytest.raises(QueryTypeError):
            translate("select a from a in Articles "
                      "where a.sections[zzz] = 1")

    def test_bare_dot_is_projection_not_path_expression(self):
        # `my_article .title` parses as a field selection (projection),
        # not a path expression — same as `my_article.title`.
        assert str(translate("my_article .title")) == \
            str(translate("my_article.title"))

    def test_variable_free_path_expression_rejected(self):
        # unreachable through the surface syntax, but the translator
        # guards against programmatic construction
        from repro.o2sql.ast import Ident, PAttr, PathExpr
        from repro.o2sql.translate import (
            _Scope, _translate_expression_query)
        node = PathExpr(Ident("my_article"), [PAttr("title")])
        with pytest.raises(QueryTypeError):
            _translate_expression_query(node, _Scope(frozenset(ROOTS)))


class TestRoundTripThroughStr:
    @pytest.mark.parametrize("text", [
        "select a from a in Articles",
        "select t from my_article PATH_p.title(t)",
        "my_article PATH_p - my_old_article PATH_p",
        """select tuple (t: a.title, n: count(a.authors))
           from a in Articles where a.status = "final" """,
    ])
    def test_translation_is_deterministic(self, text):
        assert str(translate(text)) == str(translate(text))
