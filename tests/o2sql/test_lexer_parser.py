"""Tests for the O₂SQL lexer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.o2sql import parse, tokenize_query
from repro.o2sql.ast import (
    BinOp,
    BoolOp,
    Call,
    ContainsOp,
    FieldSel,
    FromPath,
    FromRange,
    Ident,
    IndexSel,
    Literal,
    NotOp,
    PathExpr,
    SelectQuery,
    TupleExpr,
)
from repro.o2sql.ast import (
    PAnon,
    PAttVar,
    PAttr,
    PBind,
    PIndex,
    PVar,
)
from repro.o2sql.lexer import ATTVAR, IDENT, KEYWORD, PATHVAR, PUNCT


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_query("SELECT t FROM a")
        assert tokens[0].kind == KEYWORD and tokens[0].value == "select"
        assert tokens[2].kind == KEYWORD and tokens[2].value == "from"

    def test_path_and_att_variables(self):
        tokens = tokenize_query("PATH_p ATT_a plain")
        assert tokens[0].kind == PATHVAR
        assert tokens[1].kind == ATTVAR
        assert tokens[2].kind == IDENT

    def test_strings_and_numbers(self):
        tokens = tokenize_query("\"text\" 'more' 42 2.5")
        assert [t.value for t in tokens[:4]] == ["text", "more", "42",
                                                 "2.5"]

    def test_two_char_punctuation(self):
        tokens = tokenize_query(".. <= -> !=")
        assert [t.value for t in tokens[:4]] == ["..", "<=", "->", "!="]

    def test_comments_skipped(self):
        tokens = tokenize_query("select -- a comment\n t from X")
        values = [t.value for t in tokens if t.kind != "END"]
        assert "comment" not in values

    def test_unterminated_string_rejected(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query('"unterminated')

    def test_positions_tracked(self):
        tokens = tokenize_query("select\n  t")
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestParserSelect:
    def test_q1_shape(self):
        query = parse("""
            select tuple (t: a.title, f_author: first(a.authors))
            from a in Articles, s in a.sections
            where s.title contains ("SGML" and "OODBMS")
        """)
        assert isinstance(query, SelectQuery)
        assert len(query.select) == 1
        assert isinstance(query.select[0], TupleExpr)
        assert [type(f) for f in query.from_items] == [
            FromRange, FromRange]
        assert isinstance(query.where, ContainsOp)
        assert query.where.pattern.source == '( "SGML" and "OODBMS" )'

    def test_q3_shape(self):
        query = parse("select t from my_article PATH_p.title(t)")
        (item,) = query.from_items
        assert isinstance(item, FromPath)
        assert item.path.root == Ident("my_article")
        assert item.path.components == (
            PVar("PATH_p"), PAttr("title"), PBind("t"))

    def test_dotdot_sugar(self):
        query = parse("select t from my_article .. .title(t)")
        (item,) = query.from_items
        assert isinstance(item.path.components[0], PAnon)

    def test_q5_shape(self):
        query = parse("""
            select name(ATT_a)
            from my_article PATH_p.ATT_a(val)
            where val contains ("final")
        """)
        (item,) = query.from_items
        assert item.path.components == (
            PVar("PATH_p"), PAttVar("ATT_a"), PBind("val"))
        assert isinstance(query.select[0], Call)

    def test_q6_positional_from_items(self):
        query = parse("""
            select letter
            from letter in Letters, letter[i].from, letter[j].to
            where i < j
        """)
        assert len(query.from_items) == 3
        second = query.from_items[1]
        assert isinstance(second, FromPath)
        assert second.path.components == (PIndex("i"), PAttr("from"))
        assert isinstance(query.where, BinOp)
        assert query.where.op == "<"

    def test_keyword_attribute_names(self):
        # `from` used as an attribute name after '.'
        query = parse("select l from l in Letters where l.from = 'x'")
        condition = query.where
        assert isinstance(condition.left, FieldSel)
        assert condition.left.name == "from"

    def test_where_boolean_structure(self):
        query = parse("""
            select x from x in Xs
            where x.a = 1 and (x.b = 2 or not x.c = 3)
        """)
        assert isinstance(query.where, BoolOp)
        assert query.where.op == "and"
        inner = query.where.operands[1]
        assert isinstance(inner, BoolOp) and inner.op == "or"
        assert isinstance(inner.operands[1], NotOp)

    def test_index_selection_expression(self):
        query = parse("select x from x in Xs where x.items[0] = 'y'")
        left = query.where.left
        assert isinstance(left, IndexSel)
        assert left.index == 0

    def test_near_call(self):
        query = parse(
            "select x from x in Xs where near(x.t, 'a', 'b', 3)")
        assert isinstance(query.where, Call)
        assert query.where.function == "near"

    def test_multiple_select_items(self):
        query = parse("select a, b from a in As, b in Bs")
        assert len(query.select) == 2


class TestParserExpressions:
    def test_q4_difference(self):
        query = parse("my_article PATH_p - my_old_article PATH_p")
        assert isinstance(query, BinOp)
        assert query.op == "-"
        assert isinstance(query.left, PathExpr)
        assert isinstance(query.right, PathExpr)

    def test_bare_path_expression(self):
        query = parse("my_article PATH_p.title")
        assert isinstance(query, PathExpr)
        assert query.components == (PVar("PATH_p"), PAttr("title"))

    def test_bare_projection(self):
        query = parse("my_section.subsectns")
        assert isinstance(query, FieldSel)

    def test_union_intersect(self):
        query = parse("(select x from x in Xs) union "
                      "(select y from y in Ys)")
        assert isinstance(query, BinOp) and query.op == "union"

    def test_literals(self):
        assert parse("42") == Literal(42)
        assert parse("2.5") == Literal(2.5)
        assert parse("true") == Literal(True)
        from repro.oodb.values import NIL
        assert parse("nil") == Literal(NIL)

    def test_nested_tuple_and_collections(self):
        query = parse("tuple (a: list(1, 2), b: set())")
        assert isinstance(query, TupleExpr)


class TestParserErrors:
    @pytest.mark.parametrize("bad", [
        "select",                      # missing select list
        "select t",                    # missing from
        "select t from",               # missing from item
        "select t from a in",          # missing collection
        "select t from a in As where", # missing condition
        "select t from a in As extra", # trailing input
        "select t from a ,",           # dangling comma
        "x contains",                  # pattern missing
        "tuple (a 1)",                 # missing ':'
        "x[",                          # unterminated index
    ])
    def test_rejected(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse(bad)

    def test_error_has_position(self):
        try:
            parse("select t\nfrom ???")
        except QuerySyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected QuerySyntaxError")
