"""Experiments Q1–Q6: the paper's Section-4 queries, end to end.

Each query is run as O₂SQL text through the full pipeline
(parse → calculus → safety → types → evaluation) against either the
Figure-2 document, a synthetic corpus, or the letters database.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.errors import QueryTypeError, WrongBranchAccess
from repro.oodb import Oid, SetValue, TupleValue
from repro.paths import Path


@pytest.fixture(scope="module")
def store():
    """Figure 2 plus a synthetic corpus, with named roots."""
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.load_text(SAMPLE_ARTICLE, name="my_old_article")
    for tree in generate_corpus(15, seed=42):
        s.load_tree(tree)
    s.check()
    return s


class TestQ1:
    """Q1: title + first author of articles having a section with a
    title containing "SGML" and "OODBMS"."""

    QUERY = """
        select tuple (t: a.title, f_author: first(a.authors))
        from a in Articles, s in a.sections
        where s.title contains ("SGML" and "OODBMS")
    """

    def test_rows_have_title_and_first_author(self, store):
        result = store.query(self.QUERY)
        assert isinstance(result, SetValue)
        assert len(result) > 0
        for row in result:
            assert isinstance(row, TupleValue)
            assert row.attribute_names == ("t", "f_author")
            assert isinstance(row.get("t"), Oid)

    def test_selection_is_correct(self, store):
        result = store.query(self.QUERY)
        selected_titles = {store.text(row.get("t")) for row in result}
        # cross-check with a manual scan
        expected = set()
        articles = store.instance.root("Articles")
        for article_oid in articles:
            article = store.instance.deref(article_oid)
            for section_oid in article.get("sections"):
                section = store.instance.deref(section_oid)
                title_oid = section.marked_value.get("title")
                title_text = store.text(title_oid)
                if "SGML" in title_text.split() and \
                        "OODBMS" in title_text.split():
                    expected.add(store.text(article.get("title")))
        assert selected_titles == expected

    def test_q1_is_selective(self, store):
        result = store.query(self.QUERY)
        total = len(store.instance.root("Articles"))
        assert 0 < len(result) < total


class TestQ2:
    """Q2: subsections containing the sentence "complex object".

    ``contains`` over a logical object applies text() automatically
    (Section 4.2); the variable ss ranges over subsectns through the
    implicit a2 selector."""

    QUERY = """
        select ss
        from a in Articles, s in a.sections, ss in s.subsectns
        where ss contains ("complex object")
    """

    def test_implicit_selector_skips_a1_sections(self, store):
        # must not fail although most sections have no subsectns
        result = store.query(self.QUERY)
        for ss in result:
            assert ss.class_name == "Subsectn"
            assert "complex object" in store.text(ss)

    def test_agreement_with_explicit_text(self, store):
        explicit = store.query("""
            select ss
            from a in Articles, s in a.sections, ss in s.subsectns
            where text(ss) contains ("complex object")
        """)
        assert store.query(self.QUERY) == explicit

    def test_subsections_exist_in_corpus(self, store):
        # sanity: the corpus must exercise the a2 branch at all
        all_ss = store.query("""
            select ss
            from a in Articles, s in a.sections, ss in s.subsectns
        """)
        assert len(all_ss) > 0


class TestQ3:
    """Q3: all titles in my_article, via a path variable."""

    QUERY = "select t from my_article PATH_p.title(t)"

    def test_titles_at_all_levels(self, store):
        result = store.query(self.QUERY)
        texts = {store.text(t) for t in result}
        assert "From Structured Documents to Novel Query Facilities" \
            in texts
        assert "Introduction" in texts
        assert "SGML preliminaries" in texts
        assert len(result) == 3

    def test_dotdot_sugar_equivalent(self, store):
        sugar = store.query("select t from my_article .. .title(t)")
        assert sugar == store.query(self.QUERY)

    def test_paths_themselves_queryable(self, store):
        result = store.query("select PATH_p, t "
                             "from my_article PATH_p.title(t)")
        paths = {str(row.get("PATH_p")) for row in result}
        assert "->" in paths                       # the article's own title
        assert any(".sections[0]" in p for p in paths)

    def test_bare_path_expression_query(self, store):
        # `my_article PATH_p.title` returns the set of paths P such that
        # P·title applies.  With implicit dereferencing and implicit
        # union selectors, several prefixes reach each title-bearing
        # position (e.g. both `.sections[0]` — the oid — and
        # `.sections[0]->` — its value).
        result = store.query("my_article PATH_p.title")
        assert all(isinstance(p, Path) for p in result)
        rendered = {str(p) for p in result}
        assert "->" in rendered                       # the article tuple
        assert "->.sections[0]->" in rendered
        assert "->.sections[1]->" in rendered
        # every returned path must actually lead to a title
        article = store.instance.root("my_article")
        for path in result:
            reached = path.apply(article, store.instance)
            from repro.paths.steps import apply_step, AttrStep
            from repro.oodb import Oid
            if isinstance(reached, Oid):
                reached = store.instance.deref(reached)
            assert apply_step(reached, AttrStep("title"),
                              store.instance) is not None


class TestQ4:
    """Q4: structural difference between two versions."""

    def test_identical_versions_differ_nowhere(self, store):
        result = store.query(
            "my_article PATH_p - my_old_article PATH_p")
        assert len(result) == 0

    def test_modified_version_shows_new_paths(self):
        s = DocumentStore(ARTICLE_DTD)
        s.load_text(SAMPLE_ARTICLE, name="my_old_article")
        extended = SAMPLE_ARTICLE.replace(
            "<acknowl>",
            "<section><title> A brand new section\n"
            "<body><paragr> Fresh content here.\n</body></section>\n"
            "<acknowl>")
        s.load_text(extended, name="my_article")
        diff = s.query("my_article PATH_p - my_old_article PATH_p")
        rendered = {str(p) for p in diff}
        assert any(".sections[2]" in p for p in rendered)
        # untouched paths are not in the difference
        assert "->.title" not in rendered

    def test_intersection_and_union(self, store):
        both = store.query(
            "my_article PATH_p intersect my_old_article PATH_p")
        either = store.query(
            "my_article PATH_p union my_old_article PATH_p")
        assert len(both) == len(either)  # identical versions


class TestQ5:
    """Q5: attributes whose value contains "final"."""

    QUERY = """
        select name(ATT_a)
        from my_article PATH_p.ATT_a(val)
        where val contains ("final")
    """

    def test_finds_status(self, store):
        result = store.query(self.QUERY)
        assert set(result) == {"status"}

    def test_grep_style_search(self, store):
        # the "Unix grep inside an OODBMS" reading: search every
        # attribute for a content word
        result = store.query("""
            select name(ATT_a)
            from my_article PATH_p.ATT_a(val)
            where val contains ("Introduction")
        """)
        assert "text" in set(result)


class TestQ6:
    """Q6: letters where the sender precedes the recipient."""

    @pytest.fixture(scope="class")
    def letters_engine(self):
        from repro.calculus.evaluator import EvalContext
        from repro.corpus.letters import build_letters_database
        from repro.o2sql import QueryEngine
        return QueryEngine(build_letters_database())

    QUERY = """
        select letter
        from letter in Letters, letter[i].from, letter[j].to
        where i < j
    """

    def test_sender_first_letters(self, letters_engine):
        result = letters_engine.run(self.QUERY)
        assert len(result) == 3
        for letter in result:
            assert letter.marker == "a1"
            assert letter.marked_value.attribute_names[0] == "from"

    def test_recipient_first_complement(self, letters_engine):
        result = letters_engine.run("""
            select letter
            from letter in Letters, letter[i].from, letter[j].to
            where j < i
        """)
        assert len(result) == 2
        for letter in result:
            assert letter.marker == "a2"

    def test_projection_through_markers(self, letters_engine):
        # Important Omissions: project on `to` without knowing markers
        result = letters_engine.run(
            "select x from l in Letters, l.to(x)")
        assert "INRIA" in set(result)


class TestUnionTypeRules:
    """Section 4.2's named-instance vs variable distinction."""

    def test_named_instance_wrong_branch_raises(self, store):
        # my_article's sections are a1-marked; register one as a name
        article = store.instance.root("my_article")
        section = store.instance.deref(article).get("sections")[0]
        store.define_name("my_section", section)
        marker = store.instance.deref(section).marker
        assert marker == "a1"
        with pytest.raises(WrongBranchAccess):
            store.query("my_section.subsectns")

    def test_variable_wrong_branch_is_false(self, store):
        # the same access through a variable silently skips a1 sections
        result = store.query("""
            select ss from a in Articles, s in a.sections,
                          ss in s.subsectns
        """)
        assert isinstance(result, SetValue)  # no error


class TestStaticChecks:
    def test_unknown_identifier_rejected(self, store):
        with pytest.raises(QueryTypeError):
            store.query("select x from x in Nonexistent_Root")

    def test_impossible_attribute_rejected(self, store):
        with pytest.raises(QueryTypeError):
            store.query(
                "select x from a in Articles, a PATH_p.zzz_ghost(x)")

    def test_check_reports_types(self, store):
        types = store.check_query(
            "select t from my_article PATH_p.title(t)")
        rendered = {str(v): str(t) for v, t in types.items()}
        assert rendered["PATH_p"] == "PATH"
        assert rendered["t"] == "Title"

    def test_explain_shows_calculus(self, store):
        text = store.explain("select t from my_article PATH_p.title(t)")
        assert "<my_article" in text
        assert "PATH_p" in text
