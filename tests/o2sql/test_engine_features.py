"""End-to-end tests for the remaining surface features: correlated
exists, element(), nested selects, set operations on subqueries, the
liberal-semantics engine, and error reporting."""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.errors import QuerySyntaxError, QueryTypeError, SafetyError
from repro.oodb import SetValue


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    for tree in generate_corpus(8, seed=13):
        s.load_tree(tree)
    return s


class TestCorrelatedExists:
    def test_exists_filters(self, store):
        with_sgml = store.query("""
            select a from a in Articles
            where exists (select s from s in a.sections
                          where s.title contains ("SGML"))
        """)
        # cross-check against the flat join (exists dedups articles)
        flat = store.query("""
            select a from a in Articles, s in a.sections
            where s.title contains ("SGML")
        """)
        assert with_sgml == flat

    def test_not_exists(self, store):
        without = store.query("""
            select a from a in Articles
            where not exists (select s from s in a.sections
                              where s.title contains ("SGML"))
        """)
        total = len(store.instance.root("Articles"))
        with_sgml = store.query("""
            select a from a in Articles
            where exists (select s from s in a.sections
                          where s.title contains ("SGML"))
        """)
        assert len(without) + len(with_sgml) == total

    def test_exists_with_path_item(self, store):
        result = store.query("""
            select a from a in Articles
            where exists (select v from a PATH_p.status(v)
                          where v = "final")
        """)
        expected = store.query(
            "select a from a in Articles where a.status = 'final'")
        assert result == expected


class TestNestedQueries:
    def test_element_extracts_singleton(self, store):
        result = store.query("element (select a from a in Articles "
                             "where a = my_article)")
        assert len(result) == 1

    def test_subquery_in_where_membership(self, store):
        result = store.query("""
            select a from a in Articles
            where a in (select b from b in Articles
                        where b.status = "final")
        """)
        expected = store.query(
            "select a from a in Articles where a.status = 'final'")
        assert result == expected

    def test_count_of_subquery(self, store):
        result = store.query(
            "count (select a from a in Articles)")
        assert list(result)[0] == len(store.instance.root("Articles"))

    def test_difference_of_selects(self, store):
        finals = "select a from a in Articles where a.status = 'final'"
        all_articles = "select a from a in Articles"
        drafts = store.query(f"({all_articles}) - ({finals})")
        expected = store.query(
            "select a from a in Articles where a.status = 'draft'")
        assert drafts == expected


class TestErrors:
    def test_syntax_error_reported_with_position(self, store):
        with pytest.raises(QuerySyntaxError):
            store.query("select from nothing")

    def test_type_error_for_impossible_attribute(self, store):
        with pytest.raises(QueryTypeError):
            store.query("select x from a in Articles, "
                        "a PATH_p.not_an_attr(x)")

    def test_unknown_function_is_type_error(self, store):
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            store.query("select frobnicate(a) from a in Articles")

    def test_unsafe_query_rejected(self, store):
        with pytest.raises((SafetyError, QueryTypeError)):
            store.query("select a from a in Articles where x = y")


class TestSemanticsOptions:
    def test_liberal_engine_consistent_on_acyclic_data(self):
        restricted = DocumentStore(ARTICLE_DTD,
                                   path_semantics="restricted")
        liberal = DocumentStore(ARTICLE_DTD, path_semantics="liberal")
        for s in (restricted, liberal):
            s.load_text(SAMPLE_ARTICLE, name="my_article")
        query = "select t from my_article PATH_p.title(t)"
        assert restricted.query(query) == liberal.query(query)

    def test_type_check_can_be_disabled(self, store):
        from repro.o2sql import QueryEngine
        loose = QueryEngine(store.instance, type_check=False)
        # an impossible path just yields nothing instead of raising
        result = loose.run(
            "select x from a in Articles, a PATH_p.not_an_attr(x)")
        assert result == SetValue()
