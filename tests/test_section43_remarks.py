"""Fidelity tests for the five numbered remarks of Section 4.3.

The paper annotates query Q3 with five observations about path
expressions; each gets a direct test here.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.paths import Path, path_length, path_project


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    return s


class TestRemark1DotDotSugar:
    """ '1. We may allow the syntactical sugared form
    from my_article .. title(t)' """

    def test_sugar_equals_explicit_path_variable(self, store):
        explicit = store.query(
            "select t from my_article PATH_p.title(t)")
        sugared = store.query(
            "select t from my_article .. .title(t)")
        assert explicit == sugared


class TestRemark2UnionTypedResults:
    """ '2. the presence of path variables will often imply that the
    corresponding data variable is of a union type' """

    def test_inferred_type_is_alpha_union(self, store):
        types = store.check_query(
            "select x from my_article PATH_p(x).title")
        rendered = {str(v): t for v, t in types.items()}
        inferred = rendered["x"]
        from repro.oodb.types import UnionType
        assert isinstance(inferred, UnionType)
        assert all(m.startswith("alpha") for m in inferred.markers)


class TestRemark3PathsOutsideFrom:
    """ '3. Path variables may be used outside a from clause ...
    my_article PATH_p.title is a query that returns the set of paths
    to a title field.' """

    def test_bare_path_expression_returns_paths(self, store):
        result = store.query("my_article PATH_p.title")
        assert len(result) > 0
        assert all(isinstance(p, Path) for p in result)


class TestRemark4ListFunctions:
    """ '4. Paths is a data type that comes equipped with functions ...
    length(P) = 4 and P[0:1] = .sections[0]' """

    def test_the_paper_example_verbatim(self):
        P = Path.of("sections", 0, "subsectns", 0)
        assert str(P) == ".sections[0].subsectns[0]"
        assert path_length(P) == 4
        assert path_project(P, 0, 1) == Path.of("sections", 0)
        assert str(path_project(P, 0, 1)) == ".sections[0]"

    def test_length_usable_inside_queries(self, store):
        shallow = store.query("""
            select PATH_p from my_article PATH_p.title
            where length(PATH_p) < 2
        """)
        all_paths = store.query("my_article PATH_p.title")
        assert set(shallow) < set(all_paths)
        assert all(len(p) < 2 for p in shallow)


class TestRemark5CycleAvoidance:
    """ '5. When path variables are used ... there is always the
    possibility of cycles ... Our interpretation avoids cycles.' """

    def test_cyclic_cross_references_terminate(self):
        dtd = """
        <!DOCTYPE doc [
        <!ELEMENT doc - - (note+)>
        <!ELEMENT note - O (#PCDATA)>
        <!ATTLIST note label ID #IMPLIED
                       see IDREF #IMPLIED> ]>
        """
        s = DocumentStore(dtd)
        s.load_text(
            '<doc><note label="n1" see="n2">first'
            '<note label="n2" see="n1">second</doc>', name="my_doc")
        # notes reference each other: enumeration must terminate under
        # both semantics
        restricted = s.query("my_doc PATH_p")
        assert len(restricted) < 100
        liberal_store = DocumentStore(dtd, path_semantics="liberal")
        liberal_store.load_text(
            '<doc><note label="n1" see="n2">first'
            '<note label="n2" see="n1">second</doc>', name="my_doc")
        liberal = liberal_store.query("my_doc PATH_p")
        assert len(liberal) < 300
        assert len(liberal) > len(restricted)
