"""Roundtrip property over the corpus generator.

For any generated article: parse → load into the database →
export back to SGML text → parse again must reproduce the original
tree (structural equality), and an in-database text update must show
up in the next export.  This is footnote 1's inverse mapping exercised
against the whole space of generated documents rather than the one
Figure-2 sample.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_article, generate_corpus
from repro.sgml.instance_parser import parse_document


def roundtrip(tree):
    store = DocumentStore(ARTICLE_DTD)
    store.load_tree(tree, name="doc", validate=False)
    return store, parse_document(store.export_text("doc"), store.dtd)


class TestGeneratorRoundtrip:
    @pytest.mark.parametrize("seed", [1, 7, 99, 2026])
    def test_load_export_parse_is_identity(self, seed):
        tree = generate_article(seed)
        _, reparsed = roundtrip(tree)
        assert reparsed == tree

    @pytest.mark.parametrize("options", [
        {"sections": 1},
        {"sections": 6, "paragraphs_per_body": 3},
        {"subsection_probability_percent": 100},
        {"subsection_probability_percent": 0},
    ], ids=["minimal", "deep", "all-subsections", "no-subsections"])
    def test_roundtrip_across_generator_options(self, options):
        tree = generate_article(seed=5, **options)
        _, reparsed = roundtrip(tree)
        assert reparsed == tree

    def test_whole_corpus_roundtrips(self):
        store = DocumentStore(ARTICLE_DTD)
        trees = generate_corpus(6, seed=42)
        names = []
        for i, tree in enumerate(trees):
            names.append(f"doc{i}")
            store.load_tree(tree, name=names[-1], validate=False)
        for name, tree in zip(names, trees):
            reparsed = parse_document(store.export_text(name), store.dtd)
            assert reparsed == tree

    def test_generation_is_deterministic(self):
        assert generate_article(7) == generate_article(7)
        assert generate_article(7) != generate_article(8)


class TestUpdateThenExport:
    def test_update_text_is_visible_in_export(self):
        tree = generate_article(3)
        store = DocumentStore(ARTICLE_DTD)
        store.load_tree(tree, name="doc", validate=False)
        title_oid = next(iter(
            store.query("select t from doc PATH_p.title(t)")))
        store.update_text(title_oid, "A Replacement Title")
        exported = store.export_text("doc")
        assert "A Replacement Title" in exported
        # and the export is still a parseable, loadable document that
        # carries the edit — but no longer equals the original tree
        reparsed = parse_document(exported, store.dtd)
        assert reparsed != tree
        second = DocumentStore(ARTICLE_DTD)
        second.load_tree(reparsed, name="doc", validate=False)
        texts = {second.text(t) for t in
                 second.query("select t from doc PATH_p.title(t)")}
        assert "A Replacement Title" in texts
