"""Property-based tests: the inverted index vs the contains oracle.

For random document sets and random pattern expressions, the index's
candidate set must be a superset of the true answer (and exact for
purely positive expressions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import TextIndex, contains
from repro.text.patterns import (
    AndExpr,
    NotExpr,
    OrExpr,
    Pattern,
)

WORDS = ["sgml", "oodb", "path", "query", "union", "tuple", "schema"]

documents = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=12).map(
        " ".join),
    min_size=1, max_size=8)


def patterns(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return Pattern(draw(st.sampled_from(WORDS)))
    if kind == 1:
        return Pattern(" ".join(draw(st.lists(
            st.sampled_from(WORDS), min_size=2, max_size=3))))
    left = patterns(draw)
    right = patterns(draw)
    if kind == 2:
        return AndExpr(left, right)
    return OrExpr(left, right)


positive_expressions = st.composite(patterns)()

expressions = st.one_of(
    positive_expressions,
    st.builds(NotExpr, positive_expressions),
    st.builds(AndExpr, positive_expressions,
              st.builds(NotExpr, positive_expressions)),
)


def build(texts):
    index = TextIndex()
    for key, text in enumerate(texts):
        index.add(key, text)
    return index


class TestIndexSoundness:
    @given(documents, positive_expressions)
    @settings(max_examples=200)
    def test_positive_candidates_are_exact(self, texts, expression):
        index = build(texts)
        truth = {key for key, text in enumerate(texts)
                 if contains(text, expression)}
        candidates = index.candidates(expression)
        assert candidates is not None
        assert candidates == truth

    @given(documents, expressions)
    @settings(max_examples=200)
    def test_candidates_never_lose_answers(self, texts, expression):
        index = build(texts)
        truth = {key for key, text in enumerate(texts)
                 if contains(text, expression)}
        candidates = index.candidates(expression)
        if candidates is not None:
            assert truth <= candidates

    @given(documents, st.sampled_from(WORDS))
    @settings(max_examples=100)
    def test_word_probe_matches_scan(self, texts, word):
        index = build(texts)
        truth = {key for key, text in enumerate(texts)
                 if word in text.split()}
        assert index.keys_with_word(word) == truth
