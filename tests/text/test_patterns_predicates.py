"""Tests for pattern expressions and the contains/near predicates."""

import pytest

from repro.errors import PatternError
from repro.text import (
    AndExpr,
    NotExpr,
    OrExpr,
    Pattern,
    contains,
    near,
    parse_pattern_expr,
)
from repro.text.patterns import tokenize_words


class TestTokenizer:
    def test_punctuation_stripped(self):
        assert tokenize_words("Hello, world! (really)") == [
            "Hello", "world", "really"]

    def test_hyphen_kept(self):
        assert tokenize_words("object-oriented databases") == [
            "object-oriented", "databases"]

    def test_empty(self):
        assert tokenize_words("  ... !! ") == []


class TestPattern:
    def test_word_boundary_matching(self):
        pattern = Pattern("SGML")
        assert pattern.holds(["the", "SGML", "standard"])
        assert not pattern.holds(["the", "SGMLish", "standard"])

    def test_regex_word(self):
        pattern = Pattern("(t|T)itle")
        assert pattern.holds(["the", "Title"])
        assert pattern.holds(["a", "title"])
        assert not pattern.holds(["subtitle"])

    def test_phrase(self):
        pattern = Pattern("complex object")
        assert pattern.holds(["a", "complex", "object", "here"])
        assert not pattern.holds(["complex", "red", "object"])
        assert not pattern.holds(["object", "complex"])

    def test_phrase_at_edges(self):
        pattern = Pattern("complex object")
        assert pattern.holds(["complex", "object"])
        assert not pattern.holds(["complex"])

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern("")

    def test_match_word_on_phrase_rejected(self):
        with pytest.raises(PatternError):
            Pattern("two words").match_word("two")


class TestExpressionParsing:
    def test_q1_expression(self):
        expr = parse_pattern_expr('"SGML" and "OODBMS"')
        assert isinstance(expr, AndExpr)
        assert expr.patterns()[0].source == "SGML"
        assert expr.patterns()[1].source == "OODBMS"

    def test_or_and_precedence(self):
        expr = parse_pattern_expr('"a" or "b" and "c"')
        # and binds tighter than or
        assert isinstance(expr, OrExpr)
        assert isinstance(expr.right, AndExpr)

    def test_not(self):
        expr = parse_pattern_expr('not "draft"')
        assert isinstance(expr, NotExpr)

    def test_parentheses(self):
        expr = parse_pattern_expr('("a" or "b") and "c"')
        assert isinstance(expr, AndExpr)
        assert isinstance(expr.left, OrExpr)

    def test_single_quotes(self):
        expr = parse_pattern_expr("'final'")
        assert isinstance(expr, Pattern)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern_expr('"a" junk')

    def test_unterminated_literal_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern_expr('"unterminated')

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern_expr('("a" and "b"')


class TestContains:
    def test_q1_semantics(self):
        title = "SGML and OODBMS integration"
        assert contains(title, '"SGML" and "OODBMS"')
        assert not contains("SGML only here", '"SGML" and "OODBMS"')

    def test_plain_string_pattern(self):
        assert contains("the final version", "final")
        assert not contains("the draft version", "final")

    def test_word_not_substring(self):
        # IRS-style word matching: "final" is not inside "finality"
        assert not contains("finality of it all", "final")

    def test_phrase_q2(self):
        text = "storage of complex object structures"
        assert contains(text, "complex object")
        assert not contains("object is complex", "complex object")

    def test_regex_pattern(self):
        assert contains("The Title here", "(t|T)itle")

    def test_boolean_or_not(self):
        assert contains("it is final", '"final" or "draft"')
        assert contains("it is done", 'not "draft"')
        assert not contains("a draft", 'not "draft"')

    def test_non_string_value_is_false(self):
        # Section 5.3: atoms over wrong-branch values are false.
        assert not contains(42, "final")
        assert not contains(None, "final")

    def test_pattern_expr_object_accepted(self):
        expr = parse_pattern_expr('"a" and "b"')
        assert contains("a b", expr)

    def test_bad_pattern_type_rejected(self):
        with pytest.raises(PatternError):
            contains("text", 42)


class TestNear:
    def test_within_distance(self):
        text = "the SGML standard is near the OODB world"
        assert near(text, "SGML", "standard", 1)
        assert near(text, "SGML", "OODB", 5)
        assert not near(text, "SGML", "world", 2)

    def test_symmetric(self):
        text = "alpha beta gamma"
        assert near(text, "gamma", "alpha", 2)
        assert not near(text, "gamma", "alpha", 1)

    def test_missing_word(self):
        assert not near("nothing here", "SGML", "OODB", 10)

    def test_pattern_words(self):
        assert near("The Title of chapters", "(t|T)itle", "chapters", 2)

    def test_phrase_rejected(self):
        with pytest.raises(PatternError):
            near("x", "two words", "y", 1)

    def test_non_string_false(self):
        assert not near(3.14, "a", "b", 1)
