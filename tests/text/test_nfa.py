"""Tests for the home-grown regex engine."""

import pytest

from repro.errors import PatternError
from repro.text.nfa import compile_pattern_text, parse_regex


def matches(pattern: str, text: str) -> bool:
    return compile_pattern_text(pattern).matches(text)


def searches(pattern: str, text: str) -> bool:
    return compile_pattern_text(pattern).search(text)


class TestFullMatch:
    def test_literal(self):
        assert matches("SGML", "SGML")
        assert not matches("SGML", "SGMLish")
        assert not matches("SGML", "sgml")

    def test_alternation(self):
        # the paper's example pattern: "(t|T)itle"
        assert matches("(t|T)itle", "title")
        assert matches("(t|T)itle", "Title")
        assert not matches("(t|T)itle", "TITLE")

    def test_kleene_star(self):
        assert matches("ab*c", "ac")
        assert matches("ab*c", "abbbc")
        assert not matches("ab*c", "abbb")

    def test_plus(self):
        assert not matches("ab+c", "ac")
        assert matches("ab+c", "abc")
        assert matches("ab+c", "abbc")

    def test_optional(self):
        assert matches("colou?r", "color")
        assert matches("colou?r", "colour")
        assert not matches("colou?r", "colouur")

    def test_any_char(self):
        assert matches("a.c", "abc")
        assert matches("a.c", "a7c")
        assert not matches("a.c", "ac")

    def test_char_class(self):
        assert matches("[abc]+", "cab")
        assert not matches("[abc]+", "cad")
        assert matches("[a-z]+[0-9]", "version3")
        assert matches("[^0-9]+", "letters")
        assert not matches("[^0-9]+", "x1")

    def test_escape(self):
        assert matches(r"a\*b", "a*b")
        assert not matches(r"a\*b", "ab")
        assert matches(r"\(x\)", "(x)")

    def test_empty_pattern_matches_empty(self):
        assert matches("", "")
        assert not matches("", "x")

    def test_nested_groups(self):
        assert matches("(ab(c|d))+", "abcabd")
        assert not matches("(ab(c|d))+", "abe")

    def test_alternation_of_words(self):
        assert matches("final|draft", "final")
        assert matches("final|draft", "draft")
        assert not matches("final|draft", "finaldraft")


class TestSearch:
    def test_substring(self):
        assert searches("SGML", "the SGML standard")
        assert not searches("XML", "the SGML standard")

    def test_search_with_pattern(self):
        assert searches("(t|T)itle", "Subtitles included")

    def test_empty_pattern_searches_anywhere(self):
        assert searches("", "anything")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "(unclosed", "unopened)", "*leading", "a|*", "[unclosed",
        "a\\", "[]", "[z-a]",
    ])
    def test_malformed_patterns_rejected(self, bad):
        with pytest.raises(PatternError):
            parse_regex(bad)

    def test_round_trip_through_str(self):
        for source in ["(t|T)itle", "ab*c", "[a-z]+", "a.c"]:
            node = parse_regex(source)
            again = parse_regex(str(node))
            probe_texts = ["title", "Title", "ac", "abbc", "xyz", "a7c"]
            for text in probe_texts:
                assert (compile_pattern_text(source).matches(text)
                        == compile_pattern_text(str(again)).matches(text))
