"""Tests for the positional inverted index."""

import pytest

from repro.text import TextIndex, parse_pattern_expr
from repro.text.patterns import Pattern


def build_index() -> TextIndex:
    index = TextIndex()
    index.add("d1", "the SGML standard for structured documents")
    index.add("d2", "OODBMS support for complex object storage")
    index.add("d3", "SGML meets OODBMS: complex documents")
    index.add("d4", "an unrelated note about titles and Titles")
    return index


class TestBasicProbes:
    def test_word_probe(self):
        index = build_index()
        assert index.keys_with_word("SGML") == {"d1", "d3"}
        assert index.keys_with_word("OODBMS") == {"d2", "d3"}
        assert index.keys_with_word("ghost") == set()

    def test_pattern_probe_scans_vocabulary(self):
        index = build_index()
        assert index.keys_matching("(t|T)itles") == {"d4"}

    def test_phrase_probe(self):
        index = build_index()
        assert index.keys_for_pattern(Pattern("complex object")) == {"d2"}
        assert index.keys_for_pattern(Pattern("complex documents")) == {"d3"}
        # words present but not adjacent:
        assert index.keys_for_pattern(Pattern("SGML OODBMS")) == set()

    def test_stats(self):
        index = build_index()
        assert index.document_count == 4
        assert index.vocabulary_size > 10

    def test_incremental_add_same_key(self):
        index = TextIndex()
        index.add("d", "first part")
        index.add("d", "second part")
        assert index.keys_with_word("first") == {"d"}
        assert index.keys_with_word("second") == {"d"}
        # incremental adds concatenate the token stream, so a phrase may
        # span the boundary — documented behaviour
        assert index.keys_for_pattern(Pattern("part second")) == {"d"}


class TestRemoveReplace:
    def test_remove_drops_all_postings(self):
        index = build_index()
        removed = index.remove("d3")
        assert removed > 0
        assert index.document_count == 3
        assert index.keys_with_word("SGML") == {"d1"}
        assert index.keys_with_word("OODBMS") == {"d2"}
        # a token unique to d3 disappears from the vocabulary entirely
        assert "meets" not in set(index.vocabulary())

    def test_remove_unknown_key_is_a_noop(self):
        index = build_index()
        vocab_before = index.vocabulary_size
        assert index.remove("ghost") == 0
        assert index.document_count == 4
        assert index.vocabulary_size == vocab_before

    def test_replace_reflects_only_new_text(self):
        index = build_index()
        index.replace("d1", "a fresh revision about XML")
        assert index.keys_with_word("SGML") == {"d3"}
        assert index.keys_with_word("XML") == {"d1"}
        # positions restart at zero, so phrases in the new text match
        assert index.keys_for_pattern(Pattern("fresh revision")) == {"d1"}
        assert index.document_count == 4

    def test_replace_counts_in_metrics(self):
        from repro.observe import MetricsRegistry
        index = build_index()
        index.metrics = MetricsRegistry()
        index.replace("d2", "new words")
        index.remove("d4")
        counters = index.metrics.snapshot()["counters"]
        assert counters["text.reindexed"] == 1
        assert counters["text.removals"] == 2  # one inside replace


class TestSessionIndexMaintenance:
    """Regression: ``update_text`` must keep a built index current.

    Before the fix, the index kept the *old* tokens for the edited
    object (and its ancestors), so index-backed ``contains`` queries
    returned stale results after an in-database edit.
    """

    @pytest.fixture()
    def store(self):
        from repro import DocumentStore
        from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
        store = DocumentStore(ARTICLE_DTD, backend="algebra")
        store.load_text(SAMPLE_ARTICLE, name="my_article")
        store.build_text_index()
        return store

    def edit_first_title(self, store, new_text):
        title_oid = next(iter(store.query(
            "select s.title from a in Articles, s in a.sections")))
        store.update_text(title_oid, new_text)
        return title_oid

    def test_edited_object_is_reindexed(self, store):
        oid = self.edit_first_title(store, "Fresh Zanzibar Heading")
        assert oid in store.text_index.keys_with_word("Zanzibar")

    def test_contains_query_sees_the_edit(self, store):
        query = ('select s.title from a in Articles, s in a.sections '
                 'where s.title contains ("Zanzibar")')
        assert len(store.query(query)) == 0
        self.edit_first_title(store, "Zanzibar Section")
        hits = store.query(query)
        assert len(hits) == 1
        assert store.text(next(iter(hits))) == "Zanzibar Section"

    def test_old_tokens_no_longer_match(self, store):
        query = ('select s.title from a in Articles, s in a.sections '
                 'where s.title contains ("{word}")')
        old_title = store.text(next(iter(store.query(
            "select s.title from a in Articles, s in a.sections"))))
        old_word = old_title.split()[0]
        assert len(store.query(query.format(word=old_word))) > 0
        self.edit_first_title(store, "Completely Different")
        assert len(store.query(query.format(word=old_word))) == 0

    def test_ancestors_are_reindexed_too(self, store):
        # the article's own text embeds every descendant's character
        # data, so an edit deep in the tree must be visible at the root
        query = ('select a from a in Articles '
                 'where a contains ("Zanzibar")')
        assert len(store.query(query)) == 0
        self.edit_first_title(store, "Zanzibar Section")
        assert len(store.query(query)) == 1


class TestRemoveTouchesOwnTokensOnly:
    """Regression: ``remove`` must not walk the whole vocabulary.

    Before the fix, every removal filtered every posting list in the
    index, so an in-database edit (``update_text`` → ``replace``) cost
    O(vocabulary) regardless of the edited text.  The reverse map makes
    the cost a function of the removed document alone —
    ``text.remove_postings_touched`` pins that.
    """

    def test_remove_touches_exactly_the_keys_tokens(self):
        from repro.observe import MetricsRegistry
        index = TextIndex()
        index.add("mine", "alpha beta gamma alpha")
        # a large unrelated vocabulary the removal must never visit
        for i in range(50):
            index.add(f"other{i}", f"unrelated{i} filler{i} noise{i}")
        index.metrics = MetricsRegistry()
        index.remove("mine")
        counters = index.metrics.snapshot()["counters"]
        # three distinct tokens in "mine" — not 153
        assert counters["text.remove_postings_touched"] == 3
        assert index.keys_with_word("unrelated7") == {"other7"}
        assert "alpha" not in set(index.vocabulary())

    def test_update_text_cost_is_independent_of_corpus_size(self):
        from repro import DocumentStore
        from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
        from repro.corpus.generator import generate_corpus

        def edit_cost(extra_articles: int) -> int:
            store = DocumentStore(ARTICLE_DTD, backend="algebra")
            store.load_text(SAMPLE_ARTICLE, name="my_article")
            for tree in generate_corpus(extra_articles, seed=7):
                store.load_tree(tree, validate=False)
            store.build_text_index()
            store.enable_metrics()
            store.reset_metrics()
            title_oid = next(iter(store.query(
                "select s.title from a in Articles, s in a.sections "
                'where a = my_article')))
            store.update_text(title_oid, "Edited Heading")
            counters = store.metrics()["counters"]
            return counters["text.remove_postings_touched"]

        small, large = edit_cost(0), edit_cost(25)
        # the same edit touches the same postings no matter how many
        # unrelated articles the index holds
        assert small == large
        assert small > 0

    def test_interleaved_adds_then_remove(self):
        index = TextIndex()
        index.add("d", "one two")
        index.add("d", "two three")
        index.add("e", "two")
        assert index.remove("d") == 4
        assert index.keys_with_word("two") == {"e"}
        assert index.keys_with_word("one") == set()
        assert index.keys_with_word("three") == set()


class TestMatcherCache:
    """Compiled NFA matchers are memoized across probes."""

    def test_repeated_pattern_probe_compiles_once(self):
        from repro.text.nfa import clear_matcher_cache, matcher_cache_info
        index = build_index()
        clear_matcher_cache()
        assert index.keys_matching("(t|T)itles") == {"d4"}
        first = matcher_cache_info()
        assert index.keys_matching("(t|T)itles") == {"d4"}
        second = matcher_cache_info()
        assert first["misses"] == second["misses"] == 1
        assert second["hits"] == first["hits"] + 1

    def test_phrase_patterns_share_word_matchers(self):
        from repro.text.nfa import clear_matcher_cache, matcher_cache_info
        clear_matcher_cache()
        Pattern("complex object")
        baseline = matcher_cache_info()["misses"]
        # re-parsing the same pattern text (one Pattern per query run)
        # reuses both compiled word matchers
        Pattern("complex object")
        assert matcher_cache_info()["misses"] == baseline

    def test_cache_is_bounded(self):
        from repro.text.nfa import (
            clear_matcher_cache,
            matcher_cache_info,
        )
        clear_matcher_cache()
        capacity = matcher_cache_info()["capacity"]
        for i in range(capacity + 20):
            Pattern(f"(w|W)ord{i}")
        info = matcher_cache_info()
        assert info["size"] <= capacity

    def test_cached_matcher_still_matches(self):
        from repro.text.nfa import cached_matcher, clear_matcher_cache
        clear_matcher_cache()
        for _ in range(2):
            matcher = cached_matcher("ab+a")
            assert matcher.matches("abba")
            assert not matcher.matches("aa")


class TestCandidates:
    def test_and_intersects(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" and "OODBMS"')
        assert index.candidates(expr) == {"d3"}

    def test_or_unions(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" or "OODBMS"')
        assert index.candidates(expr) == {"d1", "d2", "d3"}

    def test_not_gives_none(self):
        index = build_index()
        assert index.candidates(parse_pattern_expr('not "SGML"')) is None

    def test_and_with_not_keeps_positive_side(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" and not "OODBMS"')
        assert index.candidates(expr) == {"d1", "d3"}  # superset is fine

    def test_or_with_not_gives_none(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" or not "OODBMS"')
        assert index.candidates(expr) is None

    def test_candidates_agree_with_contains(self):
        from repro.text import contains
        index = build_index()
        documents = {
            "d1": "the SGML standard for structured documents",
            "d2": "OODBMS support for complex object storage",
            "d3": "SGML meets OODBMS: complex documents",
            "d4": "an unrelated note about titles and Titles",
        }
        for source in ['"SGML" and "OODBMS"', '"SGML" or "OODBMS"',
                       '"complex object"', '"(t|T)itles"']:
            expr = parse_pattern_expr(source)
            truth = {key for key, text in documents.items()
                     if contains(text, expr)}
            candidate_set = index.candidates(expr)
            assert candidate_set is not None
            assert truth <= candidate_set, source
