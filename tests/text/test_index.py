"""Tests for the positional inverted index."""

from repro.text import TextIndex, parse_pattern_expr
from repro.text.patterns import Pattern


def build_index() -> TextIndex:
    index = TextIndex()
    index.add("d1", "the SGML standard for structured documents")
    index.add("d2", "OODBMS support for complex object storage")
    index.add("d3", "SGML meets OODBMS: complex documents")
    index.add("d4", "an unrelated note about titles and Titles")
    return index


class TestBasicProbes:
    def test_word_probe(self):
        index = build_index()
        assert index.keys_with_word("SGML") == {"d1", "d3"}
        assert index.keys_with_word("OODBMS") == {"d2", "d3"}
        assert index.keys_with_word("ghost") == set()

    def test_pattern_probe_scans_vocabulary(self):
        index = build_index()
        assert index.keys_matching("(t|T)itles") == {"d4"}

    def test_phrase_probe(self):
        index = build_index()
        assert index.keys_for_pattern(Pattern("complex object")) == {"d2"}
        assert index.keys_for_pattern(Pattern("complex documents")) == {"d3"}
        # words present but not adjacent:
        assert index.keys_for_pattern(Pattern("SGML OODBMS")) == set()

    def test_stats(self):
        index = build_index()
        assert index.document_count == 4
        assert index.vocabulary_size > 10

    def test_incremental_add_same_key(self):
        index = TextIndex()
        index.add("d", "first part")
        index.add("d", "second part")
        assert index.keys_with_word("first") == {"d"}
        assert index.keys_with_word("second") == {"d"}
        # incremental adds concatenate the token stream, so a phrase may
        # span the boundary — documented behaviour
        assert index.keys_for_pattern(Pattern("part second")) == {"d"}


class TestCandidates:
    def test_and_intersects(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" and "OODBMS"')
        assert index.candidates(expr) == {"d3"}

    def test_or_unions(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" or "OODBMS"')
        assert index.candidates(expr) == {"d1", "d2", "d3"}

    def test_not_gives_none(self):
        index = build_index()
        assert index.candidates(parse_pattern_expr('not "SGML"')) is None

    def test_and_with_not_keeps_positive_side(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" and not "OODBMS"')
        assert index.candidates(expr) == {"d1", "d3"}  # superset is fine

    def test_or_with_not_gives_none(self):
        index = build_index()
        expr = parse_pattern_expr('"SGML" or not "OODBMS"')
        assert index.candidates(expr) is None

    def test_candidates_agree_with_contains(self):
        from repro.text import contains
        index = build_index()
        documents = {
            "d1": "the SGML standard for structured documents",
            "d2": "OODBMS support for complex object storage",
            "d3": "SGML meets OODBMS: complex documents",
            "d4": "an unrelated note about titles and Titles",
        }
        for source in ['"SGML" and "OODBMS"', '"SGML" or "OODBMS"',
                       '"complex object"', '"(t|T)itles"']:
            expr = parse_pattern_expr(source)
            truth = {key for key, text in documents.items()
                     if contains(text, expr)}
            candidate_set = index.candidates(expr)
            assert candidate_set is not None
            assert truth <= candidate_set, source
