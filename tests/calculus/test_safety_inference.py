"""Tests for range-restriction analysis and type inference."""

import pytest

from repro.calculus import (
    And,
    AttVar,
    Bind,
    Const,
    DataVar,
    Eq,
    Exists,
    Forall,
    FunTerm,
    Implies,
    In,
    Index,
    Name,
    Not,
    Or,
    PathAtom,
    PathTerm,
    PathVar,
    Pred,
    Query,
    Sel,
    SetBind,
    check_safety,
    infer_types,
)
from repro.calculus.inference import ATT_SORT, PATH_SORT
from repro.corpus.knuth import knuth_schema
from repro.corpus.letters import letters_schema
from repro.errors import QueryTypeError, SafetyError
from repro.oodb import STRING, c, set_of, tuple_of
from repro.oodb.types import INTEGER, UnionType

X, Y, I, J = (DataVar(n) for n in "XYIJ")
P, Q = PathVar("P"), PathVar("Q")
A = AttVar("A")


def knuth_atom(*components):
    return PathAtom(Name("Knuth_Books"), PathTerm(list(components)))


class TestSafety:
    def test_paper_range_restriction_example(self):
        # <Knuth_Books P ·volumes[2] Q ·chapters[J](X) ·A(Y)>
        #   ∧ Y = "Introduction"
        query = Query([X], Exists([P, Q, J, A, Y], And(
            knuth_atom(P, Sel("volumes"), Index(1), Q,
                       Sel("chapters"), Index(J), Bind(X), Sel(A),
                       Bind(Y)),
            Eq(Y, Const("Introduction")))))
        check_safety(query)  # must not raise

    def test_unrestricted_head_rejected(self):
        query = Query([X], Not(Eq(X, Const(1))))
        with pytest.raises(SafetyError):
            check_safety(query)

    def test_comparison_binds_nothing(self):
        query = Query([X], Pred("lt", [X, Const(3)]))
        with pytest.raises(SafetyError):
            check_safety(query)

    def test_equality_with_ground_side_binds(self):
        check_safety(Query([X], Eq(X, Const(5))))
        check_safety(Query([X], Eq(Const(5), X)))

    def test_membership_binds_element(self):
        from repro.oodb import SetValue
        check_safety(Query([X], In(X, Const(SetValue([1, 2])))))

    def test_membership_with_unbound_collection_rejected(self):
        query = Query([X, Y], In(X, Y))
        with pytest.raises(SafetyError):
            check_safety(query)

    def test_or_branches_must_agree(self):
        good = Query([X], Or(Eq(X, Const(1)), Eq(X, Const(2))))
        check_safety(good)
        bad = Query([X], Or(Eq(X, Const(1)),
                            Pred("lt", [Const(1), Const(2)])))
        with pytest.raises(SafetyError):
            check_safety(bad)

    def test_negation_needs_bound_vars(self):
        good = Query([P], And(
            PathAtom(Name("Doc"), PathTerm([P])),
            Not(PathAtom(Name("Old_Doc"), PathTerm([P])))))
        check_safety(good)
        bad = Query([P], Not(PathAtom(Name("Old_Doc"), PathTerm([P]))))
        with pytest.raises(SafetyError):
            check_safety(bad)

    def test_conjunct_ordering_is_found(self):
        # The binder appears after its consumer in source order.
        query = Query([X], Exists([P], And(
            Pred("contains", [X, Const("final")]),
            knuth_atom(P, Sel("status"), Bind(X)))))
        check_safety(query)

    def test_forall_requires_implication(self):
        query = Query([X], And(
            Eq(X, Const(1)),
            Forall([Y], Eq(Y, Const(2)))))
        with pytest.raises(SafetyError):
            check_safety(query)

    def test_forall_with_implication_ok(self):
        query = Query([X], And(
            Eq(X, Const(1)),
            Forall([P, Y], Implies(
                knuth_atom(P, Sel("status"), Bind(Y)),
                Pred("neq", [Y, Const("deleted")])))))
        check_safety(query)

    def test_forall_variable_not_restricted_by_antecedent_rejected(self):
        # Z is universally quantified but the antecedent never binds it.
        Z = DataVar("Z")
        query = Query([X], And(
            Eq(X, Const(1)),
            Forall([P, Y, Z], Implies(
                knuth_atom(P, Sel("status"), Bind(Y)),
                Pred("neq", [Z, Const("x")])))))
        with pytest.raises(SafetyError):
            check_safety(query)

    def test_path_root_must_be_bound(self):
        # the root of a path predicate is a data variable bound later
        query = Query([Y], Exists([X, P], And(
            PathAtom(X, PathTerm([Sel("title"), Bind(Y)])),
            knuth_atom(P, Sel("sections"), SetBind(X)))))
        check_safety(query)  # reorderable

    def test_totally_stuck_conjunction(self):
        query = Query([X, Y], And(
            PathAtom(X, PathTerm([Bind(Y)])),
            PathAtom(Y, PathTerm([Bind(X)]))))
        with pytest.raises(SafetyError):
            check_safety(query)


class TestInference:
    def test_simple_root_navigation(self):
        schema = knuth_schema()
        query = Query([X], Exists([P], knuth_atom(
            P, Sel("status"), Bind(X))))
        types = infer_types(query, schema)
        assert types[X] == STRING

    def test_path_and_att_sorts(self):
        schema = knuth_schema()
        query = Query([A], Exists([P, X], And(
            knuth_atom(P, Sel(A), Bind(X)),
            Eq(X, Const("Jo")))))
        types = infer_types(query, schema)
        assert types[A] == ATT_SORT
        assert types[P] == PATH_SORT

    def test_union_of_candidates_with_system_markers(self):
        # X bound through P ·title: volumes, chapters and sections all
        # carry a title — the paper's α-marked union.
        schema = knuth_schema()
        query = Query([X], Exists([P], knuth_atom(
            P, Bind(X), Sel("title"))))
        types = infer_types(query, schema)
        inferred = types[X]
        assert isinstance(inferred, UnionType)
        assert all(m.startswith("alpha") for m in inferred.markers)
        assert len(inferred) >= 3

    def test_single_candidate_is_not_wrapped(self):
        schema = letters_schema()
        query = Query([X], Exists([I], PathAtom(
            Name("Letters"),
            PathTerm([Index(I), Sel("content"), Bind(X)]))))
        types = infer_types(query, schema)
        assert types[X] == STRING

    def test_index_variable_is_integer(self):
        schema = letters_schema()
        query = Query([I], Exists([X], PathAtom(
            Name("Letters"),
            PathTerm([Index(I), Sel("to"), Bind(X)]))))
        types = infer_types(query, schema)
        assert types[I] == INTEGER

    def test_static_type_error_on_impossible_path(self):
        # Section 5.3: no alternative carries the attribute -> type error.
        schema = letters_schema()
        query = Query([X], Exists([I], PathAtom(
            Name("Letters"),
            PathTerm([Index(I), Sel("ghost_attribute"), Bind(X)]))))
        with pytest.raises(QueryTypeError):
            infer_types(query, schema)

    def test_implicit_selector_typing(self):
        # ·to on the Letters union: both branches carry it.
        schema = letters_schema()
        query = Query([X], Exists([I], PathAtom(
            Name("Letters"),
            PathTerm([Index(I), Sel("to"), Bind(X)]))))
        types = infer_types(query, schema)
        assert types[X] == STRING

    def test_constant_equality_types(self):
        schema = knuth_schema()
        query = Query([X], Eq(X, Const(42)))
        types = infer_types(query, schema)
        assert types[X] == INTEGER

    def test_heterogeneous_list_view_typing(self):
        # Letters[I](Y)[J] ·to — J indexes the tuple as a list.
        schema = letters_schema()
        query = Query([Y], Exists([I, J, A], PathAtom(
            Name("Letters"),
            PathTerm([Index(I), Sel(A), Bind(Y), Index(J),
                      Sel("to")]))))
        types = infer_types(query, schema)
        assert types[J] == INTEGER
        assert isinstance(types[Y], UnionType) or types[Y] is not None

    def test_variable_without_source_fails(self):
        schema = knuth_schema()
        query = Query([X], Pred("contains", [X, Const("x")]))
        with pytest.raises(QueryTypeError):
            infer_types(query, schema)

    def test_deref_typing_through_classes(self):
        schema = knuth_schema()
        from repro.calculus import Deref
        query = Query([X], PathAtom(
            Name("Knuth_Books"),
            PathTerm([Sel("volumes"), Index(0), Deref(),
                      Sel("status"), Bind(X)])))
        types = infer_types(query, schema)
        assert types[X] == STRING
