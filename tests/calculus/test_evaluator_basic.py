"""Unit tests for the calculus evaluator's core machinery."""

import pytest

from repro.calculus import (
    And,
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    Eq,
    EvalContext,
    Exists,
    Forall,
    FunTerm,
    Implies,
    In,
    Index,
    ListTerm,
    Name,
    Not,
    Or,
    PathApply,
    PathAtom,
    PathTerm,
    PathVar,
    Pred,
    Query,
    Sel,
    SetBind,
    SetTerm,
    Subset,
    TupleTerm,
    evaluate_query,
)
from repro.calculus.evaluator import eval_term, satisfy
from repro.errors import EvaluationError, QueryError, SafetyError
from repro.oodb import (
    Instance,
    ListValue,
    STRING,
    SetValue,
    TupleValue,
    c,
    schema_from_classes,
    set_of,
    tuple_of,
)
from repro.paths import Path

X, Y, Z, I, J = (DataVar(n) for n in "XYZIJ")
P, Q = PathVar("P"), PathVar("Q")
A = AttVar("A")


@pytest.fixture(scope="module")
def ctx():
    from repro.oodb import list_of
    schema = schema_from_classes(
        {"Item": tuple_of(("label", STRING), ("tags", set_of(STRING)))},
        roots={"Items": list_of(c("Item")),
               "Box": tuple_of(("name", STRING))})
    db = Instance(schema)
    items = [
        db.new_object("Item", TupleValue([
            ("label", f"item-{i}"),
            ("tags", SetValue([f"t{i}", "common"]))]))
        for i in range(3)]
    db.set_root("Items", ListValue(items))
    db.set_root("Box", TupleValue([("name", "the box")]))
    return EvalContext(db)


class TestTermEvaluation:
    def test_constants_and_names(self, ctx):
        assert eval_term(Const(5), {}, ctx) == 5
        assert eval_term(Name("Box"), {}, ctx) == TupleValue([
            ("name", "the box")])

    def test_constructed_terms(self, ctx):
        term = TupleTerm([("a", Const(1)), ("b", ListTerm([Const(2)]))])
        assert eval_term(term, {}, ctx) == TupleValue([
            ("a", 1), ("b", ListValue([2]))])
        assert eval_term(SetTerm([Const(1), Const(1)]), {}, ctx) == \
            SetValue([1])

    def test_unbound_variable_fails(self, ctx):
        with pytest.raises(EvaluationError):
            eval_term(X, {}, ctx)

    def test_bound_variable(self, ctx):
        assert eval_term(X, {X: 42}, ctx) == 42

    def test_fun_term(self, ctx):
        term = FunTerm("length", [Const(Path.of("a", 0))])
        assert eval_term(term, {}, ctx) == 2

    def test_ground_path_apply(self, ctx):
        term = PathApply(Name("Box"), PathTerm([Sel("name")]))
        assert eval_term(term, {}, ctx) == "the box"

    def test_path_apply_unbound_path_var_fails(self, ctx):
        term = PathApply(Name("Box"), PathTerm([P]))
        with pytest.raises(EvaluationError):
            eval_term(term, {}, ctx)


class TestPathAtomBinding:
    def test_bind_data_variable(self, ctx):
        atom = PathAtom(Name("Box"), PathTerm([Sel("name"), Bind(X)]))
        bindings = list(satisfy(atom, {}, ctx))
        assert len(bindings) == 1
        assert bindings[0][X] == "the box"

    def test_index_variable_enumerates(self, ctx):
        atom = PathAtom(Name("Items"), PathTerm([Index(I), Bind(X)]))
        bindings = list(satisfy(atom, {}, ctx))
        assert [b[I] for b in bindings] == [0, 1, 2]

    def test_deref_and_sel(self, ctx):
        atom = PathAtom(Name("Items"), PathTerm([
            Index(0), Deref(), Sel("label"), Bind(X)]))
        bindings = list(satisfy(atom, {}, ctx))
        assert bindings[0][X] == "item-0"

    def test_implicit_deref_on_sel(self, ctx):
        # Selection on an oid silently dereferences (paper's X·title).
        atom = PathAtom(Name("Items"), PathTerm([
            Index(0), Sel("label"), Bind(X)]))
        bindings = list(satisfy(atom, {}, ctx))
        assert bindings[0][X] == "item-0"

    def test_set_bind(self, ctx):
        atom = PathAtom(Name("Items"), PathTerm([
            Index(0), Sel("tags"), SetBind(X)]))
        values = {b[X] for b in satisfy(atom, {}, ctx)}
        assert values == {"t0", "common"}

    def test_attribute_variable(self, ctx):
        atom = PathAtom(Name("Box"), PathTerm([Sel(A), Bind(X)]))
        bindings = list(satisfy(atom, {}, ctx))
        assert bindings[0][A] == "name"
        assert bindings[0][X] == "the box"

    def test_path_variable_enumerates_and_binds(self, ctx):
        atom = PathAtom(Name("Box"), PathTerm([P, Bind(X)]))
        pairs = {(str(b[P]), repr(b[X])) for b in satisfy(atom, {}, ctx)}
        assert ("ε", repr(TupleValue([("name", "the box")]))) in pairs
        assert (".name", repr("the box")) in pairs

    def test_bound_path_variable_checks(self, ctx):
        atom = PathAtom(Name("Box"), PathTerm([P, Bind(X)]))
        binding = {P: Path.of("name")}
        bindings = list(satisfy(atom, binding, ctx))
        assert len(bindings) == 1
        assert bindings[0][X] == "the box"

    def test_bound_path_variable_that_does_not_apply(self, ctx):
        atom = PathAtom(Name("Box"), PathTerm([P]))
        assert list(satisfy(atom, {P: Path.of("ghost")}, ctx)) == []

    def test_missing_attribute_is_false_not_error(self, ctx):
        atom = PathAtom(Name("Box"), PathTerm([Sel("ghost"), Bind(X)]))
        assert list(satisfy(atom, {}, ctx)) == []


class TestConnectives:
    def test_and_orders_greedily(self, ctx):
        # Eq conjunct listed first needs X: the evaluator must run the
        # path atom first.
        formula = And(
            Eq(X, Const("item-1")),
            PathAtom(Name("Items"), PathTerm([
                Index(I), Sel("label"), Bind(X)])))
        bindings = list(satisfy(formula, {}, ctx))
        assert len(bindings) == 1
        assert bindings[0][I] == 1

    def test_or_unions(self, ctx):
        formula = Or(Eq(X, Const(1)), Eq(X, Const(2)))
        values = sorted(b[X] for b in satisfy(formula, {}, ctx))
        assert values == [1, 2]

    def test_not_filters(self, ctx):
        formula = And(
            PathAtom(Name("Items"), PathTerm([
                Index(I), Sel("label"), Bind(X)])),
            Not(Eq(X, Const("item-1"))))
        labels = {b[X] for b in satisfy(formula, {}, ctx)}
        assert labels == {"item-0", "item-2"}

    def test_not_on_unbound_raises(self, ctx):
        with pytest.raises(SafetyError):
            list(satisfy(Not(Eq(X, Const(1))), {}, ctx))

    def test_exists_projects(self, ctx):
        formula = Exists([I], PathAtom(Name("Items"), PathTerm([
            Index(I), Sel("label"), Bind(X)])))
        bindings = list(satisfy(formula, {}, ctx))
        assert all(I not in b for b in bindings)
        assert {b[X] for b in bindings} == {
            "item-0", "item-1", "item-2"}

    def test_forall_with_implication(self, ctx):
        # every item's label starts with 'item' (via contains)
        formula = Forall([I, X], Implies(
            PathAtom(Name("Items"), PathTerm([
                Index(I), Sel("label"), Bind(X)])),
            Pred("contains", [X, Const("item-(0|1|2)")])))
        assert list(satisfy(formula, {}, ctx)) == [{}]

    def test_forall_fails_when_counterexample(self, ctx):
        formula = Forall([I, X], Implies(
            PathAtom(Name("Items"), PathTerm([
                Index(I), Sel("label"), Bind(X)])),
            Eq(X, Const("item-0"))))
        assert list(satisfy(formula, {}, ctx)) == []

    def test_forall_requires_implication(self, ctx):
        with pytest.raises(SafetyError):
            list(satisfy(Forall([X], Eq(X, Const(1))), {}, ctx))

    def test_membership_binds(self, ctx):
        formula = In(X, Const(ListValue([10, 20])))
        assert sorted(b[X] for b in satisfy(formula, {}, ctx)) == [10, 20]

    def test_membership_checks(self, ctx):
        assert list(satisfy(In(Const(10), Const(ListValue([10]))), {}, ctx))
        assert not list(satisfy(
            In(Const(99), Const(ListValue([10]))), {}, ctx))

    def test_subset(self, ctx):
        holds = Subset(Const(SetValue([1])), Const(SetValue([1, 2])))
        fails = Subset(Const(SetValue([3])), Const(SetValue([1, 2])))
        assert list(satisfy(holds, {}, ctx))
        assert not list(satisfy(fails, {}, ctx))

    def test_stuck_conjunction_raises(self, ctx):
        with pytest.raises(SafetyError):
            list(satisfy(And(Pred("lt", [X, Y])), {}, ctx))


class TestQueries:
    def test_single_head_returns_value_set(self, ctx):
        query = Query([X], Exists([I], PathAtom(
            Name("Items"), PathTerm([Index(I), Sel("label"), Bind(X)]))))
        result = evaluate_query(query, ctx)
        assert isinstance(result, SetValue)
        assert set(result) == {"item-0", "item-1", "item-2"}

    def test_multi_head_returns_tuples(self, ctx):
        query = Query([I, X], PathAtom(
            Name("Items"), PathTerm([Index(I), Sel("label"), Bind(X)])))
        result = evaluate_query(query, ctx)
        rows = {(row.get("I"), row.get("X")) for row in result}
        assert rows == {(0, "item-0"), (1, "item-1"), (2, "item-2")}

    def test_result_is_deduplicated(self, ctx):
        query = Query([X], Exists([I], PathAtom(
            Name("Items"),
            PathTerm([Index(I), Sel("tags"), SetBind(X)]))))
        result = evaluate_query(query, ctx)
        assert sorted(result) == ["common", "t0", "t1", "t2"]

    def test_head_must_occur_in_formula(self):
        with pytest.raises(QueryError):
            Query([X], Eq(Y, Const(1)))

    def test_free_variables_must_be_in_head(self):
        with pytest.raises(QueryError):
            Query([X], And(Eq(X, Const(1)), Eq(Y, Const(2))))

    def test_nested_query_term(self, ctx):
        # a list of the labels, via set_to_list of a nested query
        inner = Query([X], Exists([I], PathAtom(
            Name("Items"), PathTerm([Index(I), Sel("label"), Bind(X)]))))
        outer = Query([Y], Eq(Y, FunTerm("set_to_list", [inner])))
        result = evaluate_query(outer, ctx)
        assert len(result) == 1
        the_list = list(result)[0]
        assert isinstance(the_list, ListValue)
        assert set(the_list) == {"item-0", "item-1", "item-2"}
