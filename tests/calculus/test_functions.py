"""Unit tests for the interpreted function/predicate registry."""

import pytest

from repro.calculus import EvalContext, FunctionRegistry, default_registry
from repro.corpus.knuth import build_knuth_database
from repro.errors import EvaluationError
from repro.oodb import ListValue, SetValue, TupleValue
from repro.paths import Path


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(build_knuth_database())


def call(ctx, name, *args):
    return ctx.registry.function(name)(ctx, *args)


def holds(ctx, name, *args):
    return ctx.registry.predicate(name)(ctx, *args)


class TestRegistry:
    def test_unknown_names_rejected(self, ctx):
        with pytest.raises(EvaluationError):
            ctx.registry.function("nope")
        with pytest.raises(EvaluationError):
            ctx.registry.predicate("nope")

    def test_has_checks(self):
        registry = default_registry()
        assert registry.has_function("length")
        assert registry.has_predicate("contains")
        assert not registry.has_function("contains")

    def test_custom_registration(self, ctx):
        registry = FunctionRegistry()
        registry.register_function("double", lambda c, x: x * 2)
        assert registry.function("double")(ctx, 21) == 42


class TestPathAndCollectionFunctions:
    def test_length_on_everything(self, ctx):
        assert call(ctx, "length", Path.of("a", 0)) == 2
        assert call(ctx, "length", "abc") == 3
        assert call(ctx, "length", ListValue([1, 2])) == 2
        assert call(ctx, "length", SetValue([1])) == 1
        with pytest.raises(EvaluationError):
            call(ctx, "length", 42)

    def test_project_and_concat(self, ctx):
        path = Path.of("a", 0, "b")
        assert call(ctx, "project", path, 0, 1) == Path.of("a", 0)
        assert call(ctx, "concat", Path.of("a"), Path.of("b")) == \
            Path.of("a", "b")
        assert call(ctx, "concat", "x", "y") == "xy"
        assert call(ctx, "concat", ListValue([1]), ListValue([2])) == \
            ListValue([1, 2])
        with pytest.raises(EvaluationError):
            call(ctx, "concat", 1, 2)

    def test_name(self, ctx):
        assert call(ctx, "name", "title") == "title"
        with pytest.raises(EvaluationError):
            call(ctx, "name", 42)

    def test_first_last_count(self, ctx):
        lst = ListValue([10, 20, 30])
        assert call(ctx, "first", lst) == 10
        assert call(ctx, "last", lst) == 30
        assert call(ctx, "count", lst) == 3
        with pytest.raises(EvaluationError):
            call(ctx, "first", ListValue())

    def test_set_to_list_and_sort_by(self, ctx):
        s = SetValue([TupleValue([("k", 2)]), TupleValue([("k", 1)])])
        as_list = call(ctx, "set_to_list", s)
        assert isinstance(as_list, ListValue)
        ordered = call(ctx, "sort_by", s, "k")
        assert [t.get("k") for t in ordered] == [1, 2]
        with pytest.raises(EvaluationError):
            call(ctx, "sort_by", s, "missing")

    def test_element(self, ctx):
        assert call(ctx, "element", SetValue([7])) == 7
        with pytest.raises(EvaluationError):
            call(ctx, "element", SetValue([1, 2]))

    def test_set_operations(self, ctx):
        a, b = SetValue([1, 2]), SetValue([2, 3])
        assert call(ctx, "set_union", a, b) == SetValue([1, 2, 3])
        assert call(ctx, "set_intersection", a, b) == SetValue([2])
        assert call(ctx, "set_difference", a, b) == SetValue([1])
        with pytest.raises(EvaluationError):
            call(ctx, "set_union", a, 5)


class TestTextFunctions:
    def test_text_on_objects(self, ctx):
        volume = ctx.instance.root("Knuth_Books").get("volumes")[0]
        text = call(ctx, "text", volume)
        assert "Fundamental Algorithms" in text

    def test_contains_auto_text(self, ctx):
        volume = ctx.instance.root("Knuth_Books").get("volumes")[0]
        assert holds(ctx, "contains", volume, "Fundamental")
        assert not holds(ctx, "contains", volume, "Nonexistent")

    def test_contains_non_string_false(self, ctx):
        assert not holds(ctx, "contains", 42, "x")

    def test_near_auto_text(self, ctx):
        assert holds(ctx, "near", "alpha beta gamma", "alpha", "gamma",
                     2)
        assert not holds(ctx, "near", "alpha beta gamma", "alpha",
                         "gamma", 1)


class TestComparisons:
    def test_orderings(self, ctx):
        assert holds(ctx, "lt", 1, 2)
        assert holds(ctx, "le", 2, 2)
        assert holds(ctx, "gt", "b", "a")
        assert holds(ctx, "ge", 2.5, 2.5)
        assert not holds(ctx, "lt", 2, 1)

    def test_neq_uses_equivalence(self, ctx):
        tup = TupleValue([("a", 1)])
        het = ListValue([TupleValue([("a", 1)])])
        assert not holds(ctx, "neq", tup, het)  # ≡-equivalent
        assert holds(ctx, "neq", 1, 2)

    def test_incomparable_rejected(self, ctx):
        with pytest.raises(EvaluationError):
            holds(ctx, "lt", ListValue(), 1)
        with pytest.raises(EvaluationError):
            holds(ctx, "lt", True, 1)  # booleans are not ordered here

    def test_exists_predicate(self, ctx):
        assert holds(ctx, "exists", SetValue([1]))
        assert not holds(ctx, "exists", SetValue())
        with pytest.raises(EvaluationError):
            holds(ctx, "exists", 42)
