import pytest

from repro.calculus import EvalContext
from repro.corpus.knuth import build_knuth_database
from repro.corpus.letters import build_letters_database


@pytest.fixture(scope="module")
def knuth_ctx():
    return EvalContext(build_knuth_database())


@pytest.fixture(scope="module")
def letters_ctx():
    return EvalContext(build_letters_database())
