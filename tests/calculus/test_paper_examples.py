"""Experiments C1–C8: the worked calculus queries of Section 5.

Each test builds one of the paper's example queries verbatim (modulo the
Python AST syntax) over the Knuth_Books / Letters databases and checks
the answer.
"""

import pytest

from repro.calculus import (
    And,
    AttVar,
    Bind,
    Const,
    DataVar,
    Eq,
    Exists,
    FunTerm,
    In,
    Index,
    Name,
    Not,
    PathAtom,
    PathTerm,
    PathVar,
    Pred,
    Query,
    Sel,
    SetBind,
    evaluate_query,
)
from repro.oodb import ListValue, SetValue, TupleValue
from repro.paths import Path

X, Y, I, J, K = (DataVar(n) for n in "XYIJK")
P, Q, P2 = PathVar("P"), PathVar("Q"), PathVar("P'")
A = AttVar("A")


class TestKnuthNavigation:
    """The running Knuth_Books example of Section 5.2."""

    def test_volumes_chapters_navigation(self, knuth_ctx):
        # Knuth_Books P ·volumes[2] Q ·chapters[3] (X)
        # (the paper's indices read 1-based; [1]/[2] are the 0-based twins)
        query = Query([X], Exists([P, Q], PathAtom(
            Name("Knuth_Books"),
            PathTerm([P, Sel("volumes"), Index(1),
                      Q, Sel("chapters"), Index(1), Bind(X)]))))
        result = evaluate_query(query, knuth_ctx)
        chapters = list(result)
        assert len(chapters) == 1
        value = knuth_ctx.instance.deref(chapters[0])
        assert value.get("title") == "Arithmetic"

    def test_status_attribute(self, knuth_ctx):
        # <Knuth_Books P ·status(X)> — the statuses of all volumes
        query = Query([X], Exists([P], PathAtom(
            Name("Knuth_Books"),
            PathTerm([P, Sel("status"), Bind(X)]))))
        result = evaluate_query(query, knuth_ctx)
        assert set(result) == {"final", "draft"}


class TestC1AttributeOfJo:
    """C1: In which attribute can "Jo" be found?
    {A | ∃P(<Knuth_Books P ·A(X)> ∧ X = "Jo")}"""

    def test_query(self, knuth_ctx):
        query = Query([A], Exists([P, X], And(
            PathAtom(Name("Knuth_Books"),
                     PathTerm([P, Sel(A), Bind(X)])),
            Eq(X, Const("Jo")))))
        result = evaluate_query(query, knuth_ctx)
        assert set(result) == {"author"}


class TestC2PathsToJo:
    """C2: Which paths lead to "Jo"?
    {P | <Knuth_Books P(X)> ∧ X = "Jo"}"""

    def test_query(self, knuth_ctx):
        query = Query([P], Exists([X], And(
            PathAtom(Name("Knuth_Books"), PathTerm([P, Bind(X)])),
            Eq(X, Const("Jo")))))
        result = evaluate_query(query, knuth_ctx)
        paths = list(result)
        assert len(paths) == 1
        rendered = str(paths[0])
        assert rendered.startswith(".volumes[1]")
        assert rendered.endswith(".author")


class TestC3C4StructuralDifference:
    """C3/C4: new paths and new titles between document versions."""

    @pytest.fixture()
    def versions_ctx(self):
        from repro.calculus import EvalContext
        from repro.oodb import (
            Instance, STRING, schema_from_classes, tuple_of, list_of)
        schema = schema_from_classes({}, roots={
            "Doc": tuple_of(
                ("title", STRING),
                ("sections", list_of(tuple_of(("title", STRING))))),
            "Old_Doc": tuple_of(
                ("title", STRING),
                ("sections", list_of(tuple_of(("title", STRING)))))})
        db = Instance(schema)
        db.set_root("Old_Doc", TupleValue([
            ("title", "V1"),
            ("sections", ListValue([
                TupleValue([("title", "Intro")])]))]))
        db.set_root("Doc", TupleValue([
            ("title", "V2"),
            ("sections", ListValue([
                TupleValue([("title", "Intro")]),
                TupleValue([("title", "New Results")])]))]))
        return EvalContext(db)

    def test_c3_new_paths(self, versions_ctx):
        # {P | <Doc P> ∧ ¬<Old_Doc P>}
        query = Query([P], And(
            PathAtom(Name("Doc"), PathTerm([P])),
            Not(PathAtom(Name("Old_Doc"), PathTerm([P])))))
        result = evaluate_query(query, versions_ctx)
        rendered = {str(p) for p in result}
        assert ".sections[1]" in rendered
        assert ".sections[1].title" in rendered
        assert ".title" not in rendered  # exists in both versions

    def test_c4_new_titles(self, versions_ctx):
        # {X | ∃P(<Doc P ·title(X)>) ∧ ¬∃P'(<Old_Doc P' ·title(X)>)}
        query = Query([X], And(
            Exists([P], PathAtom(
                Name("Doc"), PathTerm([P, Sel("title"), Bind(X)]))),
            Not(Exists([P2], PathAtom(
                Name("Old_Doc"),
                PathTerm([P2, Sel("title"), Bind(X)]))))))
        result = evaluate_query(query, versions_ctx)
        assert set(result) == {"V2", "New Results"}


class TestC5InterpretedFunctions:
    """C5: length(P) restrictions over paths (Section 5.2)."""

    def test_titles_near_the_root(self, knuth_ctx):
        # {X | ∃P(<Knuth_Books P(X) ·title> ∧ length(P) < 3)}
        query = Query([X], Exists([P], And(
            PathAtom(Name("Knuth_Books"),
                     PathTerm([P, Bind(X), Sel("title")])),
            Pred("lt", [FunTerm("length", [P]), Const(3)]))))
        result = evaluate_query(query, knuth_ctx)
        # X ranges over values having a .title reachable by a short path:
        # the three volumes (paths .volumes[i] -> of length 2 end at the
        # volume value... the dereference is implicit on ·title).
        values = list(result)
        assert values, "short-path title carriers expected"
        for value in values:
            from repro.oodb import Oid
            if isinstance(value, Oid):
                inner = knuth_ctx.instance.deref(value)
                assert inner.has_attribute("title")

    def test_name_contains_pattern(self, knuth_ctx):
        # {X | ∃P,A(<Knuth_Books P ·A(X)> ∧ name(A) contains "(t|T)itle"
        #          ∧ length(P) < 3)}
        query = Query([X], Exists([P, A], And(
            PathAtom(Name("Knuth_Books"),
                     PathTerm([P, Sel(A), Bind(X)])),
            Pred("contains",
                 [FunTerm("name", [A]), Const("(t|T)itle")]),
            Pred("lt", [FunTerm("length", [P]), Const(3)]))))
        result = evaluate_query(query, knuth_ctx)
        assert "Fundamental Algorithms" in set(result)
        # chapter titles are deeper than 3 steps
        assert "Basic Concepts" not in set(result)


class TestC6TypeRestriction:
    """Section 5.3: "D. Scott" ∈ X·review filters valuations to chapters."""

    def test_review_membership(self, knuth_ctx):
        from repro.calculus import PathApply
        query = Query([X], Exists([P], And(
            PathAtom(Name("Knuth_Books"),
                     PathTerm([P, Bind(X), Sel("title")])),
            In(Const("D. Scott"),
               PathApply(X, PathTerm([Sel("review")]))))))
        result = evaluate_query(query, knuth_ctx)
        # X binds both to the chapter oids and (via paths ending in a
        # dereference) to their tuple values — titles collapse the two.
        from repro.oodb import Oid
        titles = {knuth_ctx.instance.deref(v).get("title")
                  if isinstance(v, Oid) else v.get("title")
                  for v in result}
        assert titles == {"Basic Concepts", "Random Numbers", "Sorting"}


class TestC7SectionsAndTyping:
    """Section 5.3's example:
    {X | ∃P(<Knuth_Books P ·sections{X}>) ∧ X·title = Y ∧ Y contains ...}
    (adapted: head X, Y existentially quantified)."""

    def test_sections_with_type_in_title(self, knuth_ctx):
        from repro.calculus import PathApply
        query = Query([X], Exists([P, Y], And(
            PathAtom(Name("Knuth_Books"),
                     PathTerm([P, Sel("sections"), SetBind(X)])),
            Eq(PathApply(X, PathTerm([Sel("title")])), Y),
            Pred("contains", [Y, Const("(t|T)ype")]))))
        result = evaluate_query(query, knuth_ctx)
        # sections whose title contains "type": none (bodies contain it);
        # relax: search bodies
        assert set(result) == set()

    def test_sections_with_type_in_body(self, knuth_ctx):
        from repro.calculus import PathApply
        query = Query([X], Exists([P, Y], And(
            PathAtom(Name("Knuth_Books"),
                     PathTerm([P, Sel("sections"), SetBind(X)])),
            Eq(PathApply(X, PathTerm([Sel("body")])), Y),
            Pred("contains", [Y, Const("(t|T)ype")]))))
        result = evaluate_query(query, knuth_ctx)
        titles = {s.get("title") for s in result}
        assert titles == {"Algorithms", "Floating Point Arithmetic",
                          "Introduction"}


class TestC8LettersOrdering:
    """Section 5.3's letters example: query (†) and its sugared forms."""

    def test_marked_query(self, letters_ctx):
        # {Y | ∃I <Letters[I] ·a1(Y)>} — letters starting with `from`
        query = Query([Y], Exists([I], PathAtom(
            Name("Letters"), PathTerm([Index(I), Sel("a1"), Bind(Y)]))))
        result = evaluate_query(query, letters_ctx)
        assert len(result) == 3  # three sender-first sample letters
        for letter in result:
            assert letter.attribute_names[0] == "from"

    def test_dagger_query_positional(self, letters_ctx):
        # (†): {Y | ∃A,I,J,K(<Letters[I] ·A(Y)[J] ·to>
        #                  ∧ <Letters[I] ·A[K] ·from> ∧ J < K)}
        query = Query([Y], Exists([A, I, J, K], And(
            PathAtom(Name("Letters"), PathTerm([
                Index(I), Sel(A), Bind(Y), Index(J), Sel("to")])),
            PathAtom(Name("Letters"), PathTerm([
                Index(I), Sel(A), Index(K), Sel("from")])),
            Pred("lt", [J, K]))))
        result = evaluate_query(query, letters_ctx)
        # letters where `to` precedes `from`: the a2-marked ones
        assert len(result) == 2
        for letter in result:
            assert letter.attribute_names[0] == "to"

    def test_sugared_dagger_with_implicit_markers(self, letters_ctx):
        # the Important-Omissions version:
        # {Y | ∃I,J,K(<Letters[I](Y)[J] ·to> ∧ <Letters[I][K] ·from>
        #            ∧ J < K)}
        # [J] applies to the union value: the heterogeneous-list view of
        # the *payload* is reached through the marker implicitly — our
        # Index on a marked value indexes the one-field wrapper, so we
        # spell the marker-skip with an attribute variable above; here we
        # check the projection sugar instead:
        # {X | ∃I <Letters[I] ·to(X)>} — all recipients.
        query = Query([X], Exists([I], PathAtom(
            Name("Letters"), PathTerm([Index(I), Sel("to"), Bind(X)]))))
        result = evaluate_query(query, letters_ctx)
        assert set(result) == {
            "M. Scholl", "V. Christophides", "S. Cluet",
            "S. Abiteboul", "INRIA"}

    def test_set_to_list_example(self, letters_ctx):
        # {Y | Y = set_to_list({X | ...})} from the end of Section 5.2
        inner = Query([X], Exists([I], PathAtom(
            Name("Letters"), PathTerm([Index(I), Sel("from"), Bind(X)]))))
        outer = Query([Y], Eq(Y, FunTerm("set_to_list", [inner])))
        result = evaluate_query(outer, letters_ctx)
        senders = list(result)[0]
        assert isinstance(senders, ListValue)
        assert set(senders) == {
            "S. Abiteboul", "S. Cluet", "V. Christophides",
            "M. Scholl", "Euroclid"}
