"""Edge-case tests for the evaluator (guards, reuse, dedup)."""

import pytest

from repro.calculus import (
    And,
    Bind,
    Const,
    DataVar,
    Eq,
    EvalContext,
    Exists,
    FunTerm,
    Index,
    Name,
    Or,
    PathApply,
    PathAtom,
    PathTerm,
    PathVar,
    Query,
    Sel,
    evaluate_query,
)
from repro.calculus.evaluator import satisfy
from repro.corpus.knuth import build_knuth_database
from repro.errors import EvaluationError, WrongBranchAccess
from repro.oodb import ListValue, TupleValue, UnionValue

X, Y, I = DataVar("X"), DataVar("Y"), DataVar("I")
P, Q = PathVar("P"), PathVar("Q")


@pytest.fixture(scope="module")
def ctx():
    return EvalContext(build_knuth_database())


class TestGuards:
    def test_max_paths_guard_fires(self):
        from repro.oodb import (
            Instance, STRING, schema_from_classes, list_of)
        schema = schema_from_classes(
            {}, roots={"Big": list_of(list_of(STRING))})
        db = Instance(schema)
        db.set_root("Big", ListValue(
            ListValue(f"s{i}-{j}" for j in range(40))
            for i in range(40)))
        tight = EvalContext(db, max_paths=100)
        query = Query([P], PathAtom(Name("Big"), PathTerm([P])))
        with pytest.raises(EvaluationError):
            evaluate_query(query, tight)

    def test_ambiguous_path_apply_in_data_term(self, ctx):
        # a data term with a path that matches several ways is rejected
        # (use a path predicate instead)
        root = ctx.instance.root("Knuth_Books")
        volumes = root.get("volumes")
        # volumes[I] with I bound is fine; with a PathVar it is ambiguous
        term = PathApply(Name("Knuth_Books"),
                         PathTerm([P, Sel("status")]))
        from repro.calculus.evaluator import eval_term
        with pytest.raises(EvaluationError):
            eval_term(term, {}, ctx)

    def test_wrong_branch_on_named_root(self):
        from repro.oodb import Instance, schema_from_classes, tuple_of
        from repro.oodb.types import STRING
        from repro.oodb import union_of
        schema = schema_from_classes({}, roots={
            "thing": union_of(("a", tuple_of(("x", STRING))),
                              ("b", tuple_of(("y", STRING))))})
        db = Instance(schema)
        db.set_root("thing", UnionValue(
            "a", TupleValue([("x", "hello")])))
        local = EvalContext(db)
        from repro.calculus.evaluator import eval_term
        good = PathApply(Name("thing"), PathTerm([Sel("x")]))
        assert eval_term(good, {}, local) == "hello"
        bad = PathApply(Name("thing"), PathTerm([Sel("y")]))
        with pytest.raises(WrongBranchAccess):
            eval_term(bad, {}, local)


class TestVariableReuse:
    def test_path_variable_shared_across_atoms(self, ctx):
        # P bound by the first atom constrains the second: paths that
        # lead to a status in BOTH volume 0 and volume 2 positions —
        # i.e. P must apply under both volumes.
        query = Query([P], And(
            PathAtom(PathApply(Name("Knuth_Books"),
                               PathTerm([Sel("volumes"), Index(0)])),
                     PathTerm([P, Sel("status")])),
            PathAtom(PathApply(Name("Knuth_Books"),
                               PathTerm([Sel("volumes"), Index(2)])),
                     PathTerm([P, Sel("status")]))))
        result = evaluate_query(query, ctx)
        assert len(result) >= 1  # the deref path works for both

    def test_index_variable_shared_across_atoms(self, ctx):
        # I indexes volumes in both atoms: the same volume must have
        # status "draft" AND a title containing "Sorting".
        query = Query([I], Exists([X, Y], And(
            PathAtom(Name("Knuth_Books"), PathTerm([
                Sel("volumes"), Index(I), Sel("status"), Bind(X)])),
            Eq(X, Const("draft")),
            PathAtom(Name("Knuth_Books"), PathTerm([
                Sel("volumes"), Index(I), Sel("title"), Bind(Y)])),
            Eq(Y, Const("Sorting and Searching")))))
        result = evaluate_query(query, ctx)
        assert set(result) == {2}

    def test_data_variable_rebinding_checks_equivalence(self, ctx):
        # X bound twice must match both occurrences
        query = Query([X], And(
            PathAtom(Name("Knuth_Books"), PathTerm([
                Sel("volumes"), Index(0), Sel("status"), Bind(X)])),
            PathAtom(Name("Knuth_Books"), PathTerm([
                Sel("volumes"), Index(1), Sel("status"), Bind(X)]))))
        # volumes 0 and 1 are both "final"
        assert set(evaluate_query(query, ctx)) == {"final"}


class TestConnectiveEdges:
    def test_or_with_different_binders(self, ctx):
        formula = Or(
            Eq(X, Const("left")),
            PathAtom(Name("Knuth_Books"),
                     PathTerm([Sel("series"), Bind(X)])))
        values = {b[X] for b in satisfy(formula, {}, ctx)}
        assert "left" in values
        assert "The Art of Computer Programming" in values

    def test_exists_deduplicates_projections(self, ctx):
        # many witnesses, one projected binding
        formula = Exists([P], PathAtom(
            Name("Knuth_Books"), PathTerm([P, Sel("status"),
                                           Bind(X)])))
        bindings = list(satisfy(formula, {}, ctx))
        seen = [b[X] for b in bindings]
        assert len(seen) == len(set(seen))

    def test_empty_path_term(self, ctx):
        query = Query([X], PathAtom(Name("Knuth_Books"),
                                    PathTerm([Bind(X)])))
        result = evaluate_query(query, ctx)
        assert len(result) == 1  # the root value itself

    def test_nested_function_composition(self, ctx):
        query = Query([X], Eq(X, FunTerm("length", [
            FunTerm("set_to_list", [
                Query([Y], PathAtom(Name("Knuth_Books"), PathTerm([
                    Sel("volumes"), Index(0),
                    Sel("status"), Bind(Y)])))])])))
        result = evaluate_query(query, ctx)
        assert set(result) == {1}
