"""Experiment P13 — the relational backend (repro.sqlbackend).

Q1–Q6 (the paper's query set) through the structural configuration
and through the SQL hybrid over the same store, emitted to
``BENCH_SQL.json``:

* per query: warm median of the structural plan vs. the hybrid (the
  emitted statements re-execute against the live shred every run;
  the shred itself is warm), the hybrid's SQL feed count and the
  number of plan operators left running in Python;
* once: the cost of building the shred (the quantity the epoch gate
  amortizes across queries).

Result equality against the structural plan is asserted for every
query.  The acceptance bar is *recorded*, not asserted: timings from
shared runners are indicative, and the experiment's claim is parity
of answers plus the same order of magnitude warm — `within_5x` in
the JSON says whether this run met it.  ``SQL_BENCH_ROUNDS`` shrinks
the run for CI smoke; ``python benchmarks/bench_p13_sql.py`` runs
standalone at tiny scale.
"""

import json
import os
import statistics
import time
import types

import pytest

from conftest import build_corpus_store
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan
from repro.algebra.optimizer import optimize
from repro.corpus import SAMPLE_ARTICLE
from repro.corpus.letters import build_letters_database
from repro.sqlbackend.backend import SQLBackend

ROUNDS = int(os.environ.get("SQL_BENCH_ROUNDS", "30"))
CORPUS = int(os.environ.get("SQL_BENCH_CORPUS", "20"))

ARTICLE_QUERIES = {
    "q1_contains": """
        select tuple (t: a.title, f_author: first(a.authors))
        from a in Articles, s in a.sections
        where s.title contains ("SGML" and "OODBMS")
    """,
    "q2_union": """
        select ss
        from a in Articles, s in a.sections, ss in s.subsectns
        where ss contains ("complex object")
    """,
    "q3_paths": "select t from my_article PATH_p.title(t)",
    "q4_diff": "my_article PATH_p - my_old_article PATH_p",
    "q5_attvars": """
        select name(ATT_a)
        from my_article PATH_p.ATT_a(val)
        where val contains ("final")
    """,
}

Q6_LETTERS = """
    select letter
    from letter in Letters, letter[i].from, letter[j].to
    where i < j
"""

RESULTS: dict = {"experiment": "SQL", "scenarios": {}}


def build_store(size=CORPUS):
    store = build_corpus_store(size, backend="algebra")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.load_text(SAMPLE_ARTICLE, name="my_old_article")
    store.build_text_index()
    store.build_structural_index()
    return store


def _median_ms(thunk, rounds=ROUNDS) -> float:
    thunk()  # warm-up
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        thunk()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples) * 1000.0


def _python_operators(plan) -> int:
    """Plan operators the hybrid still runs in Python (feeds count as
    one each — they are the SQL boundary, not Python work)."""
    seen, stack, count = set(), [plan], 0
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        count += 1
        stack.extend(node.children())
    return count


def _compare(name, engine, schema, backend, text, rounds) -> dict:
    query = engine.translate(text)
    plan = compile_query(query, schema, path_semantics="restricted")
    structural = optimize(plan, structural=True, verify="raise",
                          query=query)
    hybrid = backend.compile(structural)
    reference = execute_plan(structural, engine.ctx.fork())
    assert backend.execute(hybrid, engine.ctx.fork()) == reference
    entry = {
        "rows": len(reference),
        "sql_feeds": len(hybrid.programs),
        "hybrid_python_operators": _python_operators(hybrid.plan),
        "structural_ms": _median_ms(
            lambda: execute_plan(structural, engine.ctx.fork()),
            rounds),
        "sql_ms": _median_ms(
            lambda: backend.execute(hybrid, engine.ctx.fork()),
            rounds),
    }
    entry["sql_vs_structural"] = (entry["sql_ms"]
                                  / max(entry["structural_ms"], 1e-9))
    entry["within_5x"] = entry["sql_vs_structural"] <= 5.0
    RESULTS["scenarios"][name] = entry
    return entry


def run_article_queries(store, backend, rounds=ROUNDS) -> dict:
    engine = store._engine
    return {name: _compare(name, engine, store.schema, backend,
                           text, rounds)
            for name, text in sorted(ARTICLE_QUERIES.items())}


def run_q6_letters(rounds=ROUNDS) -> dict:
    from repro.o2sql import QueryEngine
    engine = QueryEngine(build_letters_database())
    backend = SQLBackend(engine.instance,
                         epoch_source=types.SimpleNamespace(epoch=0))
    return _compare("q6_letters", engine, engine.instance.schema,
                    backend, Q6_LETTERS, rounds)


def run_shred_build(store) -> dict:
    backend = SQLBackend(store.instance,
                         epoch_source=store.plan_cache)
    start = time.perf_counter()
    roots = backend.shred.refresh()
    build_ms = (time.perf_counter() - start) * 1000.0
    summary = {
        "roots_shredded": roots,
        "build_ms": build_ms,
        "node_rows": backend.shred.execute(
            "SELECT COUNT(*) FROM node", {})[1][0][0],
    }
    RESULTS["scenarios"]["shred_build"] = summary
    return summary


def emit() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    out_dir = os.environ.get(
        "BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(here), "bench_results"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_SQL.json")
    with open(path, "w") as handle:
        json.dump(RESULTS, handle, indent=2)
        handle.write("\n")
    print(f"[bench] wrote {path} "
          f"({len(RESULTS['scenarios'])} scenarios)")
    return path


@pytest.fixture(scope="module", autouse=True)
def _emit_after_run():
    yield
    if RESULTS["scenarios"]:
        emit()


@pytest.fixture(scope="module")
def store():
    return build_store()


@pytest.fixture(scope="module")
def backend(store):
    backend = SQLBackend(store.instance,
                         epoch_source=store.plan_cache)
    backend.shred.refresh()
    return backend


def test_bench_p13_shred_build(store):
    summary = run_shred_build(store)
    assert summary["roots_shredded"] > 0
    assert summary["node_rows"] > 0


def test_bench_p13_article_queries(store, backend):
    summary = run_article_queries(store, backend)
    for name, entry in summary.items():
        assert entry["sql_ms"] > 0, name
        assert entry["sql_feeds"] >= 1, name


def test_bench_p13_q6_letters():
    entry = run_q6_letters()
    assert entry["rows"] == 3
    assert entry["sql_feeds"] >= 1


def main() -> None:
    """Standalone tiny-scale run (the CI smoke entry point)."""
    store = build_store(size=8)
    backend = SQLBackend(store.instance,
                         epoch_source=store.plan_cache)
    backend.shred.refresh()
    run_shred_build(store)
    run_article_queries(store, backend, rounds=5)
    run_q6_letters(rounds=5)
    emit()


if __name__ == "__main__":
    main()
