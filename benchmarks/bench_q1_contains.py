"""Experiment Q1 — the contains query of Section 4.1.

    select tuple (t: a.title, f_author: first(a.authors))
    from a in Articles, s in a.sections
    where s.title contains ("SGML" and "OODBMS")

Measured under both backends; the assertion cross-checks the selected
articles against a manual scan.
"""

import pytest

from conftest import build_corpus_store

Q1 = """
    select tuple (t: a.title, f_author: first(a.authors))
    from a in Articles, s in a.sections
    where s.title contains ("SGML" and "OODBMS")
"""


@pytest.fixture(scope="module")
def store():
    return build_corpus_store(20)


def expected_rows(store):
    hits = set()
    for article_oid in store.instance.root("Articles"):
        article = store.instance.deref(article_oid)
        for section_oid in article.get("sections"):
            section = store.instance.deref(section_oid)
            words = store.text(
                section.marked_value.get("title")).split()
            if "SGML" in words and "OODBMS" in words:
                hits.add(article_oid)
    return hits


def test_bench_q1_calculus(benchmark, store, capsys):
    result = benchmark(store.query, Q1)
    titles = {row.get("t") for row in result}
    manual = {store.instance.deref(a).get("title")
              for a in expected_rows(store)}
    assert titles == manual
    with capsys.disabled():
        print(f"\n[Q1] {len(result)} of "
              f"{len(store.instance.root('Articles'))} articles "
              "match '\"SGML\" and \"OODBMS\"' in a section title")


def test_bench_q1_algebra(benchmark, store):
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    query = store._engine.translate(Q1)
    plan = compile_query(query, store.schema, store._engine.ctx)
    result = benchmark(execute_plan, plan, store._engine.ctx)
    assert result == store.query(Q1)


def test_bench_q1_corpus_scaling(benchmark, capsys):
    """Q1 on a larger corpus (60 articles) — linear scan behaviour."""
    big = build_corpus_store(60)
    result = benchmark(big.query, Q1)
    with capsys.disabled():
        print(f"\n[Q1-scale] {len(result)} matches in 60 articles")
