"""Experiment P5 — the union-type "combinatorial explosion"
(Sections 4.2 / 5.3).

The paper warns twice that union types "may result into a combinatorial
explosion of types" and adds a guard ("some semantic rules can be added
to the O₂SQL typing mechanism in order to control this inflation").  We
measure type inference and union merging as the number of alternatives
grows, and check that the guard (MAX_UNION_WIDTH) fires.
"""

import pytest

from repro.calculus import (
    Bind,
    DataVar,
    Exists,
    Name,
    PathAtom,
    PathTerm,
    PathVar,
    Query,
    Sel,
    infer_types,
)
from repro.calculus.inference import MAX_UNION_WIDTH
from repro.errors import QueryTypeError, SubtypingError
from repro.oodb import (
    INTEGER,
    STRING,
    merge_unions,
    schema_from_classes,
    tuple_of,
    union_of,
)

X = DataVar("X")
P = PathVar("P")


def wide_schema(width: int):
    """A root whose structure nests `width` distinct tuple shapes, all
    carrying a `v` attribute — every one a candidate type for X."""
    fields = []
    for i in range(width):
        fields.append((f"part{i}", tuple_of(
            (f"pad{i}", INTEGER), ("v", STRING))))
    return schema_from_classes({}, roots={"Root": tuple_of(*fields)})


@pytest.mark.parametrize("width", [4, 16, 48])
def test_bench_p5_inference_width(benchmark, width, capsys):
    schema = wide_schema(width)
    query = Query([X], Exists([P], PathAtom(
        Name("Root"), PathTerm([P, Bind(X), Sel("v")]))))
    types = benchmark(infer_types, query, schema)
    from repro.oodb.types import UnionType
    inferred = types[X]
    assert isinstance(inferred, UnionType)
    assert len(inferred) == width
    with capsys.disabled():
        print(f"\n[P5] width={width}: X inferred as a union of "
              f"{len(inferred)} α-marked types")


def test_bench_p5_guard_fires(benchmark):
    """Beyond MAX_UNION_WIDTH the inference reports a type error — the
    paper's 'control this inflation' rule."""
    schema = wide_schema(MAX_UNION_WIDTH + 5)
    query = Query([X], Exists([P], PathAtom(
        Name("Root"), PathTerm([P, Bind(X), Sel("v")]))))

    def guard_fires() -> bool:
        try:
            infer_types(query, schema)
        except QueryTypeError:
            return True
        return False

    assert benchmark(guard_fires)


@pytest.mark.parametrize("width", [8, 64, 256])
def test_bench_p5_union_merge(benchmark, width):
    """Pairwise least-common-supertype of two wide unions."""
    left = union_of(*[(f"m{i}", INTEGER) for i in range(width)])
    right = union_of(*[(f"m{i + width // 2}", INTEGER)
                       for i in range(width)])
    merged = benchmark(merge_unions, left, right)
    assert len(merged) == width + width // 2


def test_bench_p5_marker_conflict_detection(benchmark):
    left = union_of(("a", INTEGER), ("b", STRING))
    right = union_of(("b", INTEGER), ("c", STRING))  # b conflicts

    def merge_fails():
        try:
            merge_unions(left, right)
        except SubtypingError:
            return True
        return False

    assert benchmark(merge_fails)
