"""Experiment Q5 — attribute variables: grep inside the OODB.

    select name(ATT_a)
    from my_article PATH_p.ATT_a(val)
    where val contains ("final")

The schema-free search the paper highlights ("perform search operations
like Unix grep inside an OODBMS").
"""

import pytest

from conftest import build_corpus_store

Q5 = """
    select name(ATT_a)
    from my_article PATH_p.ATT_a(val)
    where val contains ("final")
"""


def test_bench_q5(benchmark, figure2_store, capsys):
    result = benchmark(figure2_store.query, Q5)
    assert set(result) == {"status"}
    with capsys.disabled():
        print("\n[Q5] attributes of my_article whose value contains "
              f"'final': {sorted(result)}")


def test_bench_q5_content_word(benchmark, figure2_store, capsys):
    result = benchmark(figure2_store.query, """
        select name(ATT_a)
        from my_article PATH_p.ATT_a(val)
        where val contains ("SGML")
    """)
    assert "text" in set(result)
    with capsys.disabled():
        print(f"\n[Q5] 'SGML' found under attributes: {sorted(result)}")


def test_bench_q5_whole_corpus(benchmark, capsys):
    """The same grep over every article of a 20-document corpus."""
    store = build_corpus_store(20)
    query = """
        select name(ATT_a)
        from a in Articles, a PATH_p.ATT_a(val)
        where val contains ("calculus")
    """
    result = benchmark(store.query, query)
    with capsys.disabled():
        print(f"\n[Q5-corpus] 'calculus' found under attributes: "
              f"{sorted(result)}")


def test_bench_q5_algebra(benchmark, figure2_store):
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    engine = figure2_store._engine
    plan = compile_query(engine.translate(Q5), figure2_store.schema,
                         engine.ctx)
    result = benchmark(execute_plan, plan, engine.ctx)
    assert set(result) == {"status"}
