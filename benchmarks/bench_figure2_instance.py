"""Experiment F2 — Figure 2: parsing the document instance.

The Figure-2 document omits every omissible end tag; parsing it
exercises the tag-inference machinery.  The scaling benches measure
parse+validate throughput on generated documents.
"""

from repro.corpus.article_dtd import article_dtd
from repro.corpus.sample_article import SAMPLE_ARTICLE
from repro.sgml.instance import element_count
from repro.sgml.instance_parser import parse_document
from repro.sgml.validator import validation_problems


def test_bench_parse_figure2(benchmark, capsys):
    dtd = article_dtd()
    tree = benchmark(parse_document, SAMPLE_ARTICLE, dtd)
    assert tree.name == "article"
    assert element_count(tree) == 17
    assert validation_problems(tree, dtd) == []
    with capsys.disabled():
        inferred = sum(1 for e in _walk(tree) if e.end_inferred)
        print(f"\n[F2] Figure 2 parsed: {element_count(tree)} elements, "
              f"{inferred} end tags inferred, document valid")
        print(f"     authors: "
              f"{[a.text_content() for a in tree.find_all('author')]}")


def _walk(tree):
    from repro.sgml.instance import iter_elements
    return iter_elements(tree)


def test_bench_validate_figure2(benchmark):
    dtd = article_dtd()
    tree = parse_document(SAMPLE_ARTICLE, dtd)
    problems = benchmark(validation_problems, tree, dtd)
    assert problems == []


def test_bench_parse_corpus_throughput(benchmark, corpus_texts, capsys):
    """Parse 20 generated documents (fully tagged serialization)."""
    dtd = article_dtd()

    def parse_all():
        return [parse_document(text, dtd) for text in corpus_texts]

    trees = benchmark(parse_all)
    total_elements = sum(element_count(t) for t in trees)
    total_bytes = sum(len(t) for t in corpus_texts)
    with capsys.disabled():
        print(f"\n[F2] corpus parse: {len(trees)} documents, "
              f"{total_elements} elements, {total_bytes} bytes")


def test_bench_round_trip(benchmark, corpus_texts):
    """parse -> write -> parse equals the first parse."""
    from repro.sgml.writer import write_document
    dtd = article_dtd()
    text = corpus_texts[0]

    def round_trip():
        tree = parse_document(text, dtd)
        return parse_document(write_document(tree, dtd), dtd)

    tree = benchmark(round_trip)
    assert tree == parse_document(text, dtd)
