"""Experiments C1–C8 — the Section-5 calculus examples.

Each benchmark evaluates one of the paper's worked calculus queries on
the Knuth_Books / Letters databases (the same queries the unit tests in
tests/calculus/test_paper_examples.py pin down).
"""

import pytest

from repro.calculus import (
    And,
    AttVar,
    Bind,
    Const,
    DataVar,
    Eq,
    EvalContext,
    Exists,
    FunTerm,
    Index,
    Name,
    Not,
    PathAtom,
    PathTerm,
    PathVar,
    Pred,
    Query,
    Sel,
    SetBind,
    check_safety,
    evaluate_query,
    infer_types,
)
from repro.corpus.knuth import build_knuth_database
from repro.corpus.letters import build_letters_database

X, Y, I, J, K = (DataVar(n) for n in "XYIJK")
P, Q2 = PathVar("P"), PathVar("Q")
A = AttVar("A")


@pytest.fixture(scope="module")
def knuth_ctx():
    return EvalContext(build_knuth_database())


@pytest.fixture(scope="module")
def letters_ctx():
    return EvalContext(build_letters_database())


def c1_query():
    """In which attribute can "Jo" be found?"""
    return Query([A], Exists([P, X], And(
        PathAtom(Name("Knuth_Books"), PathTerm([P, Sel(A), Bind(X)])),
        Eq(X, Const("Jo")))))


def c2_query():
    """Which paths lead to "Jo"?"""
    return Query([P], Exists([X], And(
        PathAtom(Name("Knuth_Books"), PathTerm([P, Bind(X)])),
        Eq(X, Const("Jo")))))


def test_bench_c1_attribute_of_jo(benchmark, knuth_ctx, capsys):
    result = benchmark(evaluate_query, c1_query(), knuth_ctx)
    assert set(result) == {"author"}
    with capsys.disabled():
        print("\n[C1] 'Jo' is found in attribute: author")


def test_bench_c2_paths_to_jo(benchmark, knuth_ctx, capsys):
    result = benchmark(evaluate_query, c2_query(), knuth_ctx)
    assert len(result) == 1
    with capsys.disabled():
        print(f"\n[C2] path to 'Jo': {list(result)[0]}")


def test_bench_c5_length_restricted(benchmark, knuth_ctx):
    query = Query([X], Exists([P, A], And(
        PathAtom(Name("Knuth_Books"), PathTerm([P, Sel(A), Bind(X)])),
        Pred("contains", [FunTerm("name", [A]), Const("(t|T)itle")]),
        Pred("lt", [FunTerm("length", [P]), Const(3)]))))
    result = benchmark(evaluate_query, query, knuth_ctx)
    assert "Fundamental Algorithms" in set(result)


def test_bench_c6_review_restriction(benchmark, knuth_ctx):
    from repro.calculus import In, PathApply
    query = Query([X], Exists([P], And(
        PathAtom(Name("Knuth_Books"),
                 PathTerm([P, Bind(X), Sel("title")])),
        In(Const("D. Scott"), PathApply(X, PathTerm([Sel("review")]))))))
    result = benchmark(evaluate_query, query, knuth_ctx)
    assert len(result) >= 3


def test_bench_c8_letters_dagger(benchmark, letters_ctx):
    query = Query([Y], Exists([A, I, J, K], And(
        PathAtom(Name("Letters"), PathTerm([
            Index(I), Sel(A), Bind(Y), Index(J), Sel("to")])),
        PathAtom(Name("Letters"), PathTerm([
            Index(I), Sel(A), Index(K), Sel("from")])),
        Pred("lt", [J, K]))))
    result = benchmark(evaluate_query, query, letters_ctx)
    assert len(result) == 2


def test_bench_safety_analysis(benchmark):
    """The static range-restriction check alone."""
    query = c1_query()
    benchmark(check_safety, query)


def test_bench_type_inference(benchmark, knuth_ctx):
    """Type inference with the α-union construction (Section 5.3)."""
    from repro.corpus.knuth import knuth_schema
    schema = knuth_schema()
    query = Query([X], Exists([P], PathAtom(
        Name("Knuth_Books"), PathTerm([P, Bind(X), Sel("title")]))))
    types = benchmark(infer_types, query, schema)
    from repro.oodb.types import UnionType
    assert isinstance(types[X], UnionType)
