"""Experiment Q3 — path variables: all titles in my_article.

    select t from my_article PATH_p.title(t)

Compared against a hand-written traversal to validate the result, and
measured for both the `..` sugar and the explicit form.
"""

Q3 = "select t from my_article PATH_p.title(t)"
Q3_SUGAR = "select t from my_article .. .title(t)"


def manual_titles(store):
    """Hand-coded traversal collecting every title object."""
    titles = set()
    article = store.instance.deref(store.instance.root("my_article"))
    titles.add(article.get("title"))
    for section_oid in article.get("sections"):
        section = store.instance.deref(section_oid)
        payload = section.marked_value
        titles.add(payload.get("title"))
        if payload.has_attribute("subsectns"):
            for sub_oid in payload.get("subsectns"):
                titles.add(
                    store.instance.deref(sub_oid).get("title"))
    return titles


def test_bench_q3(benchmark, figure2_store, capsys):
    result = benchmark(figure2_store.query, Q3)
    assert set(result) == manual_titles(figure2_store)
    with capsys.disabled():
        texts = sorted(figure2_store.text(t) for t in result)
        print(f"\n[Q3] titles found in my_article: {texts}")


def test_bench_q3_sugar(benchmark, figure2_store):
    result = benchmark(figure2_store.query, Q3_SUGAR)
    assert set(result) == manual_titles(figure2_store)


def test_bench_q3_with_paths_returned(benchmark, figure2_store):
    result = benchmark(
        figure2_store.query,
        "select PATH_p, t from my_article PATH_p.title(t)")
    assert len(result) >= 3


def test_bench_q3_algebra(benchmark, figure2_store):
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    engine = figure2_store._engine
    plan = compile_query(engine.translate(Q3), figure2_store.schema,
                         engine.ctx)
    result = benchmark(execute_plan, plan, engine.ctx)
    assert set(result) == manual_titles(figure2_store)
