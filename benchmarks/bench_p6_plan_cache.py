"""Experiment P6 — prepared-query plan cache (serving path).

The algebraization of Section 5.4 is a pure function of query text and
schema, so its output can be cached.  We measure, per representative
query and backend:

  (i)  the cold pipeline (cache cleared every iteration:
       parse → translate → safety → inference → compile → execute),
  (ii) the warm path (plan served from the cache: execute only),
  (iii) a prepared handle (``prepare()`` once, ``run()`` many), and
  (iv) batch submission via ``query_many`` with duplicate texts.

Expected shape: the front end is a fixed per-query cost, so warm/cold
speedup is largest for selective queries (cheap execution) and smallest
for enumerative ones whose runtime is execution-dominated.  Epoch bumps
put one recompilation back on the next run — measured in (v).
"""

import pytest

from conftest import build_corpus_store

QUERIES = {
    "q3_titles": "select t from my_article PATH_p.title(t)",
    "q5_grep": """select name(ATT_a)
                  from my_article PATH_p.ATT_a(val)
                  where val contains ("final")""",
    "scan_filter": """select a from a in Articles
                      where a.status = "final" """,
    "contains_join": """select s.title
                        from a in Articles, s in a.sections
                        where s.title contains ("the" or "of")""",
}

BACKENDS = ("calculus", "algebra")


def _store(backend):
    store = build_corpus_store(20, backend=backend)
    from repro.corpus import SAMPLE_ARTICLE
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.build_text_index()
    return store


@pytest.fixture(scope="module", params=BACKENDS)
def store(request):
    return _store(request.param)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p6_cold(benchmark, store, name):
    text = QUERIES[name]

    def cold():
        store.plan_cache.clear()
        return store.query(text)

    result = benchmark(cold)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["backend"] = store._engine.backend


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p6_warm(benchmark, store, name):
    text = QUERIES[name]
    store.query(text)                       # prime the cache
    result = benchmark(store.query, text)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["backend"] = store._engine.backend


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p6_prepared(benchmark, store, name):
    prepared = store.prepare(QUERIES[name])
    result = benchmark(prepared.run)
    assert result == store.query(QUERIES[name])
    benchmark.extra_info["backend"] = store._engine.backend


def test_bench_p6_query_many_amortizes(benchmark, store):
    # 4 distinct plans, 20 submissions — the batch API pays 4 lookups
    batch = [text for text in QUERIES.values() for _ in range(5)]
    results = benchmark(store.query_many, batch)
    assert len(results) == len(batch)


def test_bench_p6_epoch_bump_recompiles(benchmark, store, capsys):
    """Worst case for the cache: every run follows a mutation, so every
    run recompiles.  This bounds the overhead an edit adds to the next
    query (one front-end pass) versus the steady warm state."""
    text = QUERIES["q3_titles"]

    def edit_then_query():
        store.plan_cache.bump_epoch()
        return store.query(text)

    result = benchmark(edit_then_query)
    stats = store.stats()
    with capsys.disabled():
        print(f"\n[P6] {store._engine.backend}: epoch {stats['epoch']}, "
              f"{stats['plan_cache']['entries']} cached plan(s), "
              f"{len(result)} rows")
