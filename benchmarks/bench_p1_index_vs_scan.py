"""Experiment P1 — full-text index vs naive scan (Section 4.1).

The paper motivates "the integration of appropriate pattern matching
algorithms and full text indexing mechanisms"; this bench quantifies the
claim on our substrate: evaluating ``contains`` by scanning every
object's reconstructed text versus probing the positional inverted
index (plus the exact re-check on candidates only).

Expected shape: the index probe wins by a growing factor as the corpus
grows — the scan is O(corpus), the probe O(matches).
"""

import pytest

from conftest import CORPUS_SIZES, build_corpus_store

NEEDLE = '"SGML" and "OODBMS"'


def scan_query(store):
    return store.query(f"""
        select a from a in Articles
        where a contains ({NEEDLE})
    """)


def index_probe(store):
    from repro.text import parse_pattern_expr
    expression = parse_pattern_expr(NEEDLE)
    candidates = store.text_index.candidates(expression)
    articles = set(store.instance.root("Articles"))
    hits = []
    for oid in candidates & articles:
        if expression.holds_on_text(store.text(oid)):
            hits.append(oid)
    return hits


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_bench_p1_naive_scan(benchmark, size):
    store = build_corpus_store(size)
    result = benchmark(scan_query, store)
    assert len(result) >= 0
    benchmark.extra_info["corpus"] = size
    benchmark.extra_info["matches"] = len(result)


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_bench_p1_index_probe(benchmark, size, capsys):
    store = build_corpus_store(size)
    store.build_text_index()
    hits = benchmark(index_probe, store)
    # exactness: probe results equal the naive scan
    assert set(hits) == set(scan_query(store))
    benchmark.extra_info["corpus"] = size
    with capsys.disabled():
        print(f"\n[P1] corpus={size}: index probe returns "
              f"{len(hits)} articles (identical to the scan)")


def test_bench_p1_index_construction(benchmark):
    """Index build cost (amortized over all subsequent queries)."""
    store = build_corpus_store(20)
    index = benchmark(store.build_text_index)
    assert index.document_count > 0


def test_bench_p1_algebra_with_index_filter(benchmark, capsys):
    """The optimizer's IndexFilter plan vs the unoptimized plan."""
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    from repro.algebra.optimizer import optimize
    store = build_corpus_store(60)
    store.build_text_index()
    engine = store._engine
    query = engine.translate(f"""
        select a from a in Articles
        where a contains ({NEEDLE})
    """)
    plan = optimize(compile_query(query, store.schema, engine.ctx))
    result = benchmark(execute_plan, plan, engine.ctx)
    baseline = execute_plan(
        compile_query(query, store.schema, engine.ctx), engine.ctx)
    assert result == baseline
    with capsys.disabled():
        print(f"\n[P1] optimized plan: {len(result)} matches in "
              "60 articles via IndexFilter")
