"""Experiment P12 — the cost-based optimizer (repro.stats).

Three measurements, emitted to ``BENCH_COSTMODEL.json``:

* **pruning ablation** — an impossible ``contains`` with and without
  the cost stage: statically pruning the provably-empty branches must
  beat probing each of them at runtime, and the deterministic
  ``algebra.branches_pruned_static`` counter is asserted alongside the
  timing;
* **branch-order ablation** — a satisfiable ``contains``: the cost
  stage orders the union cheapest-first (asserted structurally on the
  annotated estimates), at no measurable execution cost vs. the
  unordered factored plan;
* **P4 crossover re-run** — the P4 query set through the calculus
  interpreter, the unoptimized plan, the factored plan and the costed
  plan, recording where compilation + costing pays off.

Timings from shared runners are indicative; every scenario therefore
also records (and asserts on) result equality and the deterministic
counters.  ``COSTMODEL_BENCH_ROUNDS`` shrinks the run for CI smoke;
``python benchmarks/bench_p12_costmodel.py`` runs the whole experiment
standalone at tiny scale.
"""

import json
import os
import statistics
import time

import pytest

from conftest import build_corpus_store
from repro.calculus import evaluate_query
from repro.corpus import SAMPLE_ARTICLE
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan
from repro.algebra.operators import UnionOp
from repro.algebra.optimizer import optimize
from repro.observe import MetricsRegistry

ROUNDS = int(os.environ.get("COSTMODEL_BENCH_ROUNDS", "30"))
CORPUS = int(os.environ.get("COSTMODEL_BENCH_CORPUS", "20"))

IMPOSSIBLE = ('select t from a in Articles, a PATH_p.title(t) '
              'where a contains ("xyzzynotthere")')
SATISFIABLE = ('select t from a in Articles, a PATH_p.title(t) '
               'where a contains ("SGML")')

CROSSOVER_QUERIES = {
    "q3_titles": "select t from my_article PATH_p.title(t)",
    "q5_grep": """select name(ATT_a)
                  from my_article PATH_p.ATT_a(val)
                  where val contains ("final")""",
    "scan_filter": """select a from a in Articles
                      where a.status = "final" """,
    "deep_join": """select t from a in Articles, s in a.sections,
                                  a PATH_p.title(t)
                    where a.status = "final" """,
}

RESULTS: dict = {"experiment": "COSTMODEL", "scenarios": {}}


def build_store(size=CORPUS):
    store = build_corpus_store(size, backend="algebra")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.build_text_index()
    store.build_structural_index()
    return store


def _median_ms(thunk, rounds=ROUNDS) -> float:
    thunk()  # warm-up
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        thunk()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples) * 1000.0


def _plans(store, text, metrics=None):
    """(query, factored-without-cost, costed) for one query text."""
    query = store._engine.translate(text)
    plan = compile_query(query, store.schema)
    factored = optimize(plan, verify="raise", query=query)
    costed = optimize(plan, verify="raise", query=query,
                      stats=store.stats_manager.snapshot(),
                      metrics=metrics)
    return query, factored, costed


def _evidence_unions(plan):
    seen, stack, found = set(), [plan], []
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if (isinstance(node, UnionOp)
                and node.cost_evidence is not None):
            found.append(node)
        stack.extend(node.children())
    return found


def run_pruning_ablation(store, rounds=ROUNDS) -> dict:
    metrics = MetricsRegistry()
    query, factored, costed = _plans(store, IMPOSSIBLE, metrics)
    engine = store._engine
    assert (execute_plan(costed, engine.ctx.fork())
            == execute_plan(factored, engine.ctx.fork()))
    counters = metrics.snapshot()["counters"]
    pruned_static = counters.get("algebra.branches_pruned_static", 0)
    assert pruned_static > 0, "static pruning never fired"
    summary = {
        "query": "impossible_contains",
        "branches_pruned_static": pruned_static,
        "uncosted_ms": _median_ms(
            lambda: execute_plan(factored, engine.ctx.fork()), rounds),
        "costed_ms": _median_ms(
            lambda: execute_plan(costed, engine.ctx.fork()), rounds),
    }
    summary["speedup"] = (summary["uncosted_ms"]
                          / max(summary["costed_ms"], 1e-9))
    RESULTS["scenarios"]["pruning_ablation"] = summary
    return summary


def run_branch_order_ablation(store, rounds=ROUNDS) -> dict:
    query, factored, costed = _plans(store, SATISFIABLE)
    engine = store._engine
    assert (execute_plan(costed, engine.ctx.fork())
            == execute_plan(factored, engine.ctx.fork()))
    unions = _evidence_unions(costed)
    assert unions, "no reordered union in the costed plan"
    # cheapest-first: the annotated branch costs are non-decreasing
    ordered = all(
        all(union.branches[i].est_cost <= union.branches[i + 1].est_cost
            for i in range(len(union.branches) - 1))
        for union in unions)
    summary = {
        "query": "satisfiable_contains",
        "reordered_unions": len(unions),
        "cheapest_first": ordered,
        "uncosted_ms": _median_ms(
            lambda: execute_plan(factored, engine.ctx.fork()), rounds),
        "costed_ms": _median_ms(
            lambda: execute_plan(costed, engine.ctx.fork()), rounds),
    }
    RESULTS["scenarios"]["branch_order_ablation"] = summary
    return summary


def run_crossover(store, rounds=ROUNDS) -> dict:
    engine = store._engine
    summary: dict = {}
    for name, text in sorted(CROSSOVER_QUERIES.items()):
        query = engine.translate(text)
        plan = compile_query(query, store.schema)
        factored = optimize(plan, verify="raise", query=query)
        costed = optimize(plan, verify="raise", query=query,
                          stats=store.stats_manager.snapshot())
        reference = evaluate_query(query, engine.ctx.fork())
        assert execute_plan(costed, engine.ctx.fork()) == reference
        entry = {
            "calculus_ms": _median_ms(
                lambda: evaluate_query(query, engine.ctx.fork()),
                rounds),
            "unoptimized_ms": _median_ms(
                lambda: execute_plan(plan, engine.ctx.fork()), rounds),
            "factored_ms": _median_ms(
                lambda: execute_plan(factored, engine.ctx.fork()),
                rounds),
            "costed_ms": _median_ms(
                lambda: execute_plan(costed, engine.ctx.fork()),
                rounds),
            "rows": len(reference),
        }
        entry["costed_vs_calculus"] = (entry["calculus_ms"]
                                       / max(entry["costed_ms"], 1e-9))
        summary[name] = entry
    RESULTS["scenarios"]["p4_crossover"] = summary
    return summary


def emit() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    out_dir = os.environ.get(
        "BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(here), "bench_results"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_COSTMODEL.json")
    with open(path, "w") as handle:
        json.dump(RESULTS, handle, indent=2)
        handle.write("\n")
    print(f"[bench] wrote {path} "
          f"({len(RESULTS['scenarios'])} scenarios)")
    return path


@pytest.fixture(scope="module", autouse=True)
def _emit_after_run():
    yield
    if RESULTS["scenarios"]:
        emit()


@pytest.fixture(scope="module")
def store():
    return build_store()


def test_bench_p12_pruning_ablation(store):
    summary = run_pruning_ablation(store)
    assert summary["branches_pruned_static"] == 13
    # timings are indicative on shared runners: record the speedup,
    # assert only that pruning is not a slowdown beyond noise
    assert summary["costed_ms"] <= summary["uncosted_ms"] * 1.5


def test_bench_p12_branch_order_ablation(store):
    summary = run_branch_order_ablation(store)
    assert summary["cheapest_first"] is True
    assert summary["reordered_unions"] >= 1


def test_bench_p12_crossover(store):
    summary = run_crossover(store)
    for name, entry in summary.items():
        assert entry["costed_ms"] > 0, name


def main() -> None:
    """Standalone tiny-scale run (the CI smoke entry point)."""
    store = build_store(size=8)
    run_pruning_ablation(store, rounds=5)
    run_branch_order_ablation(store, rounds=5)
    run_crossover(store, rounds=5)
    emit()


if __name__ == "__main__":
    main()
