"""Experiment F3 — Figure 3: the DTD → O₂ schema mapping.

Compiles the Figure-1 DTD and prints the regenerated Figure-3 class
declarations; the assertions pin the class inventory, the union/ordered
tuple structures and the constraint lines to the paper's figure.
"""

from repro.corpus.article_dtd import article_dtd
from repro.mapping.dtd_to_schema import map_dtd
from repro.oodb.display import format_schema

FIGURE3_FRAGMENTS = [
    "class Article public type tuple (title: Title, authors: "
    "list (Author)",
    "class Title inherit Text",
    "class Section public type union (a1: tuple (title: Title, "
    "bodies: list (Body)), a2: tuple",
    "class Body public type union (figure: Figure, paragr: Paragr)",
    "class Picture inherit Bitmap",
    "name Articles: list (Article)",
    "status in set('final', 'draft')",
    "authors != list()",
]


def test_bench_map_figure1_to_figure3(benchmark, capsys):
    dtd = article_dtd()
    mapped = benchmark(map_dtd, dtd)
    rendered = format_schema(mapped.schema, mapped.constraints)
    for fragment in FIGURE3_FRAGMENTS:
        assert fragment in rendered, fragment
    with capsys.disabled():
        print("\n[F3] Figure 3 regenerated from Figure 1:")
        for line in rendered.splitlines():
            print("  " + line)


def test_bench_map_wide_dtd(benchmark):
    """Mapping scales with DTD width (120 elements)."""
    from repro.sgml.dtd_parser import parse_dtd
    declarations = ["<!ELEMENT root - - (c0, c1, c2)>"]
    for i in range(120):
        declarations.append(
            f"<!ELEMENT c{i} - O (#PCDATA)>")
        declarations.append(
            f"<!ATTLIST c{i} kind (x | y) x>")
    dtd = parse_dtd("\n".join(declarations))
    mapped = benchmark(map_dtd, dtd)
    assert len(mapped.schema.class_names) == 123  # + Text, Bitmap


def test_bench_inverse_mapping_round_trip(benchmark, capsys):
    """Footnote 1: instance -> SGML -> instance round trip."""
    from repro.corpus.sample_article import sample_article_tree
    from repro.mapping.inverse import export_document
    from repro.mapping.loader import DocumentLoader
    mapped = map_dtd(article_dtd())
    loader = DocumentLoader(mapped)
    oid = loader.load(sample_article_tree())

    exported = benchmark(export_document, mapped, loader.instance, oid,
                         loader.id_tokens)
    assert exported == sample_article_tree()
    with capsys.disabled():
        print("\n[F3-inverse] Figure 2 objects re-serialise to the "
              "original document (footnote-1 inverse mapping)")


def test_bench_schema_to_dtd(benchmark):
    """Footnote 1: schema -> DTD regeneration."""
    from repro.mapping.inverse import schema_to_dtd
    from repro.sgml.dtd_parser import parse_dtd
    mapped = map_dtd(article_dtd())
    text = benchmark(schema_to_dtd, mapped)
    regenerated = parse_dtd(text)
    assert set(regenerated.element_names) == set(
        article_dtd().element_names)


def test_bench_load_figure2_into_database(benchmark, capsys):
    """Figure 2 -> objects (the Section-3 semantic actions)."""
    from repro.corpus.sample_article import sample_article_tree
    from repro.mapping.loader import DocumentLoader
    mapped = map_dtd(article_dtd())
    tree = sample_article_tree()

    def load():
        loader = DocumentLoader(mapped)
        loader.load(tree)
        return loader

    loader = benchmark(load)
    assert loader.instance.object_count() == 17
    loader.instance.check()
    mapped.constraints.check_instance(loader.instance)
    with capsys.disabled():
        print("\n[F3] Figure 2 loaded: 17 objects, instance well-typed, "
              "all Figure-3 constraints hold")
