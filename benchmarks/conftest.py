"""Shared fixtures for the benchmark harness.

Corpora are built once per session; every benchmark then measures only
the operation under study.  Sizes are chosen so the full harness runs in
well under a minute while still showing the scaling trends recorded in
EXPERIMENTS.md.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.sgml.writer import write_document


CORPUS_SIZES = (5, 20, 60)


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so
    ``pytest -m "not bench"`` gives a fast inner loop while the default
    invocation still runs the whole harness.

    The hook sees the whole session's items (it runs in every conftest),
    so mark only the ones collected from this directory.
    """
    import os
    here = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        if str(item.fspath).startswith(here + os.sep):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def figure2_store():
    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.load_text(SAMPLE_ARTICLE, name="my_old_article")
    return store


def build_corpus_store(size: int, seed: int = 42,
                       backend: str = "calculus") -> DocumentStore:
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    for tree in generate_corpus(size, seed=seed):
        store.load_tree(tree, validate=False)
    return store


@pytest.fixture(scope="session")
def corpus_store():
    """The default mid-size corpus (20 articles)."""
    return build_corpus_store(20)


@pytest.fixture(scope="session")
def corpus_texts():
    """Raw SGML text of the mid-size corpus (for parser benchmarks)."""
    dtd_store = DocumentStore(ARTICLE_DTD)
    return [write_document(tree, dtd_store.dtd)
            for tree in generate_corpus(20, seed=42)]
