"""Shared fixtures for the benchmark harness.

Corpora are built once per session; every benchmark then measures only
the operation under study.  Sizes are chosen so the full harness runs in
well under a minute while still showing the scaling trends recorded in
EXPERIMENTS.md.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.sgml.writer import write_document


CORPUS_SIZES = (5, 20, 60)


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so
    ``pytest -m "not bench"`` gives a fast inner loop while the default
    invocation still runs the whole harness.

    The hook sees the whole session's items (it runs in every conftest),
    so mark only the ones collected from this directory.
    """
    import os
    here = os.path.dirname(os.path.abspath(__file__))
    for item in items:
        if str(item.fspath).startswith(here + os.sep):
            item.add_marker(pytest.mark.bench)


def pytest_sessionfinish(session, exitstatus):
    """Emit one ``BENCH_P<n>.json`` per experiment after a benchmark
    run — name, median, rounds/iterations, and corpus sizes — so CI can
    archive machine-readable results next to the rendered table."""
    import json
    import os
    import re

    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_tag: dict = {}
    for bench in bench_session.benchmarks:
        if bench.has_error:
            continue
        match = re.search(r"bench_(p\d+)", bench.fullname)
        tag = match.group(1).upper() if match else "MISC"
        by_tag.setdefault(tag, []).append({
            "name": bench.name,
            "median_seconds": bench.stats.median,
            "rounds": bench.stats.rounds,
            "iterations": bench.iterations,
            "params": bench.params,
            "extra_info": dict(bench.extra_info),
        })
    here = os.path.dirname(os.path.abspath(__file__))
    out_dir = os.environ.get(
        "BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(here), "bench_results"))
    os.makedirs(out_dir, exist_ok=True)
    for tag, entries in sorted(by_tag.items()):
        path = os.path.join(out_dir, f"BENCH_{tag}.json")
        payload = {
            "experiment": tag,
            "corpus_sizes": list(CORPUS_SIZES),
            "benchmarks": sorted(entries, key=lambda e: e["name"]),
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"[bench] wrote {path} ({len(entries)} benchmarks)")


@pytest.fixture(scope="session")
def figure2_store():
    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    store.load_text(SAMPLE_ARTICLE, name="my_old_article")
    return store


def build_corpus_store(size: int, seed: int = 42,
                       backend: str = "calculus") -> DocumentStore:
    store = DocumentStore(ARTICLE_DTD, backend=backend)
    for tree in generate_corpus(size, seed=seed):
        store.load_tree(tree, validate=False)
    return store


@pytest.fixture(scope="session")
def corpus_store():
    """The default mid-size corpus (20 articles)."""
    return build_corpus_store(20)


@pytest.fixture(scope="session")
def corpus_texts():
    """Raw SGML text of the mid-size corpus (for parser benchmarks)."""
    dtd_store = DocumentStore(ARTICLE_DTD)
    return [write_document(tree, dtd_store.dtd)
            for tree in generate_corpus(20, seed=42)]
