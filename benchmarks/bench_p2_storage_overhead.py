"""Experiment P2 — the Section-3 storage overhead.

"The representation of SGML documents in an OODB such as O₂ comes with
some extra cost in storage.  This is typically the price paid to improve
access flexibility and performance."

We measure that cost: raw SGML bytes vs (i) the sum of encoded object
values, (ii) the full snapshot file (including oid bookkeeping), across
corpus sizes — and the flexibility bought, via a direct-access probe
that the flat text cannot answer without a full parse.
"""

import pytest

from conftest import CORPUS_SIZES
from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.sgml.writer import write_document


def build(size: int):
    store = DocumentStore(ARTICLE_DTD)
    texts = []
    for tree in generate_corpus(size, seed=42):
        store.load_tree(tree, validate=False)
        texts.append(write_document(tree, store.dtd, minimize=True))
    return store, texts


@pytest.mark.parametrize("size", CORPUS_SIZES)
def test_bench_p2_overhead(benchmark, size, capsys):
    store, texts = build(size)
    raw_bytes = sum(len(t.encode()) for t in texts)

    snapshot = benchmark(store.store.snapshot_bytes)

    value_bytes = store.store.total_bytes()
    with capsys.disabled():
        print(f"\n[P2] corpus={size:3d}: raw SGML {raw_bytes:8d} B | "
              f"object values {value_bytes:8d} B "
              f"({value_bytes / raw_bytes:4.2f}x) | "
              f"snapshot {len(snapshot):8d} B "
              f"({len(snapshot) / raw_bytes:4.2f}x)")
    # the paper's qualitative claim: some extra cost, bounded
    assert value_bytes > 0
    assert len(snapshot) < raw_bytes * 5


def test_bench_p2_flexibility_direct_access(benchmark, capsys):
    """What the overhead buys: jump to section titles without parsing."""
    store, texts = build(20)

    def direct_titles():
        titles = []
        for article_oid in store.instance.root("Articles"):
            article = store.instance.deref(article_oid)
            for section_oid in article.get("sections"):
                section = store.instance.deref(section_oid)
                titles.append(section.marked_value.get("title"))
        return titles

    titles = benchmark(direct_titles)
    assert len(titles) > 20
    with capsys.disabled():
        print(f"\n[P2] direct access: {len(titles)} section titles "
              "reached through object references (no re-parse)")


def test_bench_p2_flat_text_equivalent(benchmark):
    """The flat-file counterpart: re-parse everything to reach titles."""
    from repro.corpus.article_dtd import article_dtd
    from repro.sgml.instance_parser import parse_document
    _, texts = build(20)
    dtd = article_dtd()

    def reparse_titles():
        titles = []
        for text in texts:
            tree = parse_document(text, dtd)
            for section in tree.find_all("section"):
                titles.append(section.first("title"))
        return titles

    titles = benchmark(reparse_titles)
    assert len(titles) > 20
