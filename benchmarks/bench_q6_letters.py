"""Experiment Q6 — ordered tuples queried by attribute position.

    select letter
    from letter in Letters, letter[i].from, letter[j].to
    where i < j

Run on the paper's 5-letter database (result pinned) and on synthetic
corpora of growing size.
"""

import pytest

from repro.corpus.letters import build_letters_database, generate_letters
from repro.o2sql import QueryEngine

Q6 = """
    select letter
    from letter in Letters, letter[i].from, letter[j].to
    where i < j
"""


@pytest.fixture(scope="module")
def paper_engine():
    return QueryEngine(build_letters_database())


def test_bench_q6_paper_database(benchmark, paper_engine, capsys):
    result = benchmark(paper_engine.run, Q6)
    assert len(result) == 3
    assert all(letter.marker == "a1" for letter in result)
    with capsys.disabled():
        print("\n[Q6] 3 of 5 sample letters have the sender before "
              "the recipient (the a1-marked ones)")


@pytest.mark.parametrize("size", [100, 400])
def test_bench_q6_scaling(benchmark, size, capsys):
    engine = QueryEngine(build_letters_database(generate_letters(size)))
    result = benchmark(engine.run, Q6)
    # cross-check against the markers
    expected = sum(
        1 for letter in engine.instance.root("Letters")
        if letter.marker == "a1")
    assert len(result) == expected
    with capsys.disabled():
        print(f"\n[Q6-scale] {len(result)} of {size} letters are "
              "sender-first")


def test_bench_q6_algebra(benchmark, paper_engine):
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    plan = compile_query(paper_engine.translate(Q6),
                         paper_engine.instance.schema, paper_engine.ctx)
    result = benchmark(execute_plan, plan, paper_engine.ctx)
    assert len(result) == 3


def test_bench_q6_dagger_calculus_form(benchmark, paper_engine):
    """The explicit (†) form with an attribute variable (Section 5.3)."""
    from repro.calculus import (
        And, AttVar, Bind, DataVar, Exists, Index, Name, PathAtom,
        PathTerm, Pred, Query, Sel, evaluate_query)
    Y, I, J, K = (DataVar(n) for n in "YIJK")
    A = AttVar("A")
    dagger = Query([Y], Exists([A, I, J, K], And(
        PathAtom(Name("Letters"), PathTerm([
            Index(I), Sel(A), Bind(Y), Index(J), Sel("to")])),
        PathAtom(Name("Letters"), PathTerm([
            Index(I), Sel(A), Index(K), Sel("from")])),
        Pred("lt", [J, K]))))
    result = benchmark(evaluate_query, dagger, paper_engine.ctx)
    assert len(result) == 2  # recipients-first letters (to before from)
