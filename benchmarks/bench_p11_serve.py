"""Experiment P11 — the serving layer under mixed read/update traffic.

Unlike the P1–P10 experiments this one is *not* a pytest-benchmark
timing of a single call: the unit of measurement is a whole traffic
run — N client threads driving the paper's query mix through
:class:`repro.serve.QueryServer` — and the interesting numbers are
throughput (qps) and the latency tail (p50/p99), which the
:class:`repro.serve.LoadGenerator` computes itself.  Results are
emitted directly to ``BENCH_SERVE.json``:

* **worker scaling** — the same workload at 1, 4 and 16 pool workers;
* **request collapsing** — a 90%-duplicate workload with collapsing
  on vs off; the ISSUE's acceptance bar (collapsing cuts executed
  queries at least 2×) is asserted, not just recorded;
* **writer interference** — read p99 with a concurrent writer
  applying in-database edits vs the no-writer baseline; the bar
  (within ``SERVE_BENCH_P99_FACTOR``, default 3×) is asserted.

``SERVE_BENCH_CLIENTS`` / ``SERVE_BENCH_REQUESTS`` shrink the run for
the CI smoke job; ``python benchmarks/bench_p11_serve.py`` runs the
whole experiment standalone at tiny scale.
"""

import json
import os

import pytest

from repro import DocumentStore, QueryServer
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.serve import LoadGenerator

CLIENTS = int(os.environ.get("SERVE_BENCH_CLIENTS", "8"))
REQUESTS = int(os.environ.get("SERVE_BENCH_REQUESTS", "60"))
P99_FACTOR = float(os.environ.get("SERVE_BENCH_P99_FACTOR", "3.0"))

QUERY_MIX = [
    "select t from my_article PATH_p.title(t)",
    "select ss from a in Articles, s in a.sections, ss in s.subsectns",
    """select s.title from a in Articles, s in a.sections
       where s.title contains ("SGML")""",
    "select a.title from a in Articles",
    """select name(ATT_a) from my_article PATH_p.ATT_a(val)
       where val contains ("final")""",
]

RESULTS: dict = {"experiment": "SERVE", "scenarios": {}}


def build_store() -> DocumentStore:
    store = DocumentStore(ARTICLE_DTD, backend="algebra")
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    for tree in generate_corpus(10, seed=42):
        store.load_tree(tree, validate=False)
    store.build_text_index()
    store.build_structural_index()
    return store


def run_scenario(name: str, *, workers: int, collapse: bool = True,
                 hot_fraction: float = 0.0, with_writer: bool = False,
                 clients: int = CLIENTS,
                 requests: int = REQUESTS) -> dict:
    store = build_store()
    writer = None
    if with_writer:
        title = max(
            store.query("select s.title from a in Articles, "
                        "s in a.sections"),
            key=lambda o: o.number)
        edits = iter(range(10_000))

        def writer():
            store.update_text(
                title, f"Traffic Edit {next(edits)} Heading")

    with QueryServer(workers=workers, collapse=collapse,
                     max_pending=4096) as server:
        server.add_tenant("bench", store)
        # write_interval keeps the edit cadence below saturation: every
        # epoch bump forces one recompile per query shape (the plan
        # cache's correctness contract), and back-to-back edits would
        # measure a swamped compiler, not serving interference
        generator = LoadGenerator(
            server, "bench", QUERY_MIX, clients=clients,
            requests_per_client=requests, hot_fraction=hot_fraction,
            seed=11, writer=writer, write_interval=0.25,
            timeout=120.0)
        report = generator.run()
        metrics = server.metrics
        summary = report.summary()
        summary.update({
            "workers": workers,
            "collapse": collapse,
            "hot_fraction": hot_fraction,
            "with_writer": with_writer,
            "flights": metrics.get("serve.flights"),
            "executed": metrics.get("serve.executed"),
            "server_collapsed": metrics.get("serve.collapsed"),
            "epoch_conflicts": metrics.get("serve.epoch_conflicts"),
        })
    assert summary["errors"] == 0, summary
    assert summary["completed"] == clients * requests
    RESULTS["scenarios"][name] = summary
    return summary


def emit() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    out_dir = os.environ.get(
        "BENCH_RESULTS_DIR",
        os.path.join(os.path.dirname(here), "bench_results"))
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_SERVE.json")
    with open(path, "w") as handle:
        json.dump(RESULTS, handle, indent=2)
        handle.write("\n")
    print(f"[bench] wrote {path} "
          f"({len(RESULTS['scenarios'])} scenarios)")
    return path


@pytest.fixture(scope="module", autouse=True)
def _emit_after_run():
    yield
    if RESULTS["scenarios"]:
        emit()


@pytest.mark.parametrize("workers", [1, 4, 16])
def test_bench_p11_worker_scaling(workers):
    summary = run_scenario(
        f"scaling_workers_{workers}", workers=workers,
        hot_fraction=0.5)
    assert summary["qps"] > 0


def test_bench_p11_collapse_reduces_executions():
    on = run_scenario("collapse_on_90pct_dup", workers=8,
                      collapse=True, hot_fraction=0.9)
    off = run_scenario("collapse_off_90pct_dup", workers=8,
                       collapse=False, hot_fraction=0.9)
    # the acceptance bar: on a 90%-duplicate workload collapsing cuts
    # the number of executed queries at least 2×
    assert off["executed"] == off["submitted"]
    reduction = off["executed"] / max(on["executed"], 1)
    RESULTS["scenarios"]["collapse_on_90pct_dup"][
        "execution_reduction"] = reduction
    assert reduction >= 2.0, (on["executed"], off["executed"])


def test_bench_p11_writer_interference_bounded():
    quiet = run_scenario("read_only_baseline", workers=8,
                         hot_fraction=0.3)
    noisy = run_scenario("concurrent_writer", workers=8,
                         hot_fraction=0.3, with_writer=True)
    # the acceptance bar: a concurrent writer may cost the read tail,
    # but bounded — p99 within P99_FACTOR of the no-writer p99
    quiet_p99 = max(quiet["p99_ms"], 0.001)
    factor = noisy["p99_ms"] / quiet_p99
    RESULTS["scenarios"]["concurrent_writer"]["p99_factor"] = factor
    assert factor <= P99_FACTOR, (noisy["p99_ms"], quiet["p99_ms"])


def main() -> None:
    """Standalone tiny-scale run (the CI smoke entry point)."""
    for workers in (1, 4):
        run_scenario(f"scaling_workers_{workers}", workers=workers,
                     hot_fraction=0.5, clients=4, requests=10)
    on = run_scenario("collapse_on_90pct_dup", workers=4,
                      collapse=True, hot_fraction=0.9,
                      clients=4, requests=10)
    off = run_scenario("collapse_off_90pct_dup", workers=4,
                       collapse=False, hot_fraction=0.9,
                       clients=4, requests=10)
    RESULTS["scenarios"]["collapse_on_90pct_dup"][
        "execution_reduction"] = (
        off["executed"] / max(on["executed"], 1))
    run_scenario("concurrent_writer", workers=4, hot_fraction=0.3,
                 with_writer=True, clients=4, requests=10)
    emit()


if __name__ == "__main__":
    main()
