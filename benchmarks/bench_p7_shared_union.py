"""Experiment P7 — shared-work DAG execution for the union-of-plans
algebraization.

Path/attribute variables compile into a ``UnionOp`` whose branches are
clones of one another up to the point where the enumerated schema paths
diverge (Section 5.4).  ``factor_shared_prefixes`` merges those common
prefixes into :class:`SharedOp` nodes, so a warm execution computes each
shared stream once and replays it to the other branches; an empty text
index probe additionally prunes whole branches before they run.

We measure the same optimized plan with factoring off and on — identical
results, the speedup is pure shared work.  The work saving itself is
pinned by counters (``algebra.subplan_hits``/``rows_saved``), never by
the clock; the clock only reports how much the saving buys.
"""

import time

import pytest

from conftest import build_corpus_store
from repro.algebra.compile import compile_query
from repro.algebra.execute import count_shared, execute_plan, plan_size
from repro.algebra.optimizer import optimize
from repro.observe import MetricsRegistry

QUERIES = {
    "path_titles": "select t from a in Articles, a PATH_p.title(t)",
    "attvar_grep": """select name(ATT_a)
                      from my_article PATH_p.ATT_a(val)
                      where val contains ("final")""",
    "deep_join": """select t from a in Articles, s in a.sections,
                                  a PATH_p.title(t)
                    where a.status = "final" """,
}


@pytest.fixture(scope="module")
def store():
    s = build_corpus_store(20, backend="algebra")
    from repro.corpus import SAMPLE_ARTICLE
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.build_text_index()
    return s


def both_plans(store, name):
    query = store._engine.translate(QUERIES[name])
    plan = compile_query(query, store.schema, store._engine.ctx)
    return optimize(plan, factor=False), optimize(plan)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p7_unfactored(benchmark, store, name):
    unfactored, _ = both_plans(store, name)
    result = benchmark(execute_plan, unfactored, store._engine.ctx)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["operators"] = plan_size(unfactored)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p7_factored(benchmark, store, name, capsys):
    unfactored, factored = both_plans(store, name)
    result = benchmark(execute_plan, factored, store._engine.ctx)
    assert result == execute_plan(unfactored, store._engine.ctx)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["operators"] = plan_size(factored)
    with capsys.disabled():
        print(f"\n[P7] {name}: {plan_size(unfactored)} -> "
              f"{plan_size(factored)} operators, "
              f"{count_shared(factored)} shared nodes, {len(result)} rows")


def test_bench_p7_speedup(store, capsys):
    """The headline claim: factoring at least halves the warm median."""
    unfactored, factored = both_plans(store, "deep_join")
    ctx = store._engine.ctx
    # warm-up doubles as the equivalence check
    assert execute_plan(factored, ctx) == execute_plan(unfactored, ctx)

    def median_of(plan, rounds=9):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            execute_plan(plan, ctx)
            times.append(time.perf_counter() - start)
        return sorted(times)[rounds // 2]

    slow, fast = median_of(unfactored), median_of(factored)
    with capsys.disabled():
        print(f"\n[P7] deep_join warm medians: unfactored {slow * 1e3:.2f}ms,"
              f" factored {fast * 1e3:.2f}ms ({slow / fast:.2f}x)")
    assert slow >= 2.0 * fast, (
        f"expected >=2x from factoring, got {slow / fast:.2f}x")


def test_bench_p7_sharing_counters(store):
    """The saving is real shared work, not a measurement artifact."""
    _, factored = both_plans(store, "deep_join")
    ctx = store._engine.ctx.fork()
    ctx.metrics = registry = MetricsRegistry()
    execute_plan(factored, ctx)
    misses = registry.get("algebra.subplan_misses")
    hits = registry.get("algebra.subplan_hits")
    # every shared stream is computed exactly once per execution...
    assert misses == count_shared(factored)
    # ...and replayed to every other consumer
    assert hits > 0
    assert registry.get("algebra.rows_saved") > 0


def test_bench_p7_branch_pruning(benchmark, store):
    """An impossible ``contains`` empties the index probe, so every
    union branch short-circuits before touching the store."""
    query = ('select t from a in Articles, a PATH_p.title(t) '
             'where a contains ("xyzzynotthere")')
    store.enable_metrics()
    store.reset_metrics()
    result = benchmark(store.query, query)
    assert len(result) == 0
    counters = store.metrics()["counters"]
    # 13 of 14 branches go away at compile time (cost stage, posting-
    # size zero proof); the kept one is runtime-pruned on every run
    assert counters["algebra.branches_pruned_static"] == 13
    assert counters["algebra.branches_pruned"] >= 1
