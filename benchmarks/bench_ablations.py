"""Ablation benches for the design choices DESIGN.md calls out.

A1 — tag-omission inference: parsing minimized documents (omitted end
     tags, the Figure-2 style) vs fully tagged ones.  Inference costs a
     little; the minimized documents are ~25% smaller.
A2 — nested-query memoization: Q4's set difference without the cache
     would re-evaluate the right operand per left element; the cache
     makes it a single evaluation (measured via an uncached simulation).
A3 — optimizer pushdown: the deep_join query with and without selection
     pushdown.
A4 — union-branch order in the loader: the section loader tries a1
     before a2; a corpus rich in a2 sections measures the backtracking
     overhead of the "wrong" first branch.
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD
from repro.corpus.generator import generate_corpus
from repro.sgml.instance_parser import parse_document
from repro.sgml.writer import write_document


@pytest.fixture(scope="module")
def corpus_pair():
    """(full serialisations, minimized serialisations) of 20 articles."""
    store = DocumentStore(ARTICLE_DTD)
    trees = generate_corpus(20, seed=42)
    full = [write_document(t, store.dtd) for t in trees]
    minimized = [write_document(t, store.dtd, minimize=True)
                 for t in trees]
    return store.dtd, full, minimized


def test_bench_a1_parse_fully_tagged(benchmark, corpus_pair):
    dtd, full, _ = corpus_pair
    trees = benchmark(lambda: [parse_document(t, dtd) for t in full])
    assert len(trees) == 20


def test_bench_a1_parse_minimized(benchmark, corpus_pair, capsys):
    dtd, full, minimized = corpus_pair
    trees = benchmark(
        lambda: [parse_document(t, dtd) for t in minimized])
    assert len(trees) == 20
    full_bytes = sum(len(t) for t in full)
    min_bytes = sum(len(t) for t in minimized)
    with capsys.disabled():
        print(f"\n[A1] minimized documents are "
              f"{100 - 100 * min_bytes // full_bytes}% smaller "
              f"({min_bytes} vs {full_bytes} bytes); inference makes "
              "parsing them possible at all")


@pytest.fixture(scope="module")
def versions_store():
    store = DocumentStore(ARTICLE_DTD)
    trees = generate_corpus(2, seed=5, sections=10)
    store.load_tree(trees[0], name="my_article", validate=False)
    store.load_tree(trees[1], name="my_old_article", validate=False)
    return store


def test_bench_a2_q4_with_memoization(benchmark, versions_store):
    result = benchmark(
        versions_store.query,
        "my_article PATH_p - my_old_article PATH_p")
    assert len(result) >= 0


def test_bench_a2_q4_uncached_simulation(benchmark, versions_store,
                                         capsys):
    """What Q4 costs when the right operand is recomputed per element
    (the behaviour without the nested-query cache)."""
    store = versions_store
    left_query = "my_article PATH_p"
    right_query = "my_old_article PATH_p"

    def uncached_difference():
        left = store.query(left_query)
        survivors = []
        for path in left:
            right = store.query(right_query)   # recomputed every time
            if path not in right:
                survivors.append(path)
        return survivors

    # keep the quadratic loop affordable: cap at 60 left elements
    left_size = len(store.query(left_query))
    if left_size > 60:
        def uncached_difference():  # noqa: F811
            left = list(store.query(left_query))[:60]
            survivors = []
            for path in left:
                right = store.query(right_query)
                if path not in right:
                    survivors.append(path)
            return survivors

    benchmark(uncached_difference)
    with capsys.disabled():
        print(f"\n[A2] uncached simulation re-evaluates the right "
              f"operand per path ({left_size} paths) — the memoized "
              "Q4 does it once")


def test_bench_a3_pushdown_off(benchmark, versions_store):
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    from repro.algebra.optimizer import optimize
    store = versions_store
    query = store._engine.translate("""
        select t from a in Articles, s in a.sections,
                      a PATH_p.title(t)
        where a.status = "final"
    """)
    plan = optimize(compile_query(query, store.schema,
                                  store._engine.ctx),
                    use_text_index=False, pushdown=False)
    benchmark(execute_plan, plan, store._engine.ctx)


def test_bench_a3_pushdown_on(benchmark, versions_store):
    from repro.algebra.compile import compile_query
    from repro.algebra.execute import execute_plan
    from repro.algebra.optimizer import optimize
    store = versions_store
    query = store._engine.translate("""
        select t from a in Articles, s in a.sections,
                      a PATH_p.title(t)
        where a.status = "final"
    """)
    plan = optimize(compile_query(query, store.schema,
                                  store._engine.ctx),
                    use_text_index=False, pushdown=True)
    benchmark(execute_plan, plan, store._engine.ctx)


@pytest.mark.parametrize("subsection_pct", [0, 90])
def test_bench_a4_loader_branch_order(benchmark, subsection_pct, capsys):
    """a2-heavy corpora force the loader to backtrack out of the a1
    branch on (almost) every section."""
    trees = generate_corpus(10, seed=11,
                            subsection_probability_percent=subsection_pct)

    def load_all():
        store = DocumentStore(ARTICLE_DTD)
        for tree in trees:
            store.load_tree(tree, validate=False)
        return store

    store = benchmark(load_all)
    sections = store.instance.disjoint_extent("Section")
    a2 = sum(1 for s in sections
             if store.instance.deref(s).marker == "a2")
    with capsys.disabled():
        print(f"\n[A4] subsection%={subsection_pct}: "
              f"{a2}/{len(sections)} sections took the a2 branch "
              "(each a backtrack out of a1)")
