"""Experiment Q4 — structural difference between document versions.

    my_article PATH_p - my_old_article PATH_p

Measured for identical versions (empty diff), an extended version, and
growing documents (the cost is the two path enumerations plus a set
difference).
"""

import pytest

from repro import DocumentStore
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_article

Q4 = "my_article PATH_p - my_old_article PATH_p"


@pytest.fixture(scope="module")
def edited_store():
    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_old_article")
    extended = SAMPLE_ARTICLE.replace(
        "<acknowl>",
        "<section><title> New results\n"
        "<body><paragr> Fresh findings.\n</body></section>\n<acknowl>")
    store.load_text(extended, name="my_article")
    return store


def test_bench_q4_identical(benchmark, figure2_store, capsys):
    result = benchmark(figure2_store.query, Q4)
    assert len(result) == 0
    with capsys.disabled():
        print("\n[Q4] identical versions: 0 differing paths")


def test_bench_q4_extended(benchmark, edited_store, capsys):
    result = benchmark(edited_store.query, Q4)
    rendered = {str(p) for p in result}
    assert any(".sections[2]" in p for p in rendered)
    with capsys.disabled():
        print(f"\n[Q4] extended version adds {len(result)} paths "
              "(all under .sections[2])")


def test_bench_q4_large_documents(benchmark, capsys):
    """Diff of two 15-section articles differing in one section."""
    store = DocumentStore(ARTICLE_DTD)
    old_tree = generate_article(seed=9, sections=15)
    store.load_tree(old_tree, name="my_old_article", validate=False)
    # the new version: same article with one section spliced in
    from repro.sgml.instance import Element, Text
    extended = generate_article(seed=9, sections=15)
    section = Element("section")
    title = Element("title")
    title.append(Text("brand new"))
    section.append(title)
    body = Element("body")
    paragraph = Element("paragr")
    paragraph.append(Text("added content"))
    body.append(paragraph)
    section.append(body)
    acknowl_index = next(
        i for i, child in enumerate(extended.children)
        if getattr(child, "name", "") == "acknowl")
    extended.children.insert(acknowl_index, section)
    section.parent = extended
    store.load_tree(extended, name="my_article", validate=False)

    result = benchmark(store.query, Q4)
    assert len(result) > 0
    with capsys.disabled():
        print(f"\n[Q4-scale] 15-section articles: {len(result)} new "
              "paths detected")


def test_bench_path_enumeration_alone(benchmark, figure2_store):
    """The raw enumeration cost behind each Q4 operand."""
    from repro.paths.enumeration import enumerate_paths
    article = figure2_store.instance.root("my_article")
    paths = benchmark(enumerate_paths, article, figure2_store.instance)
    assert len(paths) > 20
