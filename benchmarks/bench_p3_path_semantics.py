"""Experiment P3 — restricted vs liberal path semantics (Section 5.2).

The restricted semantics bounds concrete paths by the *schema* (no two
dereferences through one class); the liberal semantics by the *data* (no
object revisited).  We measure enumeration counts and times on (i) the
acyclic article documents, where the two nearly coincide, and (ii) a
cyclic cross-reference web, where the liberal enumeration grows with
the data while the restricted one stays flat.
"""

import pytest

from repro.calculus import EvalContext
from repro.oodb import (
    Instance,
    ListValue,
    STRING,
    TupleValue,
    c,
    list_of,
    schema_from_classes,
    tuple_of,
)
from repro.paths.enumeration import LIBERAL, RESTRICTED, enumerate_paths


def build_ring(size: int) -> tuple[Instance, object]:
    """A ring of `size` nodes, each linking to the next."""
    schema = schema_from_classes(
        {"Node": tuple_of(("label", STRING),
                          ("next", c("Node")))},
        roots={"entry": c("Node")})
    db = Instance(schema)
    nodes = [db.new_object("Node") for _ in range(size)]
    for position, node in enumerate(nodes):
        db.set_value(node, TupleValue([
            ("label", f"n{position}"),
            ("next", nodes[(position + 1) % size])]))
    db.set_root("entry", nodes[0])
    return db, nodes[0]


@pytest.mark.parametrize("semantics", [RESTRICTED, LIBERAL])
def test_bench_p3_article_enumeration(benchmark, semantics,
                                      figure2_store, capsys):
    article = figure2_store.instance.root("my_article")
    paths = benchmark(enumerate_paths, article,
                      figure2_store.instance, semantics)
    with capsys.disabled():
        print(f"\n[P3] article ({semantics}): {len(paths)} concrete "
              "paths")


@pytest.mark.parametrize("semantics,size", [
    (RESTRICTED, 4), (LIBERAL, 4),
    (RESTRICTED, 16), (LIBERAL, 16),
    (RESTRICTED, 64), (LIBERAL, 64),
])
def test_bench_p3_ring_enumeration(benchmark, semantics, size, capsys):
    db, entry = build_ring(size)
    paths = benchmark(enumerate_paths, entry, db, semantics)
    with capsys.disabled():
        print(f"\n[P3] ring of {size} ({semantics}): "
              f"{len(paths)} paths")
    if semantics == RESTRICTED:
        # schema-bounded: one Node dereference, independent of size
        assert len(paths) <= 6
    else:
        # data-bounded: grows linearly with the ring
        assert len(paths) >= 3 * size


def test_bench_p3_query_under_each_semantics(benchmark, capsys):
    """The Q3-style query on the ring under the liberal semantics."""
    from repro.o2sql import QueryEngine
    db, _ = build_ring(16)
    engine = QueryEngine(db, path_semantics=LIBERAL)
    result = benchmark(
        engine.run, "select x from entry PATH_p.label(x)")
    assert len(result) == 16  # every node's label reachable
    with capsys.disabled():
        print("\n[P3] liberal query reaches all 16 labels; restricted "
              "reaches 2 (entry + one hop)")
    restricted = QueryEngine(db, path_semantics=RESTRICTED)
    near = restricted.run("select x from entry PATH_p.label(x)")
    assert len(near) == 2
