"""Experiment Q2 — union types, implicit selectors and text().

    select ss
    from a in Articles, s in a.sections, ss in s.subsectns
    where ss contains ("complex object")

The iteration over ``s.subsectns`` silently selects the a2-marked
sections; ``contains`` over the subsection objects goes through the
``text()`` inverse mapping.
"""

import pytest

from conftest import build_corpus_store

Q2 = """
    select ss
    from a in Articles, s in a.sections, ss in s.subsectns
    where ss contains ("complex object")
"""

ALL_SUBSECTIONS = """
    select ss
    from a in Articles, s in a.sections, ss in s.subsectns
"""


@pytest.fixture(scope="module")
def store():
    return build_corpus_store(20)


def test_bench_q2(benchmark, store, capsys):
    result = benchmark(store.query, Q2)
    for subsection in result:
        assert subsection.class_name == "Subsectn"
        assert "complex object" in store.text(subsection)
    total = len(store.query(ALL_SUBSECTIONS))
    with capsys.disabled():
        print(f"\n[Q2] {len(result)} of {total} subsections contain "
              "'complex object' (a1-marked sections skipped "
              "implicitly)")


def test_bench_q2_union_iteration_only(benchmark, store):
    """The cost of iterating through the implicit selector alone."""
    result = benchmark(store.query, ALL_SUBSECTIONS)
    assert len(result) > 0


def test_bench_q2_text_inverse(benchmark, store):
    """text() reconstruction for every subsection."""
    subsections = list(store.query(ALL_SUBSECTIONS))

    def reconstruct():
        return [store.text(ss) for ss in subsections]

    texts = benchmark(reconstruct)
    assert all(isinstance(t, str) and t for t in texts)
