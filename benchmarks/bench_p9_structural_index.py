"""Experiment P9 — the pre/post structural index vs the factored DAG.

The P7 factoring made the union-of-plans algebraization share its common
prefixes; the branches still run.  The structural index removes the
fan-out altogether: a path variable becomes one ``StructuralScanOp``
range scan over the pre/post arrays, and a bound path atom becomes an
``IntervalJoinOp`` membership probe.  We measure the same optimized
plans — full P7 pipeline vs full pipeline plus the structural rewrite —
executed warm against one store whose index is built ahead of time.

As in P7, the work saving is pinned by counters
(``structindex.range_scans``/``fallback_walks``), never by the clock;
the clock only reports what the saving buys.  The index build itself is
also timed, so the JSON records the amortization cost of the rewrite.
"""

import time

import pytest

from repro import DocumentStore
from repro.algebra.compile import compile_query
from repro.algebra.execute import execute_plan, plan_size
from repro.algebra.optimizer import optimize
from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE
from repro.corpus.generator import generate_corpus
from repro.observe import MetricsRegistry

QUERIES = {
    "path_titles": "select t from my_article PATH_p.title(t)",
    "attvar_grep": """select name(ATT_a)
                      from my_article PATH_p.ATT_a(val)
                      where val contains ("final")""",
    "deep_join": """select t from a in Articles, s in a.sections,
                                  a PATH_p.title(t)
                    where a.status = "final" """,
}


@pytest.fixture(scope="module")
def store():
    s = DocumentStore(ARTICLE_DTD, backend="algebra", structural=True)
    for tree in generate_corpus(20, seed=42):
        s.load_tree(tree, validate=False)
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.build_text_index()
    s.struct_index.refresh()  # pay the build outside the measurements
    return s


def both_plans(store, name):
    query = store._engine.translate(QUERIES[name])
    plan = compile_query(query, store.schema, store._engine.ctx)
    return optimize(plan), optimize(plan, structural=True)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p9_factored(benchmark, store, name):
    factored, _ = both_plans(store, name)
    result = benchmark(execute_plan, factored, store._engine.ctx)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["operators"] = plan_size(factored)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p9_structural(benchmark, store, name, capsys):
    factored, structural = both_plans(store, name)
    result = benchmark(execute_plan, structural, store._engine.ctx)
    assert result == execute_plan(factored, store._engine.ctx)
    benchmark.extra_info["rows"] = len(result)
    benchmark.extra_info["operators"] = plan_size(structural)
    with capsys.disabled():
        print(f"\n[P9] {name}: {plan_size(factored)} -> "
              f"{plan_size(structural)} operators, {len(result)} rows")


def test_bench_p9_speedup(store, capsys):
    """The headline claim: on the P4/P7 workloads the interval scan
    beats the factored DAG warm, not just in operator counts."""
    ctx = store._engine.ctx

    def median_of(plan, rounds=9):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            execute_plan(plan, ctx)
            times.append(time.perf_counter() - start)
        return sorted(times)[rounds // 2]

    for name in ("deep_join", "attvar_grep"):
        factored, structural = both_plans(store, name)
        # warm-up doubles as the equivalence check
        assert execute_plan(structural, ctx) == execute_plan(factored, ctx)
        slow, fast = median_of(factored), median_of(structural)
        with capsys.disabled():
            print(f"\n[P9] {name} warm medians: factored {slow * 1e3:.2f}ms,"
                  f" structural {fast * 1e3:.2f}ms ({slow / fast:.2f}x)")
        assert slow > fast, (
            f"expected the structural rewrite to win on {name}, "
            f"got {slow / fast:.2f}x")


def test_bench_p9_scan_counters(store):
    """The saving is index work, not a measurement artifact: every
    execution serves its path variables from range scans and never
    falls back to a live walk."""
    _, structural = both_plans(store, "deep_join")
    ctx = store._engine.ctx.fork()
    ctx.metrics = registry = MetricsRegistry()
    execute_plan(structural, ctx)
    assert registry.get("structindex.range_scans") > 0
    assert registry.get("structindex.fallback_walks") == 0


def test_bench_p9_build_cost(benchmark, store):
    """What the rewrite amortizes: a full rebuild of every block."""
    index = store.struct_index

    def rebuild():
        index.note_data_change(epoch=store.plan_cache.epoch)
        return index.refresh()

    rebuilt = benchmark(rebuild)
    assert rebuilt == len(store.instance.root_names)
    benchmark.extra_info["nodes"] = index.stats()["nodes"]
