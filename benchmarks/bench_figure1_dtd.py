"""Experiment F1 — Figure 1: parsing the article DTD.

Regenerates the paper's Figure-1 inventory (13 elements, 4 attribute
lists, the fig1 entity) and measures DTD parsing plus content-automaton
construction.
"""

from repro.corpus.article_dtd import ARTICLE_DTD, article_dtd
from repro.sgml.automata import ContentAutomaton
from repro.sgml.dtd_parser import parse_dtd

FIGURE1_ELEMENTS = {
    "article", "title", "author", "affil", "abstract", "section",
    "subsectn", "body", "figure", "picture", "caption", "paragr",
    "acknowl"}


def test_bench_parse_figure1_dtd(benchmark, capsys):
    """Parse Figure 1 and print the regenerated inventory."""
    dtd = benchmark(parse_dtd, ARTICLE_DTD)
    assert set(dtd.element_names) == FIGURE1_ELEMENTS
    assert dtd.check() == []
    with capsys.disabled():
        print("\n[F1] Figure 1 regenerated — element inventory:")
        for name in dtd.element_names:
            declaration = dtd.element(name)
            attlist = dtd.attlist(name)
            attributes = (", ".join(d.name for d in attlist)
                          if attlist else "-")
            print(f"  <!ELEMENT {name:<9s} {declaration.model}>  "
                  f"attrs: {attributes}")
        entity = dtd.entity("fig1")
        print(f"  <!ENTITY fig1 SYSTEM {entity.system_id!r}>")


def test_bench_content_automata(benchmark):
    """Glushkov DFA construction for all 13 content models."""
    dtd = article_dtd()

    def build_all():
        return [ContentAutomaton(dtd.element(name).model)
                for name in dtd.element_names]

    automata = benchmark(build_all)
    assert all(a.state_count >= 1 for a in automata)


def test_bench_parse_large_generated_dtd(benchmark):
    """DTD parsing scales to hundreds of declarations (200 elements)."""
    declarations = ["<!ELEMENT root - - (e0+)>"]
    for i in range(200):
        nxt = f"(e{i + 1}*, #PCDATA)" if i < 199 else "(#PCDATA)"
        declarations.append(f"<!ELEMENT e{i} - O {nxt}>")
    text = "\n".join(declarations)
    dtd = benchmark(parse_dtd, text)
    assert len(dtd.element_names) == 201
