"""Experiment P4 — calculus interpretation vs compiled algebra
(Section 5.4).

For each representative query we measure: (i) the calculus interpreter,
(ii) the compiled plan, (iii) the compiled+optimized plan, and we report
the plan's union width — the number of variable-free alternatives the
path/attribute variables expand into.

Expected shape: compilation pays off on queries whose path predicates
are selective (the plan navigates directly instead of enumerating all
concrete paths), while fully enumerative queries are comparable.
"""

import pytest

from conftest import build_corpus_store
from repro.calculus import evaluate_query
from repro.algebra.compile import compile_query
from repro.algebra.execute import count_unions, execute_plan, plan_size
from repro.algebra.optimizer import optimize

QUERIES = {
    "q3_titles": "select t from my_article PATH_p.title(t)",
    "q5_grep": """select name(ATT_a)
                  from my_article PATH_p.ATT_a(val)
                  where val contains ("final")""",
    "scan_filter": """select a from a in Articles
                      where a.status = "final" """,
    "deep_join": """select t from a in Articles, s in a.sections,
                                  a PATH_p.title(t)
                    where a.status = "final" """,
}


@pytest.fixture(scope="module")
def store():
    s = build_corpus_store(20)
    from repro.corpus import SAMPLE_ARTICLE
    s.load_text(SAMPLE_ARTICLE, name="my_article")
    s.build_text_index()
    return s


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p4_calculus(benchmark, store, name):
    query = store._engine.translate(QUERIES[name])
    result = benchmark(evaluate_query, query, store._engine.ctx)
    benchmark.extra_info["rows"] = len(result)


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p4_algebra(benchmark, store, name, capsys):
    query = store._engine.translate(QUERIES[name])
    plan = compile_query(query, store.schema, store._engine.ctx)
    result = benchmark(execute_plan, plan, store._engine.ctx)
    assert result == evaluate_query(query, store._engine.ctx)
    with capsys.disabled():
        print(f"\n[P4] {name}: plan has {plan_size(plan)} operators, "
              f"{count_unions(plan)} unions, {len(result)} rows")


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_bench_p4_algebra_optimized(benchmark, store, name):
    query = store._engine.translate(QUERIES[name])
    plan = optimize(compile_query(query, store.schema,
                                  store._engine.ctx))
    result = benchmark(execute_plan, plan, store._engine.ctx)
    assert result == evaluate_query(query, store._engine.ctx)


def test_bench_p4_compilation_cost(benchmark, store):
    """Compiling itself is cheap relative to evaluation."""
    query = store._engine.translate(QUERIES["q3_titles"])
    plan = benchmark(compile_query, query, store.schema,
                     store._engine.ctx)
    assert plan_size(plan) > 5
