"""Statistics lifecycle: collection, epochs, generations, feedback.

:class:`StatisticsManager` sits between the store and the optimizer's
cost stage.  It owns one :class:`~repro.stats.statistics.Statistics`
snapshot at a time and keeps it coherent along two axes:

* **epoch** — the store's data/schema version (read off the same
  ``epoch_source`` the plan cache and structural index use).  A
  snapshot collected under an older epoch is recollected lazily on the
  next :meth:`snapshot` call; collection is O(classes + roots), never
  O(objects).
* **generation** — the costing version.  Feedback from executed plans
  (:meth:`record_execution`, :meth:`ingest_profile`) accumulates
  silently; when *adaptive* re-costing is enabled and a measured
  cardinality contradicts its estimate badly enough to change plan
  choice, the generation advances — and the plan cache drops entries
  costed under the stale generation on their next lookup
  (``cache.stats_invalidations``).  Each cache key triggers at most one
  correction per epoch, so feedback converges instead of thrashing.

Adaptive bumping is **off by default**: estimates are still computed,
annotated and recorded everywhere, but plan churn (recompiles on
generation advance) only happens when the caller opts in
(``manager.adaptive = True`` /
``DocumentStore(...).stats_manager.adaptive = True``).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterator

from repro.oodb.values import ListValue, SetValue
from repro.stats.statistics import Statistics

#: A measured cardinality at least this many times off its estimate
#: (either direction) counts as a misestimate worth re-costing for.
MISESTIMATE_FACTOR = 4.0

#: EMA weight of the newest unit-cost sample.
_EMA_ALPHA = 0.3


def q_error(estimated: float, actual: float) -> float:
    """The symmetric ratio error ((max+1)/(min+1); 1.0 = perfect).

    Total on degenerate inputs instead of propagating garbage: a NaN
    on either side reports ``inf`` (worst possible), negative values —
    a cost annotation that went wrong upstream — clamp to the zero
    floor (so ``low = -1`` cannot divide by zero), and an infinite
    estimate against a finite actual reports ``inf``."""
    if math.isnan(estimated) or math.isnan(actual):
        return math.inf
    high = max(estimated, actual, 0.0)
    low = max(min(estimated, actual), 0.0)
    if math.isinf(high):
        return 1.0 if math.isinf(low) else math.inf
    return (high + 1.0) / (low + 1.0)


class StatisticsManager:
    """Collects, versions and updates the table statistics."""

    def __init__(self, instance: Any, epoch_source: Any,
                 context: Any = None, metrics: Any = None) -> None:
        self.instance = instance
        #: Anything with an ``epoch`` attribute — the store's
        #: :class:`~repro.cache.plancache.PlanCache` in practice.
        self.epoch_source = epoch_source
        #: The engine's evaluation context (read for the text and
        #: structural indexes, which the store installs after
        #: construction); ``None`` falls back to no index statistics.
        self.context = context
        self.metrics = metrics
        #: Opt-in: advance the generation on bad misestimates so stale
        #: costings recompile.  Off by default — see the module doc.
        self.adaptive = False
        self._lock = threading.Lock()
        self._generation = 0
        self._snapshot: Statistics | None = None
        self._unit_costs: dict[str, float] = {}
        self._actual_rows: dict[Any, int] = {}
        self._branch_actuals: dict[Any, int] = {}
        #: Cache keys already corrected this epoch (cleared on epoch
        #: change) — the at-most-once-per-key damper.
        self._corrected: set = set()
        self._corrected_epoch = -1

    # -- versions -------------------------------------------------------------

    @property
    def generation(self) -> int:
        """The current costing version (monotonically increasing)."""
        return self._generation

    @property
    def epoch(self) -> int:
        return int(getattr(self.epoch_source, "epoch", 0))

    # -- the snapshot ---------------------------------------------------------

    def snapshot(self) -> Statistics:
        """The current statistics; recollected when the store epoch or
        the costing generation moved since the last collection."""
        current = self._snapshot
        if (current is not None and current.epoch == self.epoch
                and current.generation == self._generation):
            return current
        with self._lock:
            current = self._snapshot
            if (current is not None and current.epoch == self.epoch
                    and current.generation == self._generation):
                return current
            collected = self._collect()
            self._snapshot = collected
            if self.metrics is not None:
                self.metrics.inc("stats.collections")
            return collected

    def refresh(self) -> Statistics:
        """Force a recollection at the current epoch/generation."""
        with self._lock:
            self._snapshot = self._collect()
        return self._snapshot

    def _collect(self) -> Statistics:
        instance = self.instance
        schema = instance.schema
        class_cards = {
            name: len(instance.disjoint_extent(name))
            for name in schema.class_names}
        root_cards: dict[str, int] = {}
        for name in instance.root_names:
            try:
                value = instance.root(name)
            except Exception:  # pragma: no cover - racing writer
                continue
            root_cards[name] = (len(value)
                                if isinstance(value,
                                              (ListValue, SetValue))
                                else 1)
        text_index = getattr(self.context, "text_index", None)
        struct_index = getattr(self.context, "struct_index", None)
        document_count = 0
        vocabulary_size = 0
        if text_index is not None:
            document_count = text_index.document_count
            vocabulary_size = text_index.vocabulary_size
        index_nodes = 0
        index_roots = 0
        attr_occurrences: dict[str, int] = {}
        atom_slice_size = 0
        if struct_index is not None:
            for block in struct_index.blocks.values():
                index_nodes += block.size
                index_roots += 1
                atom_slice_size += sum(
                    len(positions)
                    for positions in block.atoms.values())
                for attr, positions in block.attr_steps.items():
                    attr_occurrences[attr] = (
                        attr_occurrences.get(attr, 0) + len(positions))
        return Statistics(
            epoch=self.epoch,
            generation=self._generation,
            class_cardinalities=class_cards,
            root_cardinalities=root_cards,
            object_count=instance.object_count(),
            document_count=document_count,
            vocabulary_size=vocabulary_size,
            index_nodes=index_nodes,
            index_roots=index_roots,
            attr_occurrences=attr_occurrences,
            atom_slice_size=atom_slice_size,
            unit_costs=_normalized(self._unit_costs),
            actual_rows=self._actual_rows,
            branch_actuals=self._branch_actuals,
            text_index=text_index,
        )

    # -- feedback (the adaptive loop) -----------------------------------------

    def record_execution(self, key: Any, est_rows: float | None,
                         actual_rows: int) -> bool:
        """Feed one executed plan's actual result cardinality back.

        Returns True when the misestimate advanced the generation
        (adaptive mode only; at most once per cache key per epoch).
        """
        with self._lock:
            self._actual_rows[key] = actual_rows
            if (not self.adaptive or est_rows is None
                    or q_error(est_rows, actual_rows)
                    <= MISESTIMATE_FACTOR):
                return False
            epoch = self.epoch
            if self._corrected_epoch != epoch:
                self._corrected = set()
                self._corrected_epoch = epoch
            if key in self._corrected:
                return False
            self._corrected.add(key)
            self._generation += 1
        if self.metrics is not None:
            self.metrics.inc("stats.recostings")
        return True

    def ingest_profile(self, plan: Any, profiler: Any,
                       key: Any = None) -> None:
        """Harvest a profiled run: EMA-update per-operator-class unit
        costs, and record per-branch actual cardinalities for every
        union the cost stage reordered (keyed by the plan's cache key
        and the union's evidence ordinal)."""
        per_class: dict[str, tuple[float, int]] = {}
        with self._lock:
            for node in _walk_once(plan):
                stats = profiler.stats_for(node)
                if stats.rows_out > 0 and stats.elapsed > 0.0:
                    name = type(node).__name__
                    elapsed, rows = per_class.get(name, (0.0, 0))
                    per_class[name] = (elapsed + stats.elapsed,
                                       rows + stats.rows_out)
                evidence = getattr(node, "cost_evidence", None)
                if evidence is not None and key is not None:
                    for position, original in enumerate(evidence.order):
                        branch = node.branches[position]
                        self._branch_actuals[
                            (key, evidence.ordinal, original)] = (
                            profiler.rows_out(branch))
            for name, (elapsed, rows) in per_class.items():
                sample = elapsed / rows
                previous = self._unit_costs.get(name)
                if previous is None:
                    self._unit_costs[name] = sample
                else:
                    self._unit_costs[name] = (
                        (1.0 - _EMA_ALPHA) * previous
                        + _EMA_ALPHA * sample)

    def recost(self) -> int:
        """Explicitly advance the costing generation (drops every
        cached plan's costing on its next lookup); returns the new
        generation."""
        with self._lock:
            self._generation += 1
        if self.metrics is not None:
            self.metrics.inc("stats.recostings")
        return self._generation

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict:
        """The ``statistics`` block of ``DocumentStore.stats()``."""
        summary = self.snapshot().to_dict()
        summary["adaptive"] = self.adaptive
        return summary

    def __repr__(self) -> str:  # pragma: no cover
        return (f"StatisticsManager(epoch={self.epoch}, "
                f"generation={self._generation}, "
                f"adaptive={self.adaptive})")


def _normalized(raw: dict[str, float]) -> dict[str, float]:
    """Measured per-row seconds, rescaled so the cheapest class costs
    1.0 — the model's unit for unmeasured classes — and clamped so one
    noisy sample cannot dominate every other statistic."""
    if not raw:
        return {}
    base = min(value for value in raw.values() if value > 0.0)
    if base <= 0.0:  # pragma: no cover - all-zero samples
        return {}
    return {name: max(0.25, min(50.0, value / base))
            for name, value in raw.items()}


def _walk_once(plan: Any) -> Iterator[Any]:
    """Every distinct operator in the plan DAG, once."""
    seen: set[int] = set()
    stack = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children())
