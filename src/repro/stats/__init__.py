"""Table statistics + the cost model (the cost-based optimizer's data).

The subsystem folds what the engine already measures — class/root
cardinalities, text-index posting sizes, structural-index block and
slice sizes, profiled per-operator timings — into an epoch-versioned
:class:`Statistics` snapshot, and prices every algebra operator with
:func:`estimate`.  The optimizer's verifier-gated ``cost`` stage
(:func:`repro.algebra.optimizer.optimize` with ``stats=...``) reads the
snapshot to order union branches by estimated selectivity, choose
scan vs. text-index vs. structural range-scan per predicate, and prune
branches that are provably empty before any index probe runs; executed
plans feed actual cardinalities back through
:class:`StatisticsManager`.
"""

from repro.stats.cost import Estimate, annotate_estimates, estimate
from repro.stats.manager import StatisticsManager, q_error
from repro.stats.statistics import CostEvidence, Statistics

__all__ = [
    "CostEvidence",
    "Estimate",
    "Statistics",
    "StatisticsManager",
    "annotate_estimates",
    "estimate",
    "q_error",
]
