"""The epoch-versioned table-statistics snapshot.

:class:`Statistics` folds everything the engine already measures into
one immutable-by-convention record the optimizer's cost stage can read
without touching the store:

* per-class cardinalities (disjoint extents) and persistence-root
  collection sizes, from the :class:`~repro.oodb.instance.Instance`;
* text-index posting-list sizes — an *upper bound* on the documents a
  literal word can match, which is exactly what selectivity estimation
  and provable-empty pruning need (:mod:`repro.text`);
* structural-index block/slice sizes (node counts, per-attribute
  occurrence counts, atom-slice sizes) from :mod:`repro.structindex`;
* historical per-operator unit costs (seconds per row, EMA-smoothed)
  harvested from :class:`~repro.observe.profile.PlanProfiler` runs, and
  actual result/branch cardinalities fed back by the engine.

A snapshot carries two version numbers.  ``epoch`` is the store's
data/schema epoch: a mutation produces a fresh snapshot (the manager
recollects lazily).  ``generation`` is the *costing* version: it
advances when feedback (adaptive re-costing) changes what the cost
model would decide, without any data change — the plan cache
invalidates entries whose recorded generation is stale (the
``cache.stats_invalidations`` counter).

:class:`CostEvidence` is the audit record the cost stage attaches to
every union it reorders or prunes; :mod:`repro.plancheck` re-validates
it (the ``PC-COST`` checks), so a miscosted rewrite is caught before it
can execute — the same gating policy every other rewrite follows.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.text.patterns import (
    AndExpr,
    NotExpr,
    OrExpr,
    Pattern,
    PatternExpr,
)


class CostEvidence:
    """Why a union looks the way it does after the cost stage.

    ``order`` holds the *original* branch indices in their new
    execution order; ``pruned`` maps each removed original index to its
    justification ``(kind, detail)``.  Together they must partition
    ``range(original)`` — the verifier's ``PC-COST`` check — and every
    pruned entry must carry re-checkable zero evidence (currently the
    single kind ``"empty_candidates"``: a pattern whose posting-size
    upper bound is provably zero).  ``generation`` records the
    statistics snapshot the decision was costed against.
    """

    __slots__ = ("original", "order", "pruned", "generation", "ordinal")

    def __init__(self, original: int, order: tuple[int, ...],
                 pruned: Mapping[int, tuple[str, Any]],
                 generation: int, ordinal: int = 0) -> None:
        self.original = original
        self.order = tuple(order)
        self.pruned = dict(pruned)
        self.generation = generation
        #: Position of this union in the plan's deterministic post-order
        #: walk — the key branch-cardinality feedback is recorded under.
        self.ordinal = ordinal

    def __repr__(self) -> str:  # pragma: no cover
        return (f"CostEvidence(original={self.original}, "
                f"order={self.order}, pruned={sorted(self.pruned)}, "
                f"generation={self.generation})")


#: Default selectivity of a selection whose predicate the model cannot
#: bound (the classic System-R guess).
DEFAULT_SELECTIVITY = 0.5

#: Default fan-out of an unnest when no structural statistics exist.
DEFAULT_FANOUT = 3.0


class Statistics:
    """One coherent snapshot of everything the cost model reads."""

    __slots__ = ("epoch", "generation", "class_cardinalities",
                 "root_cardinalities", "object_count", "document_count",
                 "vocabulary_size", "index_nodes", "index_roots",
                 "attr_occurrences", "atom_slice_size", "unit_costs",
                 "actual_rows", "branch_actuals", "_text_index",
                 "_bound_memo")

    def __init__(self, epoch: int = 0, generation: int = 0,
                 class_cardinalities: Mapping[str, int] | None = None,
                 root_cardinalities: Mapping[str, int] | None = None,
                 object_count: int = 0,
                 document_count: int = 0,
                 vocabulary_size: int = 0,
                 index_nodes: int = 0,
                 index_roots: int = 0,
                 attr_occurrences: Mapping[str, int] | None = None,
                 atom_slice_size: int = 0,
                 unit_costs: Mapping[str, float] | None = None,
                 actual_rows: Mapping[Any, int] | None = None,
                 branch_actuals: Mapping[Any, int] | None = None,
                 text_index: Any = None) -> None:
        self.epoch = epoch
        self.generation = generation
        self.class_cardinalities = dict(class_cardinalities or {})
        self.root_cardinalities = dict(root_cardinalities or {})
        self.object_count = object_count
        self.document_count = document_count
        self.vocabulary_size = vocabulary_size
        self.index_nodes = index_nodes
        self.index_roots = index_roots
        self.attr_occurrences = dict(attr_occurrences or {})
        self.atom_slice_size = atom_slice_size
        self.unit_costs = dict(unit_costs or {})
        self.actual_rows = dict(actual_rows or {})
        self.branch_actuals = dict(branch_actuals or {})
        # posting sizes are read lazily (and memoized) off the live
        # index: the snapshot is keyed to an epoch, and any mutation
        # bumps the epoch, so the reads stay coherent with the rest
        self._text_index = text_index
        self._bound_memo: dict[int, int | None] = {}

    # -- cardinalities --------------------------------------------------------

    def class_cardinality(self, class_name: str) -> int:
        return self.class_cardinalities.get(class_name, 0)

    def root_cardinality(self, name: str) -> int:
        return self.root_cardinalities.get(name, 1)

    def avg_fanout(self) -> float:
        """Mean children per node, from the structural index when one
        is built (node count vs. a root-count worth of trees)."""
        if self.index_nodes and self.index_roots:
            subtree = self.index_nodes / self.index_roots
            # a subtree of n nodes over ~log depth: crude but monotone
            return max(1.0, min(8.0, subtree ** (1.0 / 3.0)))
        return DEFAULT_FANOUT

    def avg_subtree_size(self) -> float:
        """Mean nodes per indexed root subtree — the row multiplier of
        a structural range scan seeded at a document root."""
        if self.index_nodes and self.index_roots:
            return self.index_nodes / self.index_roots
        return DEFAULT_FANOUT ** 3

    def attr_density(self, attr: str | None) -> float:
        """Expected holders of ``attr`` per indexed root subtree."""
        if attr is None or not self.index_roots:
            return max(1.0, self.avg_subtree_size() / 4.0)
        return max(1.0, self.attr_occurrences.get(attr, 0)
                   / self.index_roots)

    def unit_cost(self, operator_name: str,
                  default: float = 1.0) -> float:
        """Relative per-row cost of one operator class, learned from
        profiled runs (1.0 until something was measured)."""
        return self.unit_costs.get(operator_name, default)

    # -- text-index posting bounds -------------------------------------------

    def candidate_upper_bound(self, expression: Any) -> int | None:
        """An upper bound on the number of documents that can satisfy
        ``expression``, from posting-list sizes alone (no probe is
        issued).  ``None`` means the model cannot bound it — a
        negation-dominated or regex-only pattern.  A return of ``0`` is
        a *proof* of emptiness: a literal word with no posting list
        matches nothing, so the cost stage may prune a branch gated on
        it before any index probe runs.
        """
        memo_key = id(expression)
        if memo_key in self._bound_memo:
            return self._bound_memo[memo_key]
        bound = self._bound_of(expression)
        self._bound_memo[memo_key] = bound
        return bound

    def _bound_of(self, expression: Any) -> int | None:
        index = self._text_index
        if index is None or not isinstance(expression, PatternExpr):
            return None
        if isinstance(expression, Pattern):
            bounds = [index.posting_size(word)
                      for word in expression.literal_words()]
            if not bounds:
                return None  # regex-only: needs a vocabulary scan
            return min(bounds)
        if isinstance(expression, AndExpr):
            left = self._bound_of(expression.left)
            right = self._bound_of(expression.right)
            if left is None:
                return right
            if right is None:
                return left
            return min(left, right)
        if isinstance(expression, OrExpr):
            left = self._bound_of(expression.left)
            right = self._bound_of(expression.right)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(expression, NotExpr):
            return None
        return None

    def probe_cost(self, expression: Any) -> float:
        """Estimated work of asking the text index for the candidate
        set of ``expression``: literal words hit their posting lists
        directly; any regex word forces a full vocabulary scan."""
        if isinstance(expression, Pattern):
            if expression.has_regex_word():
                return float(max(1, self.vocabulary_size))
            bounds = [self._text_index.posting_size(word)
                      if self._text_index is not None else 0
                      for word in expression.literal_words()]
            return 1.0 + float(sum(bounds))
        if isinstance(expression, (AndExpr, OrExpr)):
            return (self.probe_cost(expression.left)
                    + self.probe_cost(expression.right))
        if isinstance(expression, NotExpr):
            return self.probe_cost(expression.child)
        return 1.0

    def prunes_nothing(self, expression: Any) -> bool:
        """True when the runtime probe is guaranteed to return ``None``
        (no pruning possible) — mirrors
        :meth:`repro.text.TextIndex.candidates` exactly, so the cost
        stage can drop the probe without changing which rows pass."""
        if isinstance(expression, Pattern):
            return False
        if isinstance(expression, AndExpr):
            return (self.prunes_nothing(expression.left)
                    and self.prunes_nothing(expression.right))
        if isinstance(expression, OrExpr):
            return (self.prunes_nothing(expression.left)
                    or self.prunes_nothing(expression.right))
        return True  # NotExpr and anything unrecognised

    # -- feedback -------------------------------------------------------------

    def branch_actual(self, plan_key: Any, ordinal: int,
                      original_index: int) -> int | None:
        """The actual row count a union branch produced on a previous
        run of the same cached plan (``None`` before any feedback)."""
        return self.branch_actuals.get((plan_key, ordinal,
                                        original_index))

    # -- reporting ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Structured summary (the ``statistics`` block of
        :meth:`repro.session.DocumentStore.stats`)."""
        return {
            "epoch": self.epoch,
            "generation": self.generation,
            "classes": len(self.class_cardinalities),
            "objects": self.object_count,
            "documents": self.document_count,
            "vocabulary": self.vocabulary_size,
            "index_nodes": self.index_nodes,
            "index_roots": self.index_roots,
            "attrs_tracked": len(self.attr_occurrences),
            "unit_costs": dict(self.unit_costs),
            "recorded_queries": len(self.actual_rows),
            "recorded_branches": len(self.branch_actuals),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Statistics(epoch={self.epoch}, "
                f"generation={self.generation}, "
                f"classes={len(self.class_cardinalities)}, "
                f"objects={self.object_count})")
