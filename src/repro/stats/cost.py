"""The cost model: ``estimate(op, stats) -> (rows, cost)``.

Estimates are computed bottom-up over the plan DAG, memoized by node
identity so a :class:`~repro.algebra.operators.SharedOp` subtree is
costed once (its production cost is amortized over its consumers —
exactly how execution amortizes it).

The numbers are *relative*, not wall-clock: ``rows`` predicts the
cardinality of the operator's output stream, ``cost`` the total work of
draining it (child cost + per-row work × the operator class's learned
unit cost).  The cost stage only ever compares estimates against each
other — branch ordering, scan-vs-index choice, provable-empty pruning —
so monotonicity matters and absolute calibration does not.

What makes the estimates data-driven rather than guesses:

* a :class:`~repro.algebra.operators.SeedOp` chain seeded from a class
  extent or persistence root starts at the *measured* cardinality
  (``Statistics.class_cardinalities`` / ``root_cardinalities``);
* an :class:`~repro.algebra.operators.IndexFilterOp` is bounded by its
  pattern's posting-list sizes (0 = provably empty, the pruning hook);
* structural scans multiply by measured subtree/attribute densities
  from the structural index;
* per-operator-class unit costs are EMA-learned from profiled runs
  (:meth:`repro.stats.manager.StatisticsManager.ingest_profile`).
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.calculus.formulas import Eq
from repro.calculus.terms import Const, Name
from repro.algebra.operators import (
    BindOp,
    FormulaOp,
    IndexFilterOp,
    IntervalJoinOp,
    MakePathOp,
    NegationOp,
    Operator,
    ProjectOp,
    SeedOp,
    SelectOp,
    SharedOp,
    StepOp,
    StructuralAttrScanOp,
    StructuralScanOp,
    UnionOp,
    UnnestOp,
)
from repro.stats.statistics import DEFAULT_SELECTIVITY, Statistics


class Estimate(NamedTuple):
    """Predicted output cardinality and total work of one operator."""

    rows: float
    cost: float


#: Relative per-row base cost of an interpreted residual formula — the
#: calculus fallback is an order of magnitude heavier than a native
#: operator's row handling.
_FORMULA_ROW_COST = 10.0


def _statically_false(atom: object) -> bool:
    """The compiler's dead-branch marker (``Select (0 = 1)``)."""
    if not isinstance(atom, Eq):
        return False
    left, right = atom.left, atom.right
    if not (isinstance(left, Const) and isinstance(right, Const)):
        return False
    try:
        return bool(left.value != right.value)
    except Exception:  # pragma: no cover - exotic constant values
        return False


def _unnest_cardinality(node: UnnestOp, stats: Statistics) -> float:
    """Fan-out of one unnest: a named persistence root iterates its
    measured collection size; everything else gets the structural
    fan-out average."""
    term = node.collection_term
    if (isinstance(term, Name)
            and term.name in stats.root_cardinalities):
        return float(max(1, stats.root_cardinality(term.name)))
    return stats.avg_fanout()


def estimate(plan: Operator, stats: Statistics,
             memo: dict[int, Estimate] | None = None) -> Estimate:
    """The (rows, cost) estimate of ``plan`` under ``stats``.

    ``memo`` (id-keyed) may be shared across calls to cost several
    branches of one DAG consistently; shared subtrees are costed once.
    """
    if memo is None:
        memo = {}
    done = memo.get(id(plan))
    if done is not None:
        return done
    result = _estimate_node(plan, stats, memo)
    memo[id(plan)] = result
    return result


def _estimate_node(node: Operator, stats: Statistics,
                   memo: dict[int, Estimate]) -> Estimate:
    unit = stats.unit_cost(type(node).__name__)
    if isinstance(node, SeedOp):
        return Estimate(1.0, 1.0)
    if isinstance(node, UnionOp):
        rows = 0.0
        cost = float(len(node.branches))
        for branch in node.branches:
            child = estimate(branch, stats, memo)
            rows += child.rows
            cost += child.cost
        return Estimate(rows, cost)
    if isinstance(node, SharedOp):
        inner = estimate(node.child, stats, memo)
        refs = max(1, node.ref_count)
        # one production amortized over the consumers, plus a replay
        return Estimate(inner.rows, inner.cost / refs + inner.rows)
    child = estimate(node.children()[0], stats, memo)
    rows, cost = child.rows, child.cost
    if isinstance(node, UnnestOp):
        out = rows * _unnest_cardinality(node, stats)
        return Estimate(out, cost + rows * unit + out)
    if isinstance(node, IndexFilterOp):
        bound = stats.candidate_upper_bound(node.pattern)
        probe = stats.probe_cost(node.pattern)
        if bound is None:
            # no static bound: every row is re-checked exactly
            out = rows * DEFAULT_SELECTIVITY
            return Estimate(out, cost + probe + rows * unit)
        if node.oid_only:
            out = min(rows, float(bound))
        else:
            total = max(1, stats.document_count)
            out = rows * min(1.0, bound / total)
        # non-candidates are dropped before the exact recheck
        return Estimate(out, cost + probe + rows + out * unit)
    if isinstance(node, SelectOp):
        if _statically_false(node.atom):
            return Estimate(0.0, cost + rows * unit)
        return Estimate(rows * DEFAULT_SELECTIVITY,
                        cost + rows * unit)
    if isinstance(node, NegationOp):
        return Estimate(rows * DEFAULT_SELECTIVITY,
                        cost + rows * _FORMULA_ROW_COST * unit)
    if isinstance(node, FormulaOp):
        return Estimate(rows, cost + rows * _FORMULA_ROW_COST * unit)
    if isinstance(node, StructuralAttrScanOp):
        out = rows * stats.attr_density(node.attr)
        return Estimate(out, cost + rows * unit + out)
    if isinstance(node, StructuralScanOp):
        out = rows * stats.avg_subtree_size()
        return Estimate(out, cost + rows * unit + out)
    if isinstance(node, IntervalJoinOp):
        # two bisections per row, a handful of matches each
        return Estimate(rows, cost + rows * 2.0 * unit + rows)
    if isinstance(node, (BindOp, StepOp, MakePathOp)):
        return Estimate(rows, cost + rows * unit)
    if isinstance(node, ProjectOp):
        return Estimate(rows, cost + rows * unit)
    return Estimate(rows, cost + rows * unit)  # pragma: no cover


def annotate_estimates(plan: Operator, stats: Statistics,
                       memo: dict[int, Estimate] | None = None) -> Estimate:
    """Stamp ``est_rows``/``est_cost`` on every node of the plan DAG
    (the EXPLAIN ANALYZE ``est_rows`` column); returns the root
    estimate."""
    if memo is None:
        memo = {}
    root = estimate(plan, stats, memo)
    seen: set[int] = set()
    stack: list[Operator] = [plan]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        found = memo.get(id(node))
        if found is None:
            found = estimate(node, stats, memo)
        node.est_rows = found.rows
        node.est_cost = found.cost
        stack.extend(node.children())
    return root
