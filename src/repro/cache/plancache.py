"""The prepared-query plan cache (the serving-path memoization layer).

Algebraization is a pure function of the query text and the schema —
Section 5 expands path and attribute variables by *schema* analysis,
never by looking at the data — so the parse → translate → safety →
inference → compile artifacts of a query can be reused across
executions.  :class:`PlanCache` keys them by normalized query text,
backend, path-semantics mode and whether type inference runs, so one
cache can serve several engine configurations.

Staleness is handled with a store-wide **epoch**: every data or schema
change (document loads, name definitions, in-database text edits) bumps
it, and an entry compiled under an older epoch is discarded on its next
lookup.  This matters for two reasons:

* translation consults the set of persistence roots (a ``load_text``
  with a name changes what identifiers resolve to), and
* optimized plans contain index-backed operators that memoize their
  probe state per plan object — a recompile is the staleness barrier
  that gives a fresh probe against the maintained index.

Thread safety: every cache mutation happens under one lock; entries are
immutable once stored, and executing a cached plan builds per-call
state only (the engine forks a fresh evaluation context per run).

What gets cached is the fully optimized plan — including the
common-prefix **factoring** that merges identical union-branch prefixes
into shared DAG nodes (:class:`repro.algebra.operators.SharedOp`).
Sharing stays sound under caching because a shared node memoizes its
row stream per *execution*, not per plan: ``execute_plan`` installs the
memo table on the forked evaluation context and drops it when the run
ends, so a warm plan re-reads current data every time it runs.

Counters (``cache.hits``, ``cache.misses``, ``cache.invalidations``,
``cache.stats_invalidations``, ``cache.evictions``,
``cache.epoch_bumps``) are incremented on the
registry the caller passes per operation — the same convention as every
other instrumented layer: no registry, no cost beyond one test.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


def normalize_query_text(text: str) -> str:
    """Whitespace/comment-insensitive cache key for O₂SQL text.

    Mirrors the lexer exactly: runs of whitespace outside string
    literals collapse to one space, ``--`` line comments vanish, and
    quoted literals (either quote character, no escapes) are preserved
    byte for byte — two texts normalize equal iff they tokenize equal.
    """
    out: list[str] = []
    pending_space = False
    i, length = 0, len(text)
    while i < length:
        ch = text[i]
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = length if end < 0 else end
            continue
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if out and pending_space:
            out.append(" ")
        pending_space = False
        if ch in "\"'":
            end = text.find(ch, i + 1)
            if end < 0:
                # unterminated literal: keep the raw tail so the parser
                # reports the error on a faithfully keyed text
                out.append(text[i:])
                break
            out.append(text[i:end + 1])
            i = end + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class CachedArtifacts:
    """Everything the pipeline front end produces for one query text.

    ``query`` is the calculus form (always present); ``plan`` is the
    optimized algebra plan (``None`` on the calculus backend).  Both are
    immutable after construction and safe to execute from several
    threads — per-run state lives in the forked evaluation context.

    ``verified`` records whether the plan passed the
    :mod:`repro.plancheck` static verifier before entering the cache
    (always ``False`` on the calculus backend — there is no plan to
    verify).  A cached serve never re-verifies: the flag travels with
    the entry.

    ``stats_generation`` records the costing generation
    (:attr:`repro.stats.StatisticsManager.generation`) the plan was
    costed under — ``None`` when the cost stage did not run.  A lookup
    that passes a newer generation drops the entry
    (``cache.stats_invalidations``): the data did not change, but what
    the cost model would decide did.

    ``sql_program`` is the compiled hybrid
    (:class:`repro.sqlbackend.backend.HybridPlan`) on the ``sql``
    backend — ``None`` everywhere else, and ``None`` on the ``sql``
    backend too when the plan could not be hybridized (the entry then
    serves through ordinary plan execution).
    """

    __slots__ = ("query", "plan", "epoch", "key", "verified",
                 "stats_generation", "sql_program")

    def __init__(self, query, plan, epoch: int, key,
                 verified: bool = False,
                 stats_generation: int | None = None,
                 sql_program=None) -> None:
        self.query = query
        self.plan = plan
        self.epoch = epoch
        self.key = key
        self.verified = verified
        self.stats_generation = stats_generation
        self.sql_program = sql_program

    def __repr__(self) -> str:  # pragma: no cover
        kind = "algebra plan" if self.plan is not None else "calculus"
        return f"CachedArtifacts({kind}, epoch={self.epoch})"


class EpochPin:
    """A reader's snapshot handle over a :class:`PlanCache` epoch.

    Pinning records the epoch current at construction; :attr:`stale`
    flips as soon as any mutation bumps the cache epoch.  The serving
    layer (:mod:`repro.serve`) pins the epoch at admission time to key
    in-flight request collapsing and to tag every response with the
    snapshot it reflects.
    """

    __slots__ = ("_cache", "epoch")

    def __init__(self, cache: "PlanCache", epoch: int) -> None:
        self._cache = cache
        self.epoch = epoch

    @property
    def stale(self) -> bool:
        """Has any mutation bumped the epoch since the pin was taken?"""
        return self._cache.epoch != self.epoch

    def __repr__(self) -> str:  # pragma: no cover
        return f"EpochPin(epoch={self.epoch}, stale={self.stale})"


class PlanCache:
    """A bounded, thread-safe, epoch-guarded artifact cache (LRU)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, CachedArtifacts] = OrderedDict()
        self._epoch = 0

    # -- epochs ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current data/schema epoch (monotonically increasing)."""
        return self._epoch

    def pin(self) -> EpochPin:
        """Pin the current epoch (a reader's snapshot handle)."""
        return EpochPin(self, self._epoch)

    def bump_epoch(self, metrics=None) -> int:
        """Mark every cached entry stale (they are dropped lazily, on
        their next lookup); returns the new epoch."""
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
        if metrics is not None:
            metrics.inc("cache.epoch_bumps")
        return epoch

    # -- lookup / store -------------------------------------------------------

    @staticmethod
    def key_for(text: str, backend: str, path_semantics: str,
                type_check: bool = True,
                structural: bool = False) -> tuple:
        return (normalize_query_text(text), backend, path_semantics,
                bool(type_check), bool(structural))

    def lookup(self, key: tuple, metrics=None,
               stats_generation: int | None = None
               ) -> CachedArtifacts | None:
        """The entry for ``key``, or ``None`` on a miss.  An entry from
        an earlier epoch counts as an invalidation *and* a miss; an
        entry costed under an older statistics generation (when the
        caller passes the current one) likewise, counted separately as
        ``cache.stats_invalidations``."""
        stale = False
        recost = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.epoch != self._epoch:
                del self._entries[key]
                entry = None
                stale = True
            if (entry is not None and stats_generation is not None
                    and entry.stats_generation is not None
                    and entry.stats_generation != stats_generation):
                del self._entries[key]
                entry = None
                recost = True
            if entry is not None:
                self._entries.move_to_end(key)
        if metrics is not None:
            if stale:
                metrics.inc("cache.invalidations")
            if recost:
                metrics.inc("cache.stats_invalidations")
            if entry is not None:
                metrics.inc("cache.hits")
            else:
                metrics.inc("cache.misses")
        return entry

    def store(self, key: tuple, entry: CachedArtifacts,
              metrics=None) -> None:
        """Insert (or overwrite) an entry; never stores stale artifacts
        — an entry compiled under an older epoch is simply dropped."""
        evicted = 0
        with self._lock:
            if entry.epoch != self._epoch:
                return
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        if metrics is not None and evicted:
            metrics.inc("cache.evictions", evicted)

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (the epoch is left untouched)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        """Structured snapshot: size, capacity and current epoch."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "epoch": self._epoch,
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"PlanCache(entries={len(self._entries)}, "
                f"epoch={self._epoch})")
