"""Prepared-query caching (the serving-path memoization layer).

* :mod:`repro.cache.plancache` — the thread-safe, epoch-guarded LRU
  cache of pipeline artifacts (calculus form + optimized algebra plan),
  keyed by normalized query text, backend and path-semantics mode;
* :mod:`repro.cache.prepared` — :class:`PreparedQuery`, the compile
  once / run many handle returned by ``DocumentStore.prepare``.

The cache closes the gap the XML query-language survey calls out
between calculus-style languages and deployed engines: repeated
evaluation no longer re-runs parse → translate → safety → inference →
compile, because those stages are pure functions of the query text and
the schema.  Data and schema changes bump a store-wide epoch so a
cached plan is never served stale.
"""

from repro.cache.plancache import (
    CachedArtifacts,
    EpochPin,
    PlanCache,
    normalize_query_text,
)
from repro.cache.prepared import PreparedQuery

__all__ = [
    "CachedArtifacts",
    "EpochPin",
    "PlanCache",
    "PreparedQuery",
    "normalize_query_text",
]
