"""First-class prepared queries.

A :class:`PreparedQuery` is a handle to a query whose pipeline
artifacts live in the engine's :class:`~repro.cache.plancache.PlanCache`:
preparing compiles immediately (a cold miss), and every subsequent
:meth:`run` reuses the cached calculus/plan until a data or schema
epoch bump forces one transparent recompilation.
"""

from __future__ import annotations


class PreparedQuery:
    """A query compiled once, executable many times.

    The handle stays valid across data updates: execution goes through
    the engine's epoch-guarded cache, so a store mutation after
    ``prepare()`` simply recompiles on the next :meth:`run` instead of
    serving a stale plan.
    """

    __slots__ = ("_engine", "text", "key")

    def __init__(self, engine, text: str) -> None:
        self._engine = engine
        self.text = text
        self.key = engine.cache_key(text)
        # compile eagerly so the first run() already hits
        engine.artifacts(text)

    def run(self):
        """Execute; the result is always a set (same as ``query()``)."""
        return self._engine.run(self.text)

    def explain_analyze(self):
        """The fully observed run — on a warm cache the span tree shows
        execution only (no parse/translate/compile stages)."""
        return self._engine.explain_analyze(self.text)

    @property
    def calculus(self):
        """The translated calculus query (recompiled when stale)."""
        return self._engine.artifacts(self.text).query

    @property
    def plan(self):
        """The optimized algebra plan (``None`` on the calculus
        backend); recompiled when stale."""
        return self._engine.artifacts(self.text).plan

    def __repr__(self) -> str:  # pragma: no cover
        summary = " ".join(self.text.split())
        if len(summary) > 50:
            summary = summary[:47] + "..."
        return f"PreparedQuery({summary!r})"
