"""The high-level facade: :class:`DocumentStore`.

One object that walks the paper end to end — parse a DTD (Figure 1),
map it to a schema (Figure 3), load documents (Figure 2), name
individual documents as persistence roots (``my_article``), and run
extended-O₂SQL queries (Q1–Q6)::

    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    titles = store.query("select t from my_article PATH_p.title(t)")
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.cache import EpochPin, PlanCache, PreparedQuery
from repro.errors import MappingError
from repro.mapping.dtd_to_schema import MappedSchema, map_dtd
from repro.mapping.loader import DocumentLoader
from repro.mapping.text_inverse import text_of
from repro.o2sql.engine import QueryEngine
from repro.oodb.display import format_schema
from repro.oodb.store import ObjectStore
from repro.oodb.types import ClassType
from repro.oodb.values import Oid, SetValue
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance import Element
from repro.sgml.instance_parser import parse_document
from repro.sgml.validator import validation_problems
from repro.stats import StatisticsManager
from repro.structindex import StructuralIndex
from repro.text.index import TextIndex


def _child_oids(value: object):
    """Direct oid references inside one value (no dereferencing)."""
    from repro.oodb.values import ListValue, SetValue, TupleValue
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, Oid):
            yield current
        elif isinstance(current, TupleValue):
            stack.extend(field_value for _, field_value in current)
        elif isinstance(current, (ListValue, SetValue)):
            stack.extend(current)


def _root_type(value: object, instance):
    """The declared type of a persistence root (shared by
    :meth:`DocumentStore.define_name` and the :meth:`DocumentStore.load`
    restore path): objects keep their allocation class, everything else
    is inferred structurally against the given instance."""
    if isinstance(value, Oid):
        return ClassType(value.class_name)
    from repro.oodb.typecheck import infer_value_type
    return infer_value_type(value, instance)


class DocumentStore:
    """An SGML document database over the extended O₂ model.

    **Concurrency model** (the contract :mod:`repro.serve` builds on).
    Reads are lock-free: every query executes on a fork of the engine's
    evaluation context (:meth:`~repro.calculus.evaluator.EvalContext.fork`),
    plans and cache entries are immutable once published, and the plan
    cache itself is lock-protected.  Writes (:meth:`load_text`,
    :meth:`load_tree`, :meth:`define_name`, :meth:`update_text`) are
    serialized on one writer lock and run inside :meth:`mutating`, a
    seqlock-style fence: :attr:`write_seq` is odd exactly while a
    mutation is applying.  A reader that samples an even ``write_seq``
    before a query and observes the same value afterwards is guaranteed
    a result consistent with the epoch it pinned — writers never wait
    for readers, and a reader that raced a writer simply retries (see
    ``repro.serve.QueryServer``).  Mutators publish by atomic swap
    wherever a reader could be navigating (persistence roots are
    rebound to freshly built collections; object values are rebound,
    never edited in place), so a torn traversal can at worst observe a
    mix of epochs — which the fence detects — never a crash.
    """

    def __init__(self, dtd_text: str, path_semantics: str = "restricted",
                 backend: str = "calculus", optimize: bool = True,
                 structural: bool = False) -> None:
        self.dtd = parse_dtd(dtd_text)
        problems = self.dtd.check()
        if problems:
            raise MappingError(
                "DTD problems: " + "; ".join(problems))
        self.mapped: MappedSchema = map_dtd(self.dtd)
        self.loader = DocumentLoader(self.mapped)
        self.store = ObjectStore(self.loader.instance)
        #: Prepared-query plan cache; every mutation this facade
        #: performs bumps its epoch, so cached plans are never stale.
        self.plan_cache = PlanCache()
        self._engine = QueryEngine(
            self.loader.instance, self.loader.provenance,
            path_semantics=path_semantics, backend=backend,
            optimize=optimize, cache=self.plan_cache,
            structural=structural)
        #: Table statistics for the optimizer's cost stage: snapshots
        #: follow the plan-cache epoch; executed plans feed actual
        #: cardinalities back (adaptive re-costing is opt-in —
        #: ``store.stats_manager.adaptive = True``).
        self.stats_manager = StatisticsManager(
            self.loader.instance, epoch_source=self.plan_cache,
            context=self._engine.ctx)
        self._engine.stats = self.stats_manager
        self.text_index: TextIndex | None = None
        self.struct_index: StructuralIndex | None = None
        self._metrics = None
        self._parents: dict[Oid, list[Oid]] | None = None
        #: Writer coordination: mutations serialize on this lock and
        #: run inside :meth:`mutating`, which keeps :attr:`write_seq`
        #: odd for their duration (a seqlock readers validate against).
        self._write_lock = threading.RLock()
        self._write_seq = 0
        self._mutation_depth = 0
        if structural:
            self.build_structural_index()

    # -- writer fence (snapshot-epoch serving protocol) -----------------------

    @property
    def write_seq(self) -> int:
        """The seqlock counter: odd exactly while a mutation applies.

        A reader that samples an even value before a query and reads
        the same value afterwards overlapped no writer — its result is
        consistent with the epoch pinned between the two samples."""
        return self._write_seq

    @contextmanager
    def mutating(self):
        """Run one mutation under the writer lock with the seqlock
        held odd.  Reentrant: nested mutators (``load_tree`` calls
        ``define_name``) count as one fence."""
        with self._write_lock:
            self._mutation_depth += 1
            if self._mutation_depth == 1:
                self._write_seq += 1
            try:
                yield
            finally:
                self._mutation_depth -= 1
                if self._mutation_depth == 0:
                    self._write_seq += 1

    @contextmanager
    def excluding_writers(self):
        """Hold the writer lock *without* mutating — the consistency
        fallback a reader takes after repeated seqlock conflicts (it
        briefly blocks writers; it never tears)."""
        with self._write_lock:
            yield

    # -- loading --------------------------------------------------------------

    @property
    def instance(self):
        return self.loader.instance

    @property
    def schema(self):
        return self.mapped.schema

    def load_text(self, document_text: str, name: str | None = None,
                  validate: bool = True) -> Oid:
        """Parse and load one SGML document; optionally register the
        document object under a persistence name (``my_article``)."""
        tree = parse_document(document_text, self.dtd)
        return self.load_tree(tree, name=name, validate=validate)

    def load_tree(self, tree: Element, name: str | None = None,
                  validate: bool = True) -> Oid:
        if validate:
            problems = validation_problems(tree, self.dtd)
            if problems:
                raise MappingError(
                    "invalid document: " + "; ".join(problems))
        with self.mutating():
            first_new = self.instance._next_oid  # oids the load creates
            oid = self.loader.load(tree)
            self._absorb_new_objects(first_new)
            if name is not None:
                self.define_name(name, oid)
            self._bump_epoch()
            if self.struct_index is not None:
                self.struct_index.note_data_change(
                    epoch=self.plan_cache.epoch)
        return oid

    def _absorb_new_objects(self, first_new: int) -> None:
        """Keep incremental structures current for a fresh document:
        index its objects' text (when an index exists) and extend the
        parent map (when one has been built)."""
        if self.text_index is None and self._parents is None:
            return
        for oid in self.instance.all_oids():
            if oid.number < first_new:
                continue
            if self.text_index is not None:
                content = text_of(oid, self.instance,
                                  self.loader.provenance)
                if content:
                    self.text_index.add(oid, content)
            if self._parents is not None:
                self._record_children(oid)

    def define_name(self, name: str, value: object) -> None:
        """Register an extra persistence root (an O₂ *name*)."""
        with self.mutating():
            self.schema.roots[name] = _root_type(value, self.instance)
            self.instance.set_root(name, value)
            # a new root changes what identifiers translate to
            self._bump_epoch()
            if self.struct_index is not None:
                self.struct_index.note_data_change(
                    epoch=self.plan_cache.epoch)

    # -- integrity ------------------------------------------------------------

    def check(self) -> None:
        """Typing (Section 5.1) and constraints (Figure 3)."""
        self.instance.check()
        self.mapped.constraints.check_instance(self.instance)

    # -- text indexing (Section 4.1) ------------------------------------------

    def build_text_index(self) -> TextIndex:
        """Index the textual content of every object (oid-keyed).

        The index is built off to the side and published by atomic
        assignment, so concurrent readers see either no index or the
        complete one — never a half-built state."""
        with self._write_lock:
            index = TextIndex()
            for oid in self.instance.all_oids():
                content = text_of(oid, self.instance,
                                  self.loader.provenance)
                if content:
                    index.add(oid, content)
            index.metrics = self._metrics
            self.text_index = index
            self._engine.ctx.text_index = index
            # costing must see the new index now — the store epoch did
            # not move, so the memoized statistics snapshot would
            # otherwise stay index-blind until the next data mutation
            self.stats_manager.refresh()
            return index

    # -- structural indexing (the XPath-accelerator layer, P9) ----------------

    def build_structural_index(self) -> StructuralIndex:
        """Build (or rebuild) the pre/post structural index over every
        persistence root and install it on the evaluation context.

        The index makes the ``structural`` rewrite's range scans hit;
        the facade keeps it fresh afterwards — loads and new names mark
        everything dirty, :meth:`update_text` marks only the blocks
        containing the edited object."""
        with self._write_lock:
            index = self.struct_index
            if index is None:
                index = StructuralIndex(self.instance,
                                        epoch_source=self.plan_cache)
                index.metrics = self._metrics
                self.struct_index = index
                self._engine.ctx.struct_index = index
            index.note_data_change(epoch=self.plan_cache.epoch)
            index.refresh()
            # same as build_text_index: fold the fresh block statistics
            # into the costing snapshot immediately
            self.stats_manager.refresh()
            return index

    # -- querying -------------------------------------------------------------

    def query(self, text: str) -> SetValue:
        """Run extended O₂SQL; the result is always a set.

        Pipeline artifacts (parse → translate → safety → inference →
        compile) are resolved through :attr:`plan_cache`, so repeating
        a query pays for execution only; any store mutation bumps the
        cache epoch and forces one transparent recompilation.
        """
        return self._engine.run(text)

    def prepare(self, text: str) -> PreparedQuery:
        """Compile ``text`` now and return a reusable handle; see
        :class:`~repro.cache.prepared.PreparedQuery`."""
        return self._engine.prepare(text)

    def query_many(self, texts) -> list[SetValue]:
        """Run a batch of queries (results in input order); cache
        lookups are amortized — one per distinct normalized text."""
        return self._engine.run_many(texts)

    @property
    def epoch(self) -> int:
        """The store's data/schema epoch (bumped by every mutation)."""
        return self.plan_cache.epoch

    def pin_epoch(self) -> EpochPin:
        """Pin the current epoch; the handle's ``stale`` property flips
        on the next mutation (see :class:`repro.cache.EpochPin`)."""
        return self.plan_cache.pin()

    def cache_key(self, text: str) -> tuple:
        """The plan-cache key of ``text`` under this store's engine
        configuration — what :mod:`repro.serve` collapses identical
        in-flight requests on."""
        return self._engine.cache_key(text)

    def _bump_epoch(self) -> None:
        self.plan_cache.bump_epoch(metrics=self._metrics)

    def explain(self, text: str) -> str:
        return self._engine.explain(text)

    def explain_analyze(self, text: str):
        """Run the query fully observed and return an
        :class:`~repro.observe.report.ExplainReport`: on the algebra
        backend, the executed plan annotated with the *actual* row count
        of every operator; on both backends, the stage span tree
        (parse → translate → safety → inference → compile/evaluate →
        execute) and a deterministic counter snapshot (dereferences,
        index probes, binding enumerations, union fan-out)."""
        return self._engine.explain_analyze(text)

    # -- metrics --------------------------------------------------------------

    def enable_metrics(self):
        """Install a persistent metrics registry on every layer (object
        store, text index, evaluation context).  Returns the registry;
        counting starts now and covers all subsequent operations."""
        if self._metrics is None:
            from repro.observe import MetricsRegistry
            self._metrics = MetricsRegistry()
        self._wire_metrics()
        return self._metrics

    def _wire_metrics(self) -> None:
        self.instance.metrics = self._metrics
        self.store.metrics = self._metrics
        self._engine.ctx.metrics = self._metrics
        self.stats_manager.metrics = self._metrics
        if self.text_index is not None:
            self.text_index.metrics = self._metrics
        if self.struct_index is not None:
            self.struct_index.metrics = self._metrics
        if self._engine.sql_backend is not None:
            self._engine.sql_backend.metrics = self._metrics
            self._engine.sql_backend.shred.metrics = self._metrics

    def metrics(self) -> dict:
        """Structured snapshot of the store-wide metrics registry
        (auto-enables metrics on first call)."""
        if self._metrics is None:
            self.enable_metrics()
        return self._metrics.snapshot()

    def reset_metrics(self) -> None:
        if self._metrics is not None:
            self._metrics.reset()

    def check_query(self, text: str) -> dict:
        return self._engine.check(text)

    def lint(self, text: str) -> list:
        """Schema-aware static diagnostics for one query text
        (:mod:`repro.plancheck`): front-end rejections (syntax, unknown
        roots, safety, type errors) come back as *error* diagnostics
        with positions instead of exceptions, and queries that pass get
        *warnings* for statically-empty path atoms, impossible
        comparisons, unused variables and constant predicates.  A query
        with no error diagnostics is guaranteed to execute without
        :class:`~repro.errors.SafetyError`."""
        from repro.plancheck import lint_query
        return lint_query(text, self.schema, metrics=self._metrics)

    def text(self, value: object) -> str:
        """The ``text()`` operator (inverse mapping)."""
        return text_of(value, self.instance, self.loader.provenance)

    # -- inverse mapping (footnote 1 / Section 6) ---------------------------

    def export_document(self, document: Oid | str) -> Element:
        """Rebuild the SGML tree of a loaded (possibly updated)
        document from its database objects."""
        from repro.mapping.inverse import export_document
        if isinstance(document, str):
            document = self.instance.root(document)
        return export_document(self.mapped, self.instance, document,
                               self.loader.id_tokens)

    def export_text(self, document: Oid | str,
                    minimize: bool = False) -> str:
        """The exported tree serialised back to SGML text."""
        from repro.sgml.writer import write_document
        return write_document(self.export_document(document), self.dtd,
                              minimize=minimize)

    def export_dtd(self) -> str:
        """Regenerate DTD text from the mapped schema."""
        from repro.mapping.inverse import schema_to_dtd
        return schema_to_dtd(self.mapped)

    def update_text(self, oid: Oid, new_text: str) -> None:
        """Edit the character data of a #PCDATA-bearing object in the
        database (Section 6's update direction).  The change is visible
        to queries and to :meth:`export_document`.

        An existing text index is maintained incrementally: the edited
        object *and every ancestor* embed the changed character data in
        their reconstructed text, so all of them are re-indexed (and
        the plan-cache epoch is bumped, so a cached index-backed plan
        re-probes the fresh postings on its recompile).
        """
        from repro.oodb.values import TupleValue
        from repro.mapping.naming import TEXT_FIELD
        with self.mutating():
            value = self.instance.deref(oid)
            if not (isinstance(value, TupleValue)
                    and value.has_attribute(TEXT_FIELD)):
                raise MappingError(
                    f"object {oid!r} carries no character data")
            self.store.update_object(
                oid, value.replace(TEXT_FIELD, new_text))
            # The source-document snapshot is stale for this object and
            # all its ancestors; drop provenance entirely so text()
            # switches to the (always current) structural reconstruction.
            self.loader.provenance.clear()
            if self.text_index is not None:
                for target in self._ancestry(oid):
                    content = text_of(target, self.instance,
                                      self.loader.provenance)
                    self.text_index.replace(target, content or "")
            self._bump_epoch()
            if self.struct_index is not None:
                # targeted staleness: only the interval blocks whose
                # arrays contain the edited object are rebuilt on the
                # next refresh
                self.struct_index.note_object_update(
                    oid, epoch=self.plan_cache.epoch)

    # -- containment (for incremental index maintenance) --------------------

    def _parent_map(self) -> dict[Oid, list[Oid]]:
        """oid → direct parent oids, built lazily from one full scan
        (documents are trees, but shared objects are tolerated) and
        kept current by :meth:`load_tree`.  Character-data edits never
        change the structure, so no maintenance is needed there."""
        if self._parents is None:
            self._parents = {}
            for oid in self.instance.all_oids():
                self._record_children(oid)
        return self._parents

    def _record_children(self, parent: Oid) -> None:
        for child in _child_oids(self.instance.deref(parent)):
            self._parents.setdefault(child, []).append(parent)

    def _ancestry(self, oid: Oid) -> list[Oid]:
        """``oid`` plus every object reachable upward from it."""
        parents = self._parent_map()
        chain = [oid]
        seen = {oid}
        frontier = [oid]
        while frontier:
            next_frontier = []
            for node in frontier:
                for parent in parents.get(node, ()):
                    if parent not in seen:
                        seen.add(parent)
                        chain.append(parent)
                        next_frontier.append(parent)
            frontier = next_frontier
        return chain

    # -- persistence --------------------------------------------------------

    def save(self, path) -> int:
        """Snapshot the whole database to a file; returns bytes
        written.  The DTD is saved alongside (``<path>.dtd``) so
        :meth:`load` can rebuild the schema."""
        import os
        written = self.store.save(path)
        with open(f"{os.fspath(path)}.dtd", "w") as handle:
            handle.write(self._dtd_source())
        return written

    def _dtd_source(self) -> str:
        from repro.mapping.inverse import schema_to_dtd
        return schema_to_dtd(self.mapped)

    @classmethod
    def load(cls, path, **config) -> "DocumentStore":
        """Rebuild a store from :meth:`save` output.

        Loader provenance is not persisted: ``text()`` uses the (always
        correct) structural reconstruction after a reload, and documents
        can be re-exported via the inverse mapping.

        The snapshot stores *data*, not engine configuration;
        ``config`` forwards constructor keywords (``backend=``,
        ``structural=``, ``path_semantics=``, ...) so a store restored
        for a differently-configured engine — e.g. the relational
        ``backend="sql"`` — is rebuilt with that configuration.
        """
        import os
        from repro.oodb.store import ObjectStore
        with open(f"{os.fspath(path)}.dtd") as handle:
            dtd_text = handle.read()
        store = cls(dtd_text, **config)

        def declare(name: str, value: object, instance) -> None:
            # same inference as define_name — against the *restored*
            # instance, so oids inside collection/tuple roots resolve
            store.schema.roots[name] = _root_type(value, instance)

        restored = ObjectStore.load(store.schema, path, declare)
        store.loader.instance = restored.instance
        store.store = ObjectStore(restored.instance)
        # a reloaded store starts cold: fresh cache at epoch 0, metrics
        # counting from zero, no parent map yet
        store.plan_cache = PlanCache()
        store._parents = None
        was_structural = store._engine.structural
        store._engine = QueryEngine(
            restored.instance, provenance=None,
            path_semantics=store._engine.ctx.path_semantics,
            backend=store._engine.backend,
            optimize=store._engine.optimize,
            cache=store.plan_cache,
            structural=was_structural)
        store.struct_index = None
        store.stats_manager = StatisticsManager(
            restored.instance, epoch_source=store.plan_cache,
            context=store._engine.ctx)
        store._engine.stats = store.stats_manager
        if was_structural:
            store.build_structural_index()
        return store

    # -- reporting ------------------------------------------------------------

    def describe_schema(self) -> str:
        """The Figure-3 rendering of the mapped schema."""
        return format_schema(self.schema, self.mapped.constraints)

    def stats(self) -> dict:
        report = {
            "documents": len(self.instance.root(self.mapped.root_name)),
            "objects": self.instance.object_count(),
            "classes": len(self.schema.class_names),
            "bytes": self.store.total_bytes(),
            "epoch": self.plan_cache.epoch,
            "plan_cache": self.plan_cache.stats(),
            "statistics": self.stats_manager.report(),
        }
        if self.struct_index is not None:
            report["struct_index"] = self.struct_index.stats()
        return report

    def statistics(self):
        """The current optimizer-statistics snapshot (collected lazily,
        refreshed on epoch or costing-generation change)."""
        return self.stats_manager.snapshot()
