"""Reproduction of Christophides, Abiteboul, Cluet & Scholl,
*From Structured Documents to Novel Query Facilities* (SIGMOD 1994).

The package implements the whole stack the paper describes:

* :mod:`repro.sgml` — DTD + document-instance parsing (Section 2),
* :mod:`repro.oodb` — the extended O₂ data model with ordered tuples
  and marked unions (Sections 3 / 5.1),
* :mod:`repro.mapping` — the SGML → OODB mapping (Section 3),
* :mod:`repro.text` — IR predicates and full-text indexing (Section 4.1),
* :mod:`repro.paths` — paths as first-class citizens (Sections 4.3 / 5.2),
* :mod:`repro.o2sql` — the extended query language (Section 4),
* :mod:`repro.calculus` — the formal calculus (Section 5),
* :mod:`repro.algebra` — the algebraization (Section 5.4),
* :mod:`repro.cache` — the prepared-query plan cache (serving path),
* :mod:`repro.serve` — the concurrent multi-tenant query server,
* :mod:`repro.corpus` — the paper's figures and synthetic corpora.

Quickstart::

    from repro import DocumentStore
    from repro.corpus import ARTICLE_DTD, SAMPLE_ARTICLE

    store = DocumentStore(ARTICLE_DTD)
    store.load_text(SAMPLE_ARTICLE, name="my_article")
    titles = store.query("select t from my_article PATH_p.title(t)")
"""

from repro.cache import PlanCache, PreparedQuery
from repro.serve import QueryServer
from repro.session import DocumentStore

__version__ = "1.0.0"

__all__ = ["DocumentStore", "PlanCache", "PreparedQuery", "QueryServer",
           "__version__"]
