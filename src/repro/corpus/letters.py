"""The letters database of Sections 4.4 and 5.3.

The persistence root ``Letters`` has the paper's exact type::

    [(a1: [from: string, to: string, content: string]
    + a2: [to: string, from: string, content: string])]

— a list of marked tuples where the recipient (``to``) and sender
(``from``) appear in permutable order (the SGML ``&`` connector), the
marker recording which order the source document used.  Q6 asks for the
letters where the sender precedes the recipient; queries (†) of
Section 5.3 express it with and without knowledge of the markers.
"""

from __future__ import annotations

from repro.oodb.instance import Instance
from repro.oodb.schema import Schema, schema_from_classes
from repro.oodb.types import STRING, list_of, tuple_of, union_of
from repro.oodb.values import ListValue, TupleValue, UnionValue

LETTER_A1 = tuple_of(            # sender first
    ("from", STRING), ("to", STRING), ("content", STRING))
LETTER_A2 = tuple_of(            # recipient first
    ("to", STRING), ("from", STRING), ("content", STRING))

LETTERS_TYPE = list_of(union_of(("a1", LETTER_A1), ("a2", LETTER_A2)))


def letters_schema() -> Schema:
    """A schema whose only member is the Letters root."""
    return schema_from_classes({}, roots={"Letters": LETTERS_TYPE})


#: (sender_first, from, to, content) — deterministic sample data.
SAMPLE_LETTERS = [
    (True, "S. Abiteboul", "M. Scholl", "The calculus draft is ready."),
    (False, "S. Cluet", "V. Christophides",
     "Please review the O2SQL extension."),
    (True, "V. Christophides", "S. Cluet",
     "The SGML parser now infers omitted tags."),
    (False, "M. Scholl", "S. Abiteboul",
     "Comments on the path semantics attached."),
    (True, "Euroclid", "INRIA", "Parser licence renewal enclosed."),
]


def build_letters_database(letters=None) -> Instance:
    """Build the instance; ``letters`` defaults to :data:`SAMPLE_LETTERS`."""
    db = Instance(letters_schema())
    rows = []
    for sender_first, sender, recipient, content in (
            letters or SAMPLE_LETTERS):
        if sender_first:
            rows.append(UnionValue("a1", TupleValue([
                ("from", sender), ("to", recipient),
                ("content", content)])))
        else:
            rows.append(UnionValue("a2", TupleValue([
                ("to", recipient), ("from", sender),
                ("content", content)])))
    db.set_root("Letters", ListValue(rows))
    db.check()
    return db


def generate_letters(count: int, seed: int = 7) -> list:
    """A deterministic synthetic letters corpus for benchmarks."""
    people = ["Alice", "Bob", "Carol", "Dave", "Erin", "Frank",
              "Grace", "Heidi"]
    topics = ["the schema mapping", "the path calculus", "union typing",
              "the SGML export", "storage overhead", "the demo"]
    state = seed
    rows = []
    for i in range(count):
        state = (state * 1103515245 + 12345) % (2 ** 31)
        sender = people[state % len(people)]
        recipient = people[(state // 7) % len(people)]
        topic = topics[(state // 11) % len(topics)]
        sender_first = (state // 13) % 2 == 0
        rows.append((sender_first, sender, recipient,
                     f"Letter {i} about {topic}."))
    return rows
