"""The document instance of Figure 2.

The figure exercises the tag-omission machinery: ``<author>`` elements,
abstracts, titles and paragraphs never close explicitly, and the figure's
ellipses are filled in with an ``affil`` and an ``acknowl`` so the
instance is valid against the Figure-1 DTD.
"""

from __future__ import annotations

from repro.corpus.article_dtd import article_dtd
from repro.sgml.instance import Element
from repro.sgml.instance_parser import parse_document

SAMPLE_ARTICLE = """\
<article status="final">
<title> From Structured Documents to Novel Query Facilities
<author> V. Christophides
<author> S. Abiteboul
<author> S. Cluet
<author> M. Scholl
<affil> I.N.R.I.A.
<abstract> Structured documents (e.g., SGML) can benefit a lot from
database support and more specifically from object-oriented database
(OODB) management systems...
<section>
  <title> Introduction
  <body><paragr> This paper is organized as follows. Section 2 introduces
  the SGML standard. The mapping from SGML to the O2 DBMS is defined in
  Section 3. Section 4 presents the extension ...
  </body></section>
<section>
  <title> SGML preliminaries
  <body><paragr> In this section, we present the main features of SGML.
  (A general presentation is clearly beyond the scope of this paper.)
  </body></section>
<acknowl> We are grateful to O2 Technology, Euroclid and AIS
Berger-Levrault for their technical support during this project.
</article>
"""


def sample_article_tree() -> Element:
    """Parse Figure 2 against the Figure-1 DTD."""
    return parse_document(SAMPLE_ARTICLE, article_dtd())
