"""Corpora used by tests, examples and benchmarks.

* :mod:`repro.corpus.article_dtd` — the Figure-1 DTD text,
* :mod:`repro.corpus.sample_article` — the Figure-2 document instance,
* :mod:`repro.corpus.generator` — deterministic synthetic article corpus,
* :mod:`repro.corpus.letters` — the letters database of Sections 4.4/5.3,
* :mod:`repro.corpus.knuth` — the Knuth_Books database of Section 5.
"""

from repro.corpus.article_dtd import ARTICLE_DTD, article_dtd
from repro.corpus.sample_article import SAMPLE_ARTICLE, sample_article_tree

__all__ = ["ARTICLE_DTD", "SAMPLE_ARTICLE", "article_dtd",
           "sample_article_tree"]
