"""The article DTD of Figure 1, verbatim (modulo the paper's two typos).

The paper's figure declares ``author`` twice (lines 5-6, an obvious
duplication artifact) and omits an ``affil`` declaration even though the
``article`` content model requires one; we keep one ``author`` declaration
and declare ``affil`` like the other #PCDATA elements.  Line 16's
``NDATA >`` (missing notation name) is preserved — the DTD parser
tolerates it.  Line 18 declares ``reflabel IDREF #REQUIRED`` but the
paper's own Figure-2 instance has paragraphs without it, so we relax it
to ``#IMPLIED`` to keep the two figures mutually consistent.
"""

from __future__ import annotations

from repro.sgml.dtd import Dtd
from repro.sgml.dtd_parser import parse_dtd

ARTICLE_DTD = """\
<!DOCTYPE article [
<!ELEMENT article - -  (title, author+, affil, abstract, section+, acknowl)>
<!ATTLIST article      status (final | draft) draft>
<!ELEMENT title   - O  (#PCDATA)>
<!ELEMENT author  - O  (#PCDATA)>
<!ELEMENT affil   - O  (#PCDATA)>
<!ELEMENT abstract - O (#PCDATA)>
<!ELEMENT section - O  ((title, body+) | (title, body*, subsectn+))>
<!ELEMENT subsectn - O (title, body+)>
<!ELEMENT body    - O  (figure | paragr)>
<!ELEMENT figure  - O  (picture, caption?)>
<!ATTLIST figure       label ID #IMPLIED>
<!ELEMENT picture - O  EMPTY>
<!ATTLIST picture      sizex NMTOKEN "16cm"
                       sizey NMTOKEN #IMPLIED
                       file ENTITY #IMPLIED>
<!ELEMENT caption O O  (#PCDATA)>
<!ENTITY fig1 SYSTEM "/u/christop/SGML/image1" NDATA >
<!ELEMENT paragr  - O  (#PCDATA)>
<!ATTLIST paragr       reflabel IDREF #IMPLIED>
<!ELEMENT acknowl - O  (#PCDATA)> ]>
"""


def article_dtd() -> Dtd:
    """Parse and return the Figure-1 DTD."""
    return parse_dtd(ARTICLE_DTD)
