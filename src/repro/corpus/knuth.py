"""The ``Knuth_Books`` database of Section 5.

The paper's worked examples navigate from a persistent root
``Knuth_Books`` through volumes and chapters::

    Knuth_Books P ·volumes[2] Q ·chapters[3] (X)

We build a small library: a Books root holding a tuple with a ``volumes``
list; each volume has ``title``, ``chapters`` and ``status``; chapters
have ``title``, ``sections`` (a *set*, so the ``·sections{X}`` example
works), ``review`` and ``author`` fields.  The data includes "Jo" in an
author attribute (for the "In which attribute can Jo be found?" example)
and a ``status`` attribute (for ``P ·status(X)``).
"""

from __future__ import annotations

from repro.oodb.instance import Instance
from repro.oodb.schema import Schema, schema_from_classes
from repro.oodb.types import STRING, c, list_of, set_of, tuple_of
from repro.oodb.values import ListValue, SetValue, TupleValue


def knuth_schema() -> Schema:
    """The schema behind the Knuth_Books root."""
    classes = {
        "Volume": tuple_of(
            ("title", STRING),
            ("chapters", list_of(c("Chapter"))),
            ("status", STRING)),
        "Chapter": tuple_of(
            ("title", STRING),
            ("sections", set_of(tuple_of(
                ("title", STRING), ("body", STRING)))),
            ("review", set_of(STRING)),
            ("author", STRING)),
    }
    roots = {"Knuth_Books": tuple_of(
        ("series", STRING),
        ("volumes", list_of(c("Volume"))))}
    return schema_from_classes(classes, roots=roots)


def build_knuth_database() -> Instance:
    """The populated instance; deterministic content."""
    db = Instance(knuth_schema())

    def chapter(title: str, author: str, reviewers: list[str],
                sections: list[tuple[str, str]]):
        return db.new_object("Chapter", TupleValue([
            ("title", title),
            ("sections", SetValue(
                TupleValue([("title", s_title), ("body", s_body)])
                for s_title, s_body in sections)),
            ("review", SetValue(reviewers)),
            ("author", author)]))

    def volume(title: str, status: str, chapters: list):
        return db.new_object("Volume", TupleValue([
            ("title", title),
            ("chapters", ListValue(chapters)),
            ("status", status)]))

    volume1 = volume(
        "Fundamental Algorithms", "final",
        [chapter("Basic Concepts", "Knuth", ["D. Scott"],
                 [("Algorithms", "An algorithm is a finite type of rule"),
                  ("Mathematical Preliminaries",
                   "Induction and asymptotic notation")]),
         chapter("Information Structures", "Knuth", [],
                 [("Linear Lists", "Stacks queues and deques"),
                  ("Trees", "Traversal of binary trees")])])
    volume2 = volume(
        "Seminumerical Algorithms", "final",
        [chapter("Random Numbers", "Knuth", ["D. Scott"],
                 [("Generating Uniform Random Numbers",
                   "The linear congruential method"),
                  ("Statistical Tests", "Chi-square and spectral tests")]),
         chapter("Arithmetic", "Jo", [],
                 [("Positional Number Systems", "Radix representations"),
                  ("Floating Point Arithmetic",
                   "Accuracy of floating point type operations"),
                  ("Introduction", "The type of arithmetic we study")])])
    volume3 = volume(
        "Sorting and Searching", "draft",
        [chapter("Sorting", "Knuth", ["J. Doe", "D. Scott"],
                 [("Internal Sorting", "Quicksort heapsort and merging"),
                  ("Optimum Sorting", "Minimum comparison sorting")])])

    db.set_root("Knuth_Books", TupleValue([
        ("series", "The Art of Computer Programming"),
        ("volumes", ListValue([volume1, volume2, volume3]))]))
    db.check()
    return db
