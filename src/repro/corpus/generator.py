"""Deterministic synthetic article corpus (for tests and benchmarks).

Generates SGML documents valid against the Figure-1 DTD, with
controllable size and a seeded linear-congruential stream so every run
reproduces the same corpus (the paper's own collections are not
available; DESIGN.md documents this substitution).

Vocabulary is chosen so the paper's queries are non-trivially selective:
some section titles contain "SGML" and "OODBMS" (Q1), some paragraphs
contain "complex object" (Q2), and attribute values include "final"
(Q5).
"""

from __future__ import annotations

from repro.corpus.article_dtd import article_dtd
from repro.sgml.instance import Element

_TITLE_WORDS = [
    "SGML", "OODBMS", "Documents", "Queries", "Paths", "Unions",
    "Storage", "Mapping", "Calculus", "Algebra", "Types", "Schemas",
]
_BODY_WORDS = [
    "structured", "document", "database", "object", "complex", "query",
    "path", "attribute", "schema", "type", "union", "tuple", "list",
    "section", "retrieval", "pattern", "matching", "index", "storage",
    "evaluation", "algebra", "calculus", "variable", "marker",
]
_AUTHORS = [
    "V. Christophides", "S. Abiteboul", "S. Cluet", "M. Scholl",
    "C. Delobel", "F. Bancilhon", "P. Kanellakis", "T. Milo",
]
_AFFILS = ["INRIA", "CNAM", "O2 Technology", "Euroclid"]


class _Rng:
    """A tiny deterministic generator (no global random state)."""

    def __init__(self, seed: int) -> None:
        self.state = seed % (2 ** 31) or 1

    def next(self) -> int:
        self.state = (self.state * 1103515245 + 12345) % (2 ** 31)
        return self.state

    def range(self, low: int, high: int) -> int:
        """Inclusive bounds."""
        return low + self.next() % (high - low + 1)

    def pick(self, items):
        return items[self.next() % len(items)]


def generate_article(seed: int = 1, sections: int | None = None,
                     paragraphs_per_body: int = 1,
                     subsection_probability_percent: int = 30) -> Element:
    """One synthetic article tree, valid against the Figure-1 DTD."""
    rng = _Rng(seed)
    article = Element("article", {
        "status": "final" if rng.next() % 2 else "draft"})
    article.append(_pcdata("title", _title(rng, 4)))
    for _ in range(rng.range(1, 4)):
        article.append(_pcdata("author", rng.pick(_AUTHORS)))
    article.append(_pcdata("affil", rng.pick(_AFFILS)))
    article.append(_pcdata("abstract", _sentence(rng, 20)))
    section_count = sections if sections is not None else rng.range(2, 5)
    for _ in range(max(1, section_count)):
        article.append(_section(rng, paragraphs_per_body,
                                subsection_probability_percent))
    article.append(_pcdata("acknowl", _sentence(rng, 8)))
    return article


def _section(rng: _Rng, paragraphs: int, subsection_pct: int) -> Element:
    section = Element("section")
    section.append(_pcdata("title", _title(rng, 3)))
    if rng.range(0, 99) < subsection_pct:
        # a2 branch: title, body*, subsectn+
        for _ in range(rng.range(0, 2)):
            section.append(_body(rng, paragraphs))
        for _ in range(rng.range(1, 3)):
            subsection = Element("subsectn")
            subsection.append(_pcdata("title", _title(rng, 3)))
            for _ in range(rng.range(1, 2)):
                subsection.append(_body(rng, paragraphs))
            section.append(subsection)
    else:
        # a1 branch: title, body+
        for _ in range(rng.range(1, 3)):
            section.append(_body(rng, paragraphs))
    return section


def _body(rng: _Rng, paragraphs: int) -> Element:
    body = Element("body")
    if rng.range(0, 9) == 0:
        figure = Element("figure")
        figure.append(Element("picture", {"sizex": "16cm"}))
        caption = _pcdata("caption", _title(rng, 2))
        figure.append(caption)
        body.append(figure)
    else:
        body.append(_pcdata("paragr", _sentence(rng, 12 * paragraphs)))
    return body


def _pcdata(name: str, content: str) -> Element:
    element = Element(name)
    element.append_text(content)
    return element


def _title(rng: _Rng, words: int) -> str:
    return " ".join(rng.pick(_TITLE_WORDS) for _ in range(words))


def _sentence(rng: _Rng, words: int) -> str:
    picked = [rng.pick(_BODY_WORDS) for _ in range(words)]
    if rng.range(0, 3) == 0 and len(picked) >= 2:
        # splice the Q2 phrase so "complex object" queries are selective
        at = rng.range(0, len(picked) - 2)
        picked[at:at + 2] = ["complex", "object"]
    return " ".join(picked) + "."


def generate_corpus(count: int, seed: int = 42, **article_options):
    """``count`` article trees with seeds derived from ``seed``."""
    return [generate_article(seed * 1000 + i, **article_options)
            for i in range(count)]


def corpus_database(count: int, seed: int = 42, **article_options):
    """Generate, load and return ``(mapped_schema, loader)``."""
    from repro.mapping.dtd_to_schema import map_dtd
    from repro.mapping.loader import DocumentLoader

    mapped = map_dtd(article_dtd())
    loader = DocumentLoader(mapped)
    for tree in generate_corpus(count, seed, **article_options):
        loader.load(tree)
    return mapped, loader
