"""The information-retrieval substrate (Section 4.1).

IRS-style facilities the paper grafts onto the query language:

* :mod:`repro.text.patterns` — the pattern language (concatenation,
  disjunction, Kleene closure) and its boolean combinations,
* :mod:`repro.text.nfa` — a Thompson-construction NFA matcher (the
  library deliberately implements its own engine instead of ``re``),
* :mod:`repro.text.predicates` — the ``contains`` and ``near``
  interpreted predicates,
* :mod:`repro.text.index` — a positional inverted index used by the
  optimizer to evaluate ``contains`` without scanning.
"""

from repro.text.index import TextIndex, tokenize
from repro.text.patterns import (
    AndExpr,
    NotExpr,
    OrExpr,
    Pattern,
    PatternExpr,
    parse_pattern,
    parse_pattern_expr,
)
from repro.text.predicates import contains, near

__all__ = [
    "AndExpr", "NotExpr", "OrExpr", "Pattern", "PatternExpr", "TextIndex",
    "contains", "near", "parse_pattern", "parse_pattern_expr", "tokenize",
]
