"""The pattern language of the ``contains`` predicate (Section 4.1).

A *pattern* is a word or phrase template: whitespace splits it into word
patterns, each of which is a small regular expression (see
:mod:`repro.text.nfa`).  ``contains`` takes a *pattern expression* — a
boolean combination of patterns, as in Q1::

    s.title contains ("SGML" and "OODBMS")

The expression grammar is::

    expr   := term (OR term)*
    term   := factor (AND factor)*
    factor := NOT factor | '(' expr ')' | '"' pattern '"'

Patterns match on word boundaries: ``"SGML"`` matches the token ``SGML``
but not ``SGMLish`` (exactly the IRS behaviour the paper invokes); a
multi-word pattern like ``"complex object"`` matches consecutive tokens.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PatternError
from repro.text.nfa import Nfa, cached_matcher


def tokenize_words(text: str) -> list[str]:
    """Split text into word tokens (runs of non-space, punctuation
    stripped from the edges)."""
    words = []
    for raw in text.split():
        token = raw.strip(".,;:!?()[]{}'\"`")
        if token:
            words.append(token)
    return words


class PatternExpr:
    """Base class of pattern expressions."""

    def holds(self, tokens: Sequence[str]) -> bool:
        """Does the expression hold on a token sequence?"""
        raise NotImplementedError

    def holds_on_text(self, text: str) -> bool:
        return self.holds(tokenize_words(text))

    def patterns(self) -> list["Pattern"]:
        """Every leaf pattern in the expression."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and str(other) == str(self)

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class Pattern(PatternExpr):
    """A single (possibly multi-word) pattern."""

    def __init__(self, source: str) -> None:
        if not source:
            raise PatternError("empty pattern")
        self.source = source
        # matchers come from the shared LRU: parsing the same pattern
        # text repeatedly (one Pattern per query execution) reuses the
        # compiled NFA instead of re-running the Thompson construction
        self.word_matchers: list[Nfa] = [
            cached_matcher(word) for word in source.split()]
        if not self.word_matchers:
            raise PatternError("pattern has no words")

    @property
    def is_phrase(self) -> bool:
        return len(self.word_matchers) > 1

    def holds(self, tokens: Sequence[str]) -> bool:
        width = len(self.word_matchers)
        if width == 1:
            matcher = self.word_matchers[0]
            return any(matcher.matches(token) for token in tokens)
        for start in range(len(tokens) - width + 1):
            if all(matcher.matches(tokens[start + offset])
                   for offset, matcher in enumerate(self.word_matchers)):
                return True
        return False

    def match_word(self, token: str) -> bool:
        """Match a single token against a one-word pattern."""
        if self.is_phrase:
            raise PatternError(
                f"pattern {self.source!r} is a phrase, not a word")
        return self.word_matchers[0].matches(token)

    def patterns(self) -> list["Pattern"]:
        return [self]

    def literal_words(self) -> list[str]:
        """The pattern's plain-literal words (no metacharacters) —
        the words whose posting-list sizes bound the pattern's
        selectivity without issuing an index probe."""
        from repro.text.index import _is_literal_word
        return [word for word in self.source.split()
                if _is_literal_word(word)]

    def has_regex_word(self) -> bool:
        """True when any word needs the NFA (a vocabulary scan at
        probe time instead of a direct posting-list hit)."""
        return len(self.literal_words()) < len(self.word_matchers)

    def __str__(self) -> str:
        return f'"{self.source}"'


class AndExpr(PatternExpr):
    """Both operands must hold on the token sequence."""

    def __init__(self, left: PatternExpr, right: PatternExpr) -> None:
        self.left = left
        self.right = right

    def holds(self, tokens: Sequence[str]) -> bool:
        return self.left.holds(tokens) and self.right.holds(tokens)

    def patterns(self) -> list[Pattern]:
        return self.left.patterns() + self.right.patterns()

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


class OrExpr(PatternExpr):
    """Either operand may hold."""

    def __init__(self, left: PatternExpr, right: PatternExpr) -> None:
        self.left = left
        self.right = right

    def holds(self, tokens: Sequence[str]) -> bool:
        return self.left.holds(tokens) or self.right.holds(tokens)

    def patterns(self) -> list[Pattern]:
        return self.left.patterns() + self.right.patterns()

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


class NotExpr(PatternExpr):
    """The operand must not hold."""

    def __init__(self, child: PatternExpr) -> None:
        self.child = child

    def holds(self, tokens: Sequence[str]) -> bool:
        return not self.child.holds(tokens)

    def patterns(self) -> list[Pattern]:
        return self.child.patterns()

    def __str__(self) -> str:
        return f"(not {self.child})"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_pattern(source: str) -> Pattern:
    """Build a single :class:`Pattern` from its text."""
    return Pattern(source)


def parse_pattern_expr(text: str) -> PatternExpr:
    """Parse a boolean pattern expression, e.g.
    ``"SGML" and "OODBMS"`` or ``("a" or "b") and not "c"``."""
    parser = _ExprParser(text)
    node = parser.or_expr()
    parser.skip_ws()
    if parser.pos != len(text):
        raise PatternError(
            f"trailing characters in pattern expression: "
            f"{text[parser.pos:]!r}")
    return node


class _ExprParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek_word(self) -> str:
        self.skip_ws()
        end = self.pos
        while end < len(self.text) and self.text[end].isalpha():
            end += 1
        return self.text[self.pos:end].lower()

    def eat_word(self, word: str) -> bool:
        if self.peek_word() == word:
            self.skip_ws()
            self.pos += len(word)
            return True
        return False

    def or_expr(self) -> PatternExpr:
        node = self.and_expr()
        while self.eat_word("or"):
            node = OrExpr(node, self.and_expr())
        return node

    def and_expr(self) -> PatternExpr:
        node = self.factor()
        while self.eat_word("and"):
            node = AndExpr(node, self.factor())
        return node

    def factor(self) -> PatternExpr:
        self.skip_ws()
        if self.eat_word("not"):
            return NotExpr(self.factor())
        if self.pos < len(self.text) and self.text[self.pos] == "(":
            self.pos += 1
            node = self.or_expr()
            self.skip_ws()
            if self.pos >= len(self.text) or self.text[self.pos] != ")":
                raise PatternError(
                    f"unbalanced '(' in pattern expression {self.text!r}")
            self.pos += 1
            return node
        if self.pos < len(self.text) and self.text[self.pos] in "\"'":
            quote = self.text[self.pos]
            end = self.text.find(quote, self.pos + 1)
            if end < 0:
                raise PatternError(
                    f"unterminated pattern literal in {self.text!r}")
            source = self.text[self.pos + 1:end]
            self.pos = end + 1
            return Pattern(source)
        raise PatternError(
            f"expected a pattern literal at position {self.pos} in "
            f"{self.text!r}")
