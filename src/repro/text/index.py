"""A positional inverted index (the "full text indexing" of Section 4.1).

The index maps tokens to postings ``(key, position)``.  Keys are
caller-chosen (typically oids).  The optimizer (Section 5.4 + 4.1) uses
:meth:`TextIndex.candidates` to turn a ``contains`` predicate into an
index probe: the returned key set is exact for positive boolean
combinations of literal patterns and a safe superset otherwise (``None``
means "no pruning possible, scan").

**Concurrency contract** (what the serving layer relies on).  Mutators
(:meth:`TextIndex.add`, :meth:`TextIndex.remove`,
:meth:`TextIndex.replace`) serialize on an internal lock.  Probes are
lock-free: a posting list is only ever *swapped* for a freshly built
one (:meth:`TextIndex.remove` never filters in place) or appended to
(:meth:`TextIndex.add`), so a reader holding a list reference iterates
a consistent per-token snapshot — it may be one edit stale, it is
never torn mid-filter.  Consistency *across* tokens (a phrase probe
spanning several posting lists while an edit lands) is the caller's
job: :class:`~repro.serve.QueryServer` validates every read against
the store's write fence and retries reads that overlapped a writer.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterable

from repro.text.nfa import cached_matcher
from repro.text.patterns import (
    AndExpr,
    NotExpr,
    OrExpr,
    Pattern,
    PatternExpr,
    tokenize_words,
)


def tokenize(text: str) -> list[str]:
    """The index's tokenizer (same as the predicate's)."""
    return tokenize_words(text)


def _is_literal_word(source: str) -> bool:
    """True when a pattern word is a plain literal (no metacharacters)."""
    return not any(ch in source for ch in "().|*+?[]\\")


class TextIndex:
    """token -> list of (key, position) postings."""

    def __init__(self) -> None:
        self._postings: dict[str, list[tuple[Hashable, int]]] = {}
        self._documents: dict[Hashable, int] = {}  # key -> token count
        # reverse map: key -> {token: occurrences} — lets remove/replace
        # touch only the key's own posting lists instead of scanning the
        # whole vocabulary
        self._doc_tokens: dict[Hashable, dict[str, int]] = {}
        # serializes mutators; probes stay lock-free (see module doc)
        self._mutation_lock = threading.RLock()
        #: optional repro.observe MetricsRegistry; ``None`` = disabled
        self.metrics = None

    # -- building -------------------------------------------------------------

    def add(self, key: Hashable, text: str) -> int:
        """Index ``text`` under ``key``; returns the token count."""
        tokens = tokenize(text)
        with self._mutation_lock:
            base = self._documents.get(key, 0)
            counts = self._doc_tokens.setdefault(key, {})
            for offset, token in enumerate(tokens):
                self._postings.setdefault(token, []).append(
                    (key, base + offset))
                counts[token] = counts.get(token, 0) + 1
            self._documents[key] = base + len(tokens)
        return len(tokens)

    def remove(self, key: Hashable) -> int:
        """Drop every posting of ``key``; returns the token count that
        was removed (0 when the key was never indexed).  Tokens whose
        posting list empties are dropped from the vocabulary.

        Only the key's own tokens (from the reverse map) are visited —
        ``text.remove_postings_touched`` counts them, and stays
        independent of the rest of the vocabulary.

        Surviving posting lists are *rebuilt and swapped in*, never
        filtered in place: a concurrent probe holding the old list
        keeps iterating a consistent (one-edit-stale) snapshot.
        """
        with self._mutation_lock:
            removed = self._documents.pop(key, None)
            if removed is None:
                return 0
            counts = self._doc_tokens.pop(key, {})
            for token, occurrences in counts.items():
                if self.metrics is not None:
                    self.metrics.inc("text.remove_postings_touched")
                postings = self._postings.get(token)
                if postings is None:  # pragma: no cover - defensive
                    continue
                if len(postings) == occurrences:
                    # the key owned the whole posting list: drop the
                    # token without filtering
                    del self._postings[token]
                else:
                    # copy-on-write: publish a fresh list atomically
                    self._postings[token] = [
                        entry for entry in postings if entry[0] != key]
        if self.metrics is not None:
            self.metrics.inc("text.removals")
        return removed

    def replace(self, key: Hashable, text: str) -> int:
        """Re-index ``key`` with fresh ``text`` (the incremental
        maintenance step an in-database edit needs); returns the new
        token count.  Unlike a bare :meth:`add`, old postings are
        removed first, so the entry reflects only the new content."""
        with self._mutation_lock:
            self.remove(key)
            if self.metrics is not None:
                self.metrics.inc("text.reindexed")
            return self.add(key, text)

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def vocabulary(self) -> Iterable[str]:
        return self._postings.keys()

    # -- statistics (read by repro.stats, no probe issued) --------------------

    def posting_size(self, word: str) -> int:
        """Posting-list length of a literal token — an O(1) upper
        bound on the number of documents containing ``word`` (a key
        with several occurrences counts once per occurrence, so the
        bound is safe, never exact).  ``0`` is a proof of absence: the
        cost model prunes union branches gated on such patterns before
        any probe runs."""
        return len(self._postings.get(word, ()))

    def posting_stats(self) -> dict:
        """Aggregate posting statistics for the table-statistics
        snapshot (:mod:`repro.stats`)."""
        sizes = [len(postings) for postings in self._postings.values()]
        return {
            "documents": len(self._documents),
            "vocabulary": len(sizes),
            "postings": sum(sizes),
            "max_posting": max(sizes, default=0),
        }

    # -- probing --------------------------------------------------------------

    def keys_with_word(self, word: str) -> set[Hashable]:
        """Exact-token probe."""
        postings = self._postings.get(word, ())
        if self.metrics is not None:
            self.metrics.inc("text.word_probes")
            self.metrics.inc("text.postings_scanned", len(postings))
        return {key for key, _ in postings}

    def keys_matching(self, word_pattern: str) -> set[Hashable]:
        """Pattern probe: literal words hit directly, regex-ish ones scan
        the vocabulary with the NFA."""
        if _is_literal_word(word_pattern):
            return self.keys_with_word(word_pattern)
        if self.metrics is not None:
            self.metrics.inc("text.vocabulary_scans")
        matcher = cached_matcher(word_pattern)
        hits: set[Hashable] = set()
        for token, postings in self._postings.items():
            if matcher.matches(token):
                hits.update(key for key, _ in postings)
        return hits

    def keys_with_phrase(self, pattern: Pattern) -> set[Hashable]:
        """Phrase probe using positions (consecutive tokens)."""
        if self.metrics is not None:
            self.metrics.inc("text.phrase_probes")
        per_word: list[dict[Hashable, set[int]]] = []
        for offset, source_word in enumerate(pattern.source.split()):
            positions: dict[Hashable, set[int]] = {}
            matcher = pattern.word_matchers[offset]
            if _is_literal_word(source_word):
                entries = self._postings.get(source_word, ())
            else:
                entries = [entry for token, posting in
                           self._postings.items()
                           if matcher.matches(token)
                           for entry in posting]
            for key, position in entries:
                positions.setdefault(key, set()).add(position - offset)
            per_word.append(positions)
        candidates = set(per_word[0])
        for positions in per_word[1:]:
            candidates &= set(positions)
        hits: set[Hashable] = set()
        for key in candidates:
            anchor_sets = [positions[key] for positions in per_word]
            common = set.intersection(*anchor_sets)
            if common:
                hits.add(key)
        return hits

    def keys_for_pattern(self, pattern: Pattern) -> set[Hashable]:
        if pattern.is_phrase:
            return self.keys_with_phrase(pattern)
        return self.keys_matching(pattern.source)

    def candidates(self, expression: PatternExpr) -> set[Hashable] | None:
        """Keys that *may* satisfy the expression.

        Exact for positive combinations; ``None`` when the expression is
        dominated by negation (no index pruning possible).  Callers must
        still re-check phrases/negations on the actual text when they
        need exact semantics with a superset result — but for pure
        And/Or/Pattern trees this set is already exact.
        """
        if isinstance(expression, Pattern):
            return self.keys_for_pattern(expression)
        if isinstance(expression, AndExpr):
            left = self.candidates(expression.left)
            right = self.candidates(expression.right)
            if left is None:
                return right
            if right is None:
                return left
            return left & right
        if isinstance(expression, OrExpr):
            left = self.candidates(expression.left)
            right = self.candidates(expression.right)
            if left is None or right is None:
                return None
            return left | right
        if isinstance(expression, NotExpr):
            return None
        return None
