"""The ``contains`` and ``near`` interpreted predicates (Section 4.1)."""

from __future__ import annotations

from repro.errors import EvaluationError, PatternError
from repro.text.patterns import (
    Pattern,
    PatternExpr,
    parse_pattern_expr,
    tokenize_words,
)


def contains(text: object, pattern: object) -> bool:
    """``text contains pattern``.

    ``pattern`` may be a :class:`~repro.text.patterns.PatternExpr`, or a
    plain string, which is parsed: strings with ``and``/``or``/``not``
    connectives or quotes become boolean combinations, anything else a
    single pattern.  Non-string ``text`` makes the atom *false* (the
    Section 5.3 convention for atoms over wrong union branches).
    """
    if not isinstance(text, str):
        return False
    expr = _as_expr(pattern)
    return expr.holds_on_text(text)


def _as_expr(pattern: object) -> PatternExpr:
    if isinstance(pattern, PatternExpr):
        return pattern
    if isinstance(pattern, str):
        stripped = pattern.strip()
        if any(ch in stripped for ch in "\"'"):
            return parse_pattern_expr(stripped)
        return Pattern(stripped)
    raise PatternError(
        f"contains() needs a pattern, got {type(pattern).__name__}")


def near(text: object, first: str, second: str,
         max_distance: int = 5) -> bool:
    """``near(w1, w2, k)`` — both words occur within ``k`` words of each
    other (Section 4.1 defines near over word distance in a sentence; we
    use word distance in the token stream)."""
    if not isinstance(text, str):
        return False
    if max_distance < 0:
        raise EvaluationError("near() distance must be non-negative")
    first_pattern = Pattern(first)
    second_pattern = Pattern(second)
    if first_pattern.is_phrase or second_pattern.is_phrase:
        raise PatternError("near() takes single-word patterns")
    tokens = tokenize_words(text)
    first_positions = [i for i, token in enumerate(tokens)
                       if first_pattern.match_word(token)]
    if not first_positions:
        return False
    second_positions = [i for i, token in enumerate(tokens)
                        if second_pattern.match_word(token)]
    return any(abs(i - j) <= max_distance
               for i in first_positions for j in second_positions)
