"""A small regular-expression engine (Thompson construction).

The paper's patterns are "constructed using concatenation, disjunction,
Kleene closure, etc."; this module provides exactly that, from scratch:
a regex AST, the Thompson NFA construction, and a linear-time NFA
simulation.  Supported syntax (close to classic grep):

* literal characters (``\\`` escapes the next character),
* ``.`` — any single character,
* ``[abc]`` / ``[a-z]`` / ``[^...]`` — character classes,
* ``(...)`` — grouping, ``|`` — alternation,
* postfix ``*`` ``+`` ``?``.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import PatternError


class Regex:
    """Base class of regex AST nodes."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class Epsilon(Regex):
    """The empty word."""

    def __str__(self) -> str:
        return "ε"


class Literal(Regex):
    """A single literal character."""

    def __init__(self, char: str) -> None:
        self.char = char

    def __str__(self) -> str:
        return self.char if self.char not in "().|*+?[]\\" else (
            "\\" + self.char)


class AnyChar(Regex):
    """``.`` — any single character."""

    def __str__(self) -> str:
        return "."


class CharClass(Regex):
    """``[a-z0-9]`` or negated ``[^...]``."""

    def __init__(self, ranges: tuple[tuple[str, str], ...],
                 negated: bool = False) -> None:
        self.ranges = ranges
        self.negated = negated

    def matches(self, char: str) -> bool:
        inside = any(lo <= char <= hi for lo, hi in self.ranges)
        return inside != self.negated

    def __str__(self) -> str:
        body = "".join(lo if lo == hi else f"{lo}-{hi}"
                       for lo, hi in self.ranges)
        return f"[{'^' if self.negated else ''}{body}]"


class Concat(Regex):
    """Concatenation of two regexes."""

    def __init__(self, left: Regex, right: Regex) -> None:
        self.left = left
        self.right = right

    def __str__(self) -> str:
        return f"{self.left}{self.right}"


class Alt(Regex):
    """``l|r`` — alternation."""

    def __init__(self, left: Regex, right: Regex) -> None:
        self.left = left
        self.right = right

    def __str__(self) -> str:
        return f"({self.left}|{self.right})"


class Star(Regex):
    """``r*`` — Kleene closure."""

    def __init__(self, child: Regex) -> None:
        self.child = child

    def __str__(self) -> str:
        return f"({self.child})*"


class Plus(Regex):
    """``r+`` — one or more."""

    def __init__(self, child: Regex) -> None:
        self.child = child

    def __str__(self) -> str:
        return f"({self.child})+"


class Opt(Regex):
    """``r?`` — optional."""

    def __init__(self, child: Regex) -> None:
        self.child = child

    def __str__(self) -> str:
        return f"({self.child})?"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def parse_regex(text: str) -> Regex:
    """Parse the pattern syntax above into a :class:`Regex`."""
    parser = _RegexParser(text)
    node = parser.alternation()
    if parser.pos != len(text):
        raise PatternError(
            f"unexpected {text[parser.pos]!r} at position {parser.pos} "
            f"in pattern {text!r}")
    return node


class _RegexParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def alternation(self) -> Regex:
        node = self.concatenation()
        while self.peek() == "|":
            self.pos += 1
            node = Alt(node, self.concatenation())
        return node

    def concatenation(self) -> Regex:
        parts: list[Regex] = []
        while self.peek() not in ("", ")", "|"):
            parts.append(self.repetition())
        if not parts:
            return Epsilon()
        node = parts[0]
        for part in parts[1:]:
            node = Concat(node, part)
        return node

    def repetition(self) -> Regex:
        node = self.atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.pos += 1
                node = Star(node)
            elif ch == "+":
                self.pos += 1
                node = Plus(node)
            elif ch == "?":
                self.pos += 1
                node = Opt(node)
            else:
                return node

    def atom(self) -> Regex:
        ch = self.peek()
        if ch == "(":
            self.pos += 1
            node = self.alternation()
            if self.peek() != ")":
                raise PatternError(
                    f"unbalanced '(' in pattern {self.text!r}")
            self.pos += 1
            return node
        if ch == ".":
            self.pos += 1
            return AnyChar()
        if ch == "[":
            return self.char_class()
        if ch == "\\":
            self.pos += 1
            if self.pos >= len(self.text):
                raise PatternError(
                    f"dangling escape in pattern {self.text!r}")
            escaped = self.text[self.pos]
            self.pos += 1
            return Literal(escaped)
        if ch in ")|*+?":
            raise PatternError(
                f"unexpected {ch!r} at position {self.pos} in pattern "
                f"{self.text!r}")
        if not ch:
            raise PatternError(f"unexpected end of pattern {self.text!r}")
        self.pos += 1
        return Literal(ch)

    def char_class(self) -> Regex:
        self.pos += 1  # '['
        negated = False
        if self.peek() == "^":
            negated = True
            self.pos += 1
        ranges: list[tuple[str, str]] = []
        while self.peek() not in ("]", ""):
            lo = self.text[self.pos]
            if lo == "\\":
                self.pos += 1
                if self.pos >= len(self.text):
                    raise PatternError("dangling escape in character class")
                lo = self.text[self.pos]
            self.pos += 1
            hi = lo
            if (self.peek() == "-" and self.pos + 1 < len(self.text)
                    and self.text[self.pos + 1] != "]"):
                self.pos += 1
                hi = self.text[self.pos]
                self.pos += 1
            if hi < lo:
                raise PatternError(
                    f"bad character range {lo}-{hi}")
            ranges.append((lo, hi))
        if self.peek() != "]":
            raise PatternError(f"unbalanced '[' in pattern {self.text!r}")
        self.pos += 1
        if not ranges:
            raise PatternError("empty character class")
        return CharClass(tuple(ranges), negated)


# ---------------------------------------------------------------------------
# Thompson construction
# ---------------------------------------------------------------------------


class Nfa:
    """An epsilon-NFA with a single start and a single accept state.

    Transition labels are either ``None`` (epsilon), a single character,
    or a predicate node (:class:`AnyChar` / :class:`CharClass`).
    """

    def __init__(self) -> None:
        self.transitions: list[list[tuple[object, int]]] = []
        self.start = self.new_state()
        self.accept = self.new_state()

    def new_state(self) -> int:
        self.transitions.append([])
        return len(self.transitions) - 1

    def add(self, source: int, label: object, target: int) -> None:
        self.transitions[source].append((label, target))

    # -- simulation ---------------------------------------------------------

    def _closure(self, states: set[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for label, target in self.transitions[state]:
                if label is None and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def _step(self, states: frozenset[int], char: str) -> frozenset[int]:
        moved: set[int] = set()
        for state in states:
            for label, target in self.transitions[state]:
                if label is None:
                    continue
                if isinstance(label, str):
                    if label == char:
                        moved.add(target)
                elif isinstance(label, AnyChar):
                    moved.add(target)
                elif isinstance(label, CharClass):
                    if label.matches(char):
                        moved.add(target)
        return self._closure(moved)

    def matches(self, text: str) -> bool:
        """Full match of ``text`` against the NFA."""
        current = self._closure({self.start})
        for char in text:
            current = self._step(current, char)
            if not current:
                return False
        return self.accept in current

    def search(self, text: str) -> bool:
        """Substring match: does any slice of ``text`` match?"""
        # Equivalent to matching .* pattern .* — simulate with a rolling
        # restart at every position.
        start_closure = self._closure({self.start})
        if self.accept in start_closure:
            return True
        active: set[frozenset[int]] = {start_closure}
        for char in text:
            next_active: set[frozenset[int]] = {start_closure}
            for states in active:
                stepped = self._step(states, char)
                if stepped:
                    if self.accept in stepped:
                        return True
                    next_active.add(stepped)
            active = next_active
        return False


def compile_regex(node: Regex) -> Nfa:
    """Thompson construction."""
    nfa = Nfa()
    _emit(node, nfa, nfa.start, nfa.accept)
    return nfa


def compile_pattern_text(text: str) -> Nfa:
    """Parse and compile in one call."""
    return compile_regex(parse_regex(text))


_MATCHER_CACHE: "OrderedDict[str, Nfa]" = OrderedDict()
_MATCHER_CACHE_CAPACITY = 64
_matcher_cache_stats = {"hits": 0, "misses": 0}


def cached_matcher(source: str) -> Nfa:
    """:func:`compile_pattern_text` behind a small LRU keyed by the
    pattern source.

    Repeated non-literal probes (a vocabulary scan per query, a phrase
    matcher per word) otherwise re-run the Thompson construction every
    call.  A compiled :class:`Nfa` is immutable during matching, so one
    instance can serve every caller.
    """
    nfa = _MATCHER_CACHE.get(source)
    if nfa is not None:
        _MATCHER_CACHE.move_to_end(source)
        _matcher_cache_stats["hits"] += 1
        return nfa
    nfa = compile_pattern_text(source)
    _matcher_cache_stats["misses"] += 1
    _MATCHER_CACHE[source] = nfa
    while len(_MATCHER_CACHE) > _MATCHER_CACHE_CAPACITY:
        _MATCHER_CACHE.popitem(last=False)
    return nfa


def matcher_cache_info() -> dict:
    """Hit/miss/size snapshot of the matcher LRU (for tests)."""
    return {"hits": _matcher_cache_stats["hits"],
            "misses": _matcher_cache_stats["misses"],
            "size": len(_MATCHER_CACHE),
            "capacity": _MATCHER_CACHE_CAPACITY}


def clear_matcher_cache() -> None:
    """Drop every cached matcher and reset the statistics."""
    _MATCHER_CACHE.clear()
    _matcher_cache_stats["hits"] = 0
    _matcher_cache_stats["misses"] = 0


def _emit(node: Regex, nfa: Nfa, source: int, target: int) -> None:
    if isinstance(node, Epsilon):
        nfa.add(source, None, target)
    elif isinstance(node, Literal):
        nfa.add(source, node.char, target)
    elif isinstance(node, (AnyChar, CharClass)):
        nfa.add(source, node, target)
    elif isinstance(node, Concat):
        middle = nfa.new_state()
        _emit(node.left, nfa, source, middle)
        _emit(node.right, nfa, middle, target)
    elif isinstance(node, Alt):
        _emit(node.left, nfa, source, target)
        _emit(node.right, nfa, source, target)
    elif isinstance(node, Star):
        hub = nfa.new_state()
        nfa.add(source, None, hub)
        nfa.add(hub, None, target)
        _emit(node.child, nfa, hub, hub)
    elif isinstance(node, Plus):
        hub = nfa.new_state()
        _emit(node.child, nfa, source, hub)
        _emit(node.child, nfa, hub, hub)
        nfa.add(hub, None, target)
    elif isinstance(node, Opt):
        nfa.add(source, None, target)
        _emit(node.child, nfa, source, target)
    else:
        raise PatternError(f"unknown regex node {node!r}")
