"""Document-instance parser with omitted-tag inference (Section 2).

The Figure-2 document omits most end tags (``<author>`` is declared
``- O``); a conforming parser must *infer* them from the DTD's content
models.  This parser maintains a stack of open elements, each with its
position in the element's content DFA, and applies the two classic
inference moves when the next token does not fit:

1. **start-tag inference** — an allowed child whose start tag is omissible
   and whose content can (transitively) begin with the incoming token is
   opened implicitly;
2. **end-tag inference** — the innermost open element is closed implicitly
   when its end tag is omissible and its content is complete.

Without a DTD the parser runs in plain well-formed mode: every tag must be
explicit.

Entity references ``&name;`` (internal text entities from the DTD, the
five predefined character entities, and numeric ``&#NN;`` references) are
resolved inside character data and attribute values.
"""

from __future__ import annotations

from repro.errors import DocumentSyntaxError, EntityError
from repro.sgml.contentmodel import PCDATA_NAME
from repro.sgml.dtd import ATT_NAME_GROUP, Dtd
from repro.sgml.instance import Element
from repro.sgml.tokens import Cursor, NAME_CHARS, NAME_START_CHARS

_PREDEFINED_ENTITIES = {
    "amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'",
}

#: Safety bound on recursive entity substitution.
_MAX_ENTITY_DEPTH = 16


def parse_document(text: str, dtd: Dtd | None = None,
                   keep_whitespace: bool = False) -> Element:
    """Parse an SGML document instance into an :class:`Element` tree.

    With a ``dtd``, omitted tags are inferred and attribute defaults are
    applied.  ``keep_whitespace`` retains whitespace-only text nodes in
    element content (they are dropped by default, as element content
    ignores separators).
    """
    parser = _InstanceParser(text, dtd, keep_whitespace)
    return parser.parse()


class _OpenElement:
    __slots__ = ("element", "state")

    def __init__(self, element: Element, state: int) -> None:
        self.element = element
        self.state = state


class _InstanceParser:
    def __init__(self, text: str, dtd: Dtd | None,
                 keep_whitespace: bool) -> None:
        self.cursor = Cursor(text)
        self.dtd = dtd
        self.keep_whitespace = keep_whitespace
        self.stack: list[_OpenElement] = []
        self.root: Element | None = None

    # -- main loop ------------------------------------------------------------

    def parse(self) -> Element:
        cursor = self.cursor
        while not cursor.at_end():
            if cursor.startswith("<!--"):
                cursor.advance(4)
                cursor.take_until("-->", DocumentSyntaxError)
                cursor.advance(3)
            elif cursor.startswith("<![CDATA["):
                self._handle_cdata()
            elif cursor.startswith("<!"):
                # An embedded DOCTYPE or other declaration: skip it whole.
                self._skip_declaration()
            elif cursor.startswith("</"):
                self._handle_end_tag()
            elif cursor.startswith("<") and self._next_is_name(1):
                self._handle_start_tag()
            elif cursor.startswith("<"):
                raise cursor.error(
                    f"stray '<' before {cursor.peek(8)!r}",
                    DocumentSyntaxError)
            else:
                self._handle_text()
        self._close_remaining_at_eof()
        if self.root is None:
            raise DocumentSyntaxError("document contains no element")
        return self.root

    def _next_is_name(self, offset: int) -> bool:
        ahead = self.cursor.peek(offset + 1)
        return len(ahead) > offset and ahead[offset] in NAME_START_CHARS

    def _handle_cdata(self) -> None:
        """``<![CDATA[ ... ]]>`` — literal character data, no markup
        recognition and no entity resolution inside."""
        cursor = self.cursor
        cursor.advance(len("<![CDATA["))
        raw = cursor.take_until("]]>", DocumentSyntaxError)
        cursor.advance(3)
        if self.root is None or not self.stack:
            if raw.strip():
                raise cursor.error(
                    "CDATA outside the document element",
                    DocumentSyntaxError)
            return
        self._make_room_for(PCDATA_NAME)
        top = self.stack[-1]
        next_state = self._step(top, PCDATA_NAME)
        if next_state is None:
            raise cursor.error(
                f"character data not allowed inside "
                f"{top.element.name!r}", DocumentSyntaxError)
        top.state = next_state
        content = raw if self.keep_whitespace else " ".join(raw.split())
        top.element.append_text(content)

    def _skip_declaration(self) -> None:
        # Handles <!DOCTYPE name [ internal subset ]> and simple <!...>.
        cursor = self.cursor
        cursor.advance(2)
        depth_bracket = 0
        while not cursor.at_end():
            ch = cursor.advance()
            if ch == "[":
                depth_bracket += 1
            elif ch == "]":
                depth_bracket -= 1
            elif ch == ">" and depth_bracket <= 0:
                return
        raise cursor.error("unterminated declaration", DocumentSyntaxError)

    # -- tags -----------------------------------------------------------------

    def _handle_start_tag(self) -> None:
        cursor = self.cursor
        cursor.advance()  # '<'
        name = cursor.take_name(DocumentSyntaxError)
        attributes = self._parse_attributes(name)
        cursor.skip_whitespace()
        if cursor.startswith("/>"):  # tolerated XML-ish empty element
            cursor.advance(2)
            self._open_element(name, attributes)
            self._close_innermost(explicit=True)
            return
        cursor.expect(">", DocumentSyntaxError)
        self._open_element(name, attributes)

    def _open_element(self, name: str, attributes: dict[str, str]) -> None:
        if self.dtd is not None and not self.dtd.has_element(name):
            raise self.cursor.error(
                f"element {name!r} is not declared in the DTD",
                DocumentSyntaxError)
        if self.root is None:
            self._push(name, attributes, start_inferred=False)
            return
        if not self.stack:
            raise self.cursor.error(
                f"element {name!r} after the document element closed",
                DocumentSyntaxError)
        self._make_room_for(name)
        self._push(name, attributes, start_inferred=False)

    def _push(self, name: str, attributes: dict[str, str],
              start_inferred: bool) -> None:
        element = Element(name, attributes, start_inferred=start_inferred)
        if self.dtd is not None:
            self._apply_attribute_defaults(element)
        if self.stack:
            top = self.stack[-1]
            next_state = self._step(top, name)
            if next_state is None:
                raise self.cursor.error(
                    f"element {name!r} not allowed inside "
                    f"{top.element.name!r} here", DocumentSyntaxError)
            top.state = next_state
            top.element.append(element)
        else:
            self.root = element
        self.stack.append(_OpenElement(element, 0))
        if self.dtd is not None and self.dtd.element(name).is_empty():
            # EMPTY elements close immediately; no end tag will come.
            self.stack.pop()

    def _step(self, open_element: _OpenElement, symbol: str) -> int | None:
        if self.dtd is None:
            return 0
        automaton = self.dtd.automaton(open_element.element.name)
        return automaton.step(open_element.state, symbol)

    def _content_complete(self, open_element: _OpenElement) -> bool:
        if self.dtd is None:
            return True
        automaton = self.dtd.automaton(open_element.element.name)
        return automaton.is_accepting(open_element.state)

    def _make_room_for(self, symbol: str) -> None:
        """Apply inference moves until ``symbol`` fits the innermost model."""
        guard = 0
        while True:
            guard += 1
            if guard > 1000:
                raise self.cursor.error(
                    "tag inference did not converge", DocumentSyntaxError)
            if not self.stack:
                raise self.cursor.error(
                    f"no open element can contain {symbol!r}",
                    DocumentSyntaxError)
            top = self.stack[-1]
            if self._step(top, symbol) is not None:
                return
            if self.dtd is None:
                raise self.cursor.error(
                    f"unexpected {symbol!r} inside "
                    f"{top.element.name!r}", DocumentSyntaxError)
            # Move 1: infer an omissible start tag of an allowed child.
            inferred = self._inferable_start(top, symbol)
            if inferred is not None:
                self._push(inferred, {}, start_inferred=True)
                continue
            # Move 2: infer the end of the innermost element.
            if (len(self.stack) > 1
                    and self.dtd.element(top.element.name).omit_end
                    and self._content_complete(top)):
                top.element.end_inferred = True
                self.stack.pop()
                continue
            raise self.cursor.error(
                f"{symbol!r} not allowed in {top.element.name!r} and no "
                "omitted tag can be inferred", DocumentSyntaxError)

    def _inferable_start(self, open_element: _OpenElement,
                         symbol: str) -> str | None:
        """An allowed child with omissible start tag whose content can
        begin (transitively) with ``symbol``."""
        assert self.dtd is not None
        automaton = self.dtd.automaton(open_element.element.name)
        for candidate in sorted(automaton.allowed(open_element.state)):
            if candidate == PCDATA_NAME or candidate == symbol:
                continue
            declaration = self.dtd.elements.get(candidate)
            if declaration is None or not declaration.omit_start:
                continue
            if self._can_begin_with(candidate, symbol, frozenset()):
                return candidate
        return None

    def _can_begin_with(self, element_name: str, symbol: str,
                        seen: frozenset[str]) -> bool:
        assert self.dtd is not None
        if element_name in seen:
            return False
        automaton = self.dtd.automaton(element_name)
        initial = automaton.allowed(automaton.start_state)
        if symbol in initial:
            return True
        for candidate in initial:
            declaration = self.dtd.elements.get(candidate)
            if declaration is not None and declaration.omit_start:
                if self._can_begin_with(candidate, symbol,
                                        seen | {element_name}):
                    return True
        return False

    def _handle_end_tag(self) -> None:
        cursor = self.cursor
        cursor.advance(2)  # '</'
        name = cursor.take_name(DocumentSyntaxError)
        cursor.skip_whitespace()
        cursor.expect(">", DocumentSyntaxError)
        # Close inferred-end elements until we reach ``name``.
        while self.stack and self.stack[-1].element.name != name:
            top = self.stack[-1]
            can_infer = (self.dtd is not None
                         and self.dtd.element(top.element.name).omit_end
                         and self._content_complete(top))
            if not can_infer:
                raise cursor.error(
                    f"end tag </{name}> does not match open element "
                    f"{top.element.name!r}", DocumentSyntaxError)
            top.element.end_inferred = True
            self.stack.pop()
        if not self.stack:
            raise cursor.error(
                f"end tag </{name}> matches no open element",
                DocumentSyntaxError)
        self._close_innermost(explicit=True)

    def _close_innermost(self, explicit: bool) -> None:
        top = self.stack[-1]
        if not self._content_complete(top):
            raise self.cursor.error(
                f"content of {top.element.name!r} is incomplete",
                DocumentSyntaxError)
        top.element.end_inferred = not explicit
        self.stack.pop()

    def _close_remaining_at_eof(self) -> None:
        while self.stack:
            top = self.stack[-1]
            can_infer = (self.dtd is not None
                         and self.dtd.element(top.element.name).omit_end)
            if not can_infer:
                raise self.cursor.error(
                    f"unclosed element {top.element.name!r} at end of "
                    "document", DocumentSyntaxError)
            if not self._content_complete(top):
                raise self.cursor.error(
                    f"content of {top.element.name!r} is incomplete at end "
                    "of document", DocumentSyntaxError)
            top.element.end_inferred = True
            self.stack.pop()

    # -- attributes -----------------------------------------------------------

    def _parse_attributes(self, element_name: str) -> dict[str, str]:
        cursor = self.cursor
        attributes: dict[str, str] = {}
        while True:
            cursor.skip_whitespace()
            ch = cursor.peek()
            if ch in (">", "") or cursor.startswith("/>"):
                return attributes
            token = cursor.take_name(DocumentSyntaxError)
            cursor.skip_whitespace()
            if cursor.startswith("="):
                cursor.advance()
                cursor.skip_whitespace()
                value = self._parse_attribute_value()
                attributes[token] = value
            else:
                # Minimized attribute: a bare enumerated token stands for
                # its attribute (<article final> == status="final").
                resolved = self._resolve_minimized(element_name, token)
                if resolved is None:
                    raise cursor.error(
                        f"bare token {token!r} matches no enumerated "
                        f"attribute of {element_name!r}",
                        DocumentSyntaxError)
                attributes[resolved] = token

    def _parse_attribute_value(self) -> str:
        cursor = self.cursor
        quote = cursor.peek()
        if quote in "\"'":
            cursor.advance()
            raw = cursor.take_until(quote, DocumentSyntaxError)
            cursor.expect(quote, DocumentSyntaxError)
        else:
            raw = cursor.take_while(lambda ch: ch in NAME_CHARS)
            if not raw:
                raise cursor.error(
                    "expected an attribute value", DocumentSyntaxError)
        return self._resolve_entities(raw, depth=0)

    def _resolve_minimized(self, element_name: str,
                           token: str) -> str | None:
        if self.dtd is None:
            return None
        attlist = self.dtd.attlist(element_name)
        if attlist is None:
            return None
        for definition in attlist:
            if (definition.kind == ATT_NAME_GROUP
                    and token in definition.allowed_values):
                return definition.name
        return None

    def _apply_attribute_defaults(self, element: Element) -> None:
        assert self.dtd is not None
        attlist = self.dtd.attlist(element.name)
        if attlist is None:
            return
        for definition in attlist:
            if (definition.name not in element.attributes
                    and definition.has_default
                    and definition.default_value is not None):
                element.attributes[definition.name] = (
                    definition.default_value)

    # -- character data -------------------------------------------------------

    def _handle_text(self) -> None:
        cursor = self.cursor
        raw = cursor.take_while(lambda ch: ch not in "<")
        content = self._resolve_entities(raw, depth=0)
        if self.root is None or not self.stack:
            if content.strip():
                raise cursor.error(
                    "character data outside the document element",
                    DocumentSyntaxError)
            return
        top = self.stack[-1]
        if not content.strip():
            # Separator whitespace: keep only where #PCDATA is live.
            live = self._step(top, PCDATA_NAME) is not None
            if self.keep_whitespace and live:
                top.element.append_text(content)
            return
        self._make_room_for(PCDATA_NAME)
        top = self.stack[-1]
        next_state = self._step(top, PCDATA_NAME)
        if next_state is None:
            raise cursor.error(
                f"character data not allowed inside "
                f"{top.element.name!r}", DocumentSyntaxError)
        top.state = next_state
        normalized = content if self.keep_whitespace else (
            " ".join(content.split()))
        top.element.append_text(normalized)

    def _resolve_entities(self, text: str, depth: int) -> str:
        if "&" not in text:
            return text
        if depth > _MAX_ENTITY_DEPTH:
            raise EntityError("entity substitution too deep (cycle?)")
        pieces: list[str] = []
        index = 0
        while index < len(text):
            amp = text.find("&", index)
            if amp < 0:
                pieces.append(text[index:])
                break
            pieces.append(text[index:amp])
            semi = text.find(";", amp + 1)
            if semi < 0:
                # A bare ampersand: keep it verbatim (SGML tolerates this
                # when no name follows).
                pieces.append(text[amp:])
                break
            name = text[amp + 1:semi]
            pieces.append(self._entity_replacement(name, depth))
            index = semi + 1
        return "".join(pieces)

    def _entity_replacement(self, name: str, depth: int) -> str:
        if name.startswith("#"):
            try:
                code = int(name[2:], 16) if name[1:2] in "xX" else int(
                    name[1:])
            except (TypeError, ValueError):
                raise EntityError(f"bad character reference &{name};")
            return chr(code)
        predefined = _PREDEFINED_ENTITIES.get(name)
        if predefined is not None:
            return predefined
        if self.dtd is not None:
            entity = self.dtd.entity(name)
            if entity is not None:
                if entity.is_internal:
                    return self._resolve_entities(
                        entity.text or "", depth + 1)
                # External entity in content: substitute a reference marker.
                return f"[external: {entity.system_id}]"
        raise EntityError(f"undefined entity &{name};")
