"""The DTD object model (Section 2 / Figure 1).

A :class:`Dtd` collects element declarations (with their content models
and tag-omission indicators), attribute-list declarations and entity
declarations.  Content automatons are built lazily per element and cached.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SgmlError
from repro.sgml.automata import ContentAutomaton
from repro.sgml.contentmodel import ContentModel, Empty, PCData

# Declared value kinds for attributes (a practical subset of ISO 8879).
ATT_CDATA = "CDATA"
ATT_ID = "ID"
ATT_IDREF = "IDREF"
ATT_IDREFS = "IDREFS"
ATT_NMTOKEN = "NMTOKEN"
ATT_NMTOKENS = "NMTOKENS"
ATT_NUMBER = "NUMBER"
ATT_ENTITY = "ENTITY"
ATT_NAME_GROUP = "NAME_GROUP"  # enumerated values (status (final|draft))

ATT_KINDS = (ATT_CDATA, ATT_ID, ATT_IDREF, ATT_IDREFS, ATT_NMTOKEN,
             ATT_NMTOKENS, ATT_NUMBER, ATT_ENTITY, ATT_NAME_GROUP)

# Default-value kinds.
DEFAULT_REQUIRED = "#REQUIRED"
DEFAULT_IMPLIED = "#IMPLIED"
DEFAULT_FIXED = "#FIXED"
DEFAULT_VALUE = "VALUE"  # an explicit literal default


class AttDef:
    """One attribute definition inside an ATTLIST declaration."""

    def __init__(self, name: str, kind: str,
                 allowed_values: Iterable[str] = (),
                 default_kind: str = DEFAULT_IMPLIED,
                 default_value: str | None = None) -> None:
        if kind not in ATT_KINDS:
            raise SgmlError(f"unknown attribute kind {kind!r}")
        self.name = name
        self.kind = kind
        self.allowed_values = tuple(allowed_values)
        self.default_kind = default_kind
        self.default_value = default_value

    @property
    def required(self) -> bool:
        return self.default_kind == DEFAULT_REQUIRED

    @property
    def has_default(self) -> bool:
        return self.default_kind in (DEFAULT_VALUE, DEFAULT_FIXED)

    def __repr__(self) -> str:  # pragma: no cover
        extra = ""
        if self.kind == ATT_NAME_GROUP:
            extra = " (" + " | ".join(self.allowed_values) + ")"
        default = self.default_value if self.has_default else self.default_kind
        return f"AttDef({self.name} {self.kind}{extra} {default})"


class AttlistDecl:
    """``<!ATTLIST element ...>`` — attributes of one element."""

    def __init__(self, element_name: str,
                 definitions: Iterable[AttDef]) -> None:
        self.element_name = element_name
        self.definitions = tuple(definitions)
        self._by_name = {d.name: d for d in self.definitions}

    def get(self, name: str) -> AttDef | None:
        return self._by_name.get(name)

    def __iter__(self) -> Iterator[AttDef]:
        return iter(self.definitions)

    def __len__(self) -> int:
        return len(self.definitions)


class ElementDecl:
    """``<!ELEMENT name - O (model)>``."""

    def __init__(self, name: str, model: ContentModel,
                 omit_start: bool = False, omit_end: bool = False) -> None:
        self.name = name
        self.model = model
        self.omit_start = omit_start
        self.omit_end = omit_end

    def is_empty(self) -> bool:
        return isinstance(self.model, Empty)

    def is_pcdata_only(self) -> bool:
        return isinstance(self.model, PCData)

    def __repr__(self) -> str:  # pragma: no cover
        start = "O" if self.omit_start else "-"
        end = "O" if self.omit_end else "-"
        return f"ElementDecl({self.name} {start} {end} {self.model})"


class EntityDecl:
    """``<!ENTITY ...>`` — internal text or external (SYSTEM) entities."""

    def __init__(self, name: str, text: str | None = None,
                 system_id: str | None = None, ndata: str | None = None,
                 parameter: bool = False) -> None:
        self.name = name
        self.text = text
        self.system_id = system_id
        self.ndata = ndata
        self.parameter = parameter

    @property
    def is_internal(self) -> bool:
        return self.text is not None

    @property
    def is_external(self) -> bool:
        return self.system_id is not None

    def __repr__(self) -> str:  # pragma: no cover
        flavor = "%" if self.parameter else "&"
        body = self.text if self.is_internal else f"SYSTEM {self.system_id!r}"
        return f"EntityDecl({flavor}{self.name} = {body})"


class Dtd:
    """A parsed document type definition."""

    def __init__(self, doctype: str,
                 elements: Iterable[ElementDecl] = (),
                 attlists: Iterable[AttlistDecl] = (),
                 entities: Iterable[EntityDecl] = ()) -> None:
        self.doctype = doctype
        self.elements: dict[str, ElementDecl] = {}
        for declaration in elements:
            self.add_element(declaration)
        self.attlists: dict[str, AttlistDecl] = {}
        for attlist in attlists:
            self.add_attlist(attlist)
        self.entities: dict[str, EntityDecl] = {}
        self.parameter_entities: dict[str, EntityDecl] = {}
        for entity in entities:
            self.add_entity(entity)
        self._automatons: dict[str, ContentAutomaton] = {}

    # -- construction ---------------------------------------------------------

    def add_element(self, declaration: ElementDecl) -> None:
        if declaration.name in self.elements:
            raise SgmlError(
                f"duplicate element declaration for {declaration.name!r}")
        self.elements[declaration.name] = declaration

    def add_attlist(self, attlist: AttlistDecl) -> None:
        existing = self.attlists.get(attlist.element_name)
        if existing is None:
            self.attlists[attlist.element_name] = attlist
        else:
            # Multiple ATTLIST declarations for one element accumulate.
            merged = list(existing.definitions)
            known = {d.name for d in merged}
            merged.extend(d for d in attlist.definitions
                          if d.name not in known)
            self.attlists[attlist.element_name] = AttlistDecl(
                attlist.element_name, merged)

    def add_entity(self, entity: EntityDecl) -> None:
        table = (self.parameter_entities if entity.parameter
                 else self.entities)
        # First declaration wins, per ISO 8879.
        table.setdefault(entity.name, entity)

    # -- lookup ---------------------------------------------------------------

    def element(self, name: str) -> ElementDecl:
        try:
            return self.elements[name]
        except KeyError:
            raise SgmlError(f"element {name!r} is not declared") from None

    def has_element(self, name: str) -> bool:
        return name in self.elements

    def attlist(self, element_name: str) -> AttlistDecl | None:
        return self.attlists.get(element_name)

    def entity(self, name: str) -> EntityDecl | None:
        return self.entities.get(name)

    def automaton(self, element_name: str) -> ContentAutomaton:
        """The (cached) content DFA of an element."""
        cached = self._automatons.get(element_name)
        if cached is None:
            cached = ContentAutomaton(self.element(element_name).model)
            self._automatons[element_name] = cached
        return cached

    @property
    def element_names(self) -> tuple[str, ...]:
        return tuple(self.elements)

    # -- integrity ------------------------------------------------------------

    def check(self) -> list[str]:
        """Static checks; returns a list of human-readable problems.

        * the doctype element must be declared,
        * every element mentioned in a content model must be declared,
        * every ATTLIST must target a declared element,
        * at most one ID attribute per element.
        """
        problems: list[str] = []
        if self.doctype and not self.has_element(self.doctype):
            problems.append(
                f"doctype element {self.doctype!r} is not declared")
        for declaration in self.elements.values():
            for mentioned in sorted(declaration.model.mentioned()):
                if not self.has_element(mentioned):
                    problems.append(
                        f"element {declaration.name!r} references "
                        f"undeclared element {mentioned!r}")
        for attlist in self.attlists.values():
            if not self.has_element(attlist.element_name):
                problems.append(
                    f"ATTLIST targets undeclared element "
                    f"{attlist.element_name!r}")
            id_attributes = [d.name for d in attlist
                             if d.kind == ATT_ID]
            if len(id_attributes) > 1:
                problems.append(
                    f"element {attlist.element_name!r} declares "
                    f"{len(id_attributes)} ID attributes")
        return problems
