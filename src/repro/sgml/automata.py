"""Glushkov automata for SGML content models.

Each content model compiles to a position automaton (Glushkov
construction) and then, by subset construction, to a DFA.  The DFA drives

* validation — run the sequence of child names through it,
* omitted-tag inference — ``allowed(state)`` tells which children may come
  next, ``can_finish(state)`` whether the element may end here.

``&`` and-groups denote "all parts, each exactly once, in any order"; they
are rewritten into a choice over the permutations of their parts before
the construction (with a size guard — SGML processors traditionally have
the same practical limit).

SGML requires content models to be *unambiguous* (1-unambiguous in formal
terms); :func:`ambiguity_witness` reports a witness when a model is not.
The DFA is exact either way, so validation does not depend on it — the
check exists because a conforming SGML implementation must be able to
flag such models.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.errors import ContentModelError
from repro.sgml.contentmodel import (
    AndGroup,
    AnyContent,
    Choice,
    ContentModel,
    ElementRef,
    Empty,
    Opt,
    PCData,
    PCDATA_NAME,
    Plus,
    Seq,
    Star,
)

#: And-groups beyond this many parts are rejected (factorial expansion).
MAX_AND_GROUP = 6


def expand_and_groups(model: ContentModel) -> ContentModel:
    """Rewrite every ``&`` group into a choice over permutations."""
    if isinstance(model, AndGroup):
        parts = [expand_and_groups(p) for p in model.parts]
        if len(parts) > MAX_AND_GROUP:
            raise ContentModelError(
                f"and-group with {len(parts)} parts exceeds the supported "
                f"maximum of {MAX_AND_GROUP}")
        if len(parts) == 1:
            return parts[0]
        alternatives = [Seq(list(perm))
                        for perm in itertools.permutations(parts)]
        return Choice(alternatives)
    if isinstance(model, Seq):
        return Seq([expand_and_groups(p) for p in model.parts])
    if isinstance(model, Choice):
        return Choice([expand_and_groups(p) for p in model.parts])
    if isinstance(model, Opt):
        return Opt(expand_and_groups(model.child))
    if isinstance(model, Plus):
        return Plus(expand_and_groups(model.child))
    if isinstance(model, Star):
        return Star(expand_and_groups(model.child))
    return model


class _Glushkov:
    """Position sets of the Glushkov construction."""

    def __init__(self) -> None:
        self.symbols: list[str] = []  # symbol of each position (1-based)
        self.first: set[int] = set()
        self.last: set[int] = set()
        self.follow: dict[int, set[int]] = {}
        self.nullable = False

    def new_position(self, symbol: str) -> int:
        self.symbols.append(symbol)
        position = len(self.symbols)
        self.follow[position] = set()
        return position

    def symbol_of(self, position: int) -> str:
        return self.symbols[position - 1]


def _build(model: ContentModel,
           g: _Glushkov) -> tuple[set[int], set[int], bool]:
    """Return (first, last, nullable) of ``model``, registering positions."""
    if isinstance(model, (Empty, AnyContent)):
        return set(), set(), True
    if isinstance(model, PCData):
        # PCDATA is nullable (text may be empty) yet occupies a position so
        # that mixed-content transitions exist.
        p = g.new_position(PCDATA_NAME)
        # text can repeat: #PCDATA behaves like PCDATA*
        g.follow[p].add(p)
        return {p}, {p}, True
    if isinstance(model, ElementRef):
        p = g.new_position(model.name)
        return {p}, {p}, False
    if isinstance(model, Seq):
        first: set[int] = set()
        last: set[int] = set()
        nullable = True
        for part in model.parts:
            p_first, p_last, p_nullable = _build(part, g)
            for position in last:
                g.follow[position] |= p_first
            if nullable:
                first |= p_first
            if p_nullable:
                last |= p_last
            else:
                last = set(p_last)
            nullable = nullable and p_nullable
        return first, last, nullable
    if isinstance(model, Choice):
        first, last = set(), set()
        nullable = False
        for part in model.parts:
            p_first, p_last, p_nullable = _build(part, g)
            first |= p_first
            last |= p_last
            nullable = nullable or p_nullable
        return first, last, nullable
    if isinstance(model, Opt):
        first, last, _ = _build(model.child, g)
        return first, last, True
    if isinstance(model, (Plus, Star)):
        first, last, nullable = _build(model.child, g)
        for position in last:
            g.follow[position] |= first
        return first, last, nullable or isinstance(model, Star)
    if isinstance(model, AndGroup):
        raise ContentModelError(
            "and-groups must be expanded before the Glushkov construction")
    raise ContentModelError(f"unknown content model node: {model!r}")


class ContentAutomaton:
    """A DFA over child-element names (plus the #PCDATA pseudo-symbol)."""

    def __init__(self, model: ContentModel) -> None:
        self.model = model
        self.any_content = isinstance(model, AnyContent)
        expanded = expand_and_groups(model)
        g = _Glushkov()
        first, last, nullable = _build(expanded, g)
        g.first, g.last, g.nullable = first, last, nullable
        self._glushkov = g
        self._states: list[frozenset[int]] = []
        self._state_ids: dict[frozenset[int], int] = {}
        self._transitions: list[dict[str, int]] = []
        self._accepting: list[bool] = []
        self._subset_construction()

    # -- construction ---------------------------------------------------------

    def _state_id(self, positions: frozenset[int]) -> int:
        existing = self._state_ids.get(positions)
        if existing is not None:
            return existing
        state = len(self._states)
        self._states.append(positions)
        self._state_ids[positions] = state
        self._transitions.append({})
        g = self._glushkov
        accepting = bool(positions & g.last) or (
            positions == frozenset({0}) and g.nullable)
        self._accepting.append(accepting)
        return state

    def _subset_construction(self) -> None:
        g = self._glushkov
        start = frozenset({0})
        self._state_id(start)
        worklist = [start]
        while worklist:
            current = worklist.pop()
            state = self._state_ids[current]
            targets: dict[str, set[int]] = {}
            for position in current:
                successors = g.first if position == 0 else g.follow[position]
                for successor in successors:
                    targets.setdefault(
                        g.symbol_of(successor), set()).add(successor)
            for symbol, next_positions in targets.items():
                next_frozen = frozenset(next_positions)
                known = next_frozen in self._state_ids
                next_state = self._state_id(next_frozen)
                self._transitions[state][symbol] = next_state
                if not known:
                    worklist.append(next_frozen)

    # -- use ------------------------------------------------------------------

    @property
    def start_state(self) -> int:
        return 0

    def step(self, state: int, symbol: str) -> int | None:
        """The successor state, or ``None`` when ``symbol`` is not allowed."""
        if self.any_content:
            return 0
        return self._transitions[state].get(symbol)

    def is_accepting(self, state: int) -> bool:
        if self.any_content:
            return True
        return self._accepting[state]

    def allowed(self, state: int) -> frozenset[str]:
        """Symbols with an outgoing transition from ``state``."""
        if self.any_content:
            return frozenset()
        return frozenset(self._transitions[state])

    def accepts(self, symbols: Iterable[str]) -> bool:
        """Run a whole child-name sequence through the DFA."""
        state: int | None = self.start_state
        for symbol in symbols:
            state = self.step(state, symbol)
            if state is None:
                return False
        return self.is_accepting(state)

    @property
    def state_count(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ContentAutomaton({self.model}, "
                f"{self.state_count} states)")


def ambiguity_witness(model: ContentModel) -> str | None:
    """Return a description of a 1-ambiguity, or ``None`` if unambiguous.

    A model is 1-ambiguous when two distinct Glushkov positions carrying
    the same symbol compete in ``first`` or in some ``follow`` set — the
    parser could not know, on seeing the symbol, which occurrence it is
    matching.  (Only relevant to strict SGML conformance; our DFA-based
    validator is exact regardless.)
    """
    expanded = expand_and_groups(model)
    g = _Glushkov()
    first, last, nullable = _build(expanded, g)

    def conflict(positions: set[int]) -> str | None:
        seen: dict[str, int] = {}
        for position in sorted(positions):
            symbol = g.symbol_of(position)
            if symbol in seen:
                return symbol
            seen[symbol] = position
        return None

    symbol = conflict(first)
    if symbol is not None:
        return f"two occurrences of {symbol!r} compete at the start"
    for position, successors in g.follow.items():
        symbol = conflict(successors)
        if symbol is not None:
            return (f"two occurrences of {symbol!r} compete after "
                    f"{g.symbol_of(position)!r}")
    return None
