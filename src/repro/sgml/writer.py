"""Serialize a document tree back to SGML text.

The writer produces fully tagged output (no tag omission) so that the
result parses in plain well-formed mode too; a ``minimize`` flag emits the
compact form instead, omitting the tags the DTD allows to be omitted —
useful for round-trip tests of the tag-inference machinery.
"""

from __future__ import annotations

from repro.sgml.dtd import Dtd
from repro.sgml.instance import Element, Node, Text


def escape_text(text: str) -> str:
    """Escape character data for serialization."""
    return (text.replace("&", "&amp;")
            .replace("<", "&lt;")
            .replace(">", "&gt;"))


def escape_attribute(value: str) -> str:
    """Escape an attribute value for a quoted literal."""
    return escape_text(value).replace('"', "&quot;")


def write_document(root: Element, dtd: Dtd | None = None,
                   minimize: bool = False, indent: int | None = None) -> str:
    """Render the tree as SGML text.

    ``minimize`` requires a ``dtd`` and drops omissible end tags (start
    tags are always written — inferring them back needs the content
    context and inflates diffs for no benefit).  ``indent`` pretty-prints
    with that many spaces per level; pretty-printing inserts whitespace
    only around element (non-#PCDATA) content so text is preserved.
    """
    pieces: list[str] = []
    _write_node(root, dtd, minimize, indent, 0, pieces)
    return "".join(pieces)


def _write_node(node: Node, dtd: Dtd | None, minimize: bool,
                indent: int | None, depth: int, pieces: list[str]) -> None:
    if isinstance(node, Text):
        pieces.append(escape_text(node.content))
        return
    assert isinstance(node, Element)
    pad = "" if indent is None else "\n" + " " * (indent * depth)
    if depth > 0 or indent is not None:
        pieces.append(pad)
    pieces.append(_start_tag(node))
    declaration = dtd.elements.get(node.name) if dtd is not None else None
    if declaration is not None and declaration.is_empty():
        return
    mixed = any(isinstance(child, Text) for child in node.children)
    child_indent = None if (indent is None or mixed) else indent
    for child in node.children:
        _write_node(child, dtd, minimize, child_indent, depth + 1, pieces)
    omit_end = (minimize and declaration is not None
                and declaration.omit_end)
    if not omit_end:
        if child_indent is not None and node.children:
            pieces.append("\n" + " " * (indent * depth))
        pieces.append(f"</{node.name}>")


def _start_tag(element: Element) -> str:
    bits = [element.name]
    for name, value in element.attributes.items():
        bits.append(f'{name}="{escape_attribute(value)}"')
    return "<" + " ".join(bits) + ">"
