"""The SGML substrate (Section 2).

Replaces the Euroclid SGML parser used by the authors: a DTD parser, a
document-instance parser with omitted-tag inference, a validator and a
writer.  Content models are compiled to Glushkov automata for validation
and tag inference.
"""

from repro.sgml.contentmodel import (
    AndGroup,
    AnyContent,
    Choice,
    ContentModel,
    ElementRef,
    Empty,
    Opt,
    PCData,
    Plus,
    Seq,
    Star,
    parse_content_model,
)
from repro.sgml.dtd import (
    AttDef,
    AttlistDecl,
    Dtd,
    ElementDecl,
    EntityDecl,
)
from repro.sgml.dtd_parser import parse_dtd
from repro.sgml.instance import Element, Text, iter_elements
from repro.sgml.instance_parser import parse_document
from repro.sgml.validator import validate
from repro.sgml.writer import write_document

__all__ = [
    "AndGroup", "AnyContent", "AttDef", "AttlistDecl", "Choice",
    "ContentModel", "Dtd", "Element", "ElementDecl", "ElementRef", "Empty",
    "EntityDecl", "Opt", "PCData", "Plus", "Seq", "Star", "Text",
    "iter_elements", "parse_content_model", "parse_document", "parse_dtd",
    "validate", "write_document",
]
