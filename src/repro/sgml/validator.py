"""Document-instance validation against a DTD.

The parser already enforces content models while building the tree; this
validator re-checks a tree *independently* (trees may also be built
programmatically) and adds the attribute-level checks:

* every element is declared, child sequences match the content DFA,
* EMPTY elements have no content, #PCDATA-only elements have no element
  children,
* declared attributes only, required attributes present, enumerated
  values in range, NUMBER values numeric,
* ID uniqueness and IDREF/IDREFS resolution across the document
  (Figure 1's ``label``/``reflabel`` cross references),
* ENTITY attribute values name declared external entities.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.sgml.contentmodel import PCDATA_NAME
from repro.sgml.dtd import (
    ATT_ENTITY,
    ATT_ID,
    ATT_IDREF,
    ATT_IDREFS,
    ATT_NAME_GROUP,
    ATT_NUMBER,
    Dtd,
)
from repro.sgml.instance import Element, Text, iter_elements


def validate(root: Element, dtd: Dtd) -> None:
    """Raise :class:`ValidationError` on the first problem found."""
    problems = validation_problems(root, dtd)
    if problems:
        raise ValidationError(problems[0])


def validation_problems(root: Element, dtd: Dtd) -> list[str]:
    """Collect every validation problem (empty list == valid)."""
    problems: list[str] = []
    if dtd.doctype and root.name != dtd.doctype:
        problems.append(
            f"document element is {root.name!r}, DTD declares "
            f"{dtd.doctype!r}")
    ids: dict[str, str] = {}
    idrefs: list[tuple[str, str]] = []
    for element in iter_elements(root):
        _check_element(element, dtd, problems, ids, idrefs)
    for element_name, reference in idrefs:
        if reference not in ids:
            problems.append(
                f"IDREF {reference!r} on {element_name!r} matches no ID "
                "in the document")
    return problems


def _check_element(element: Element, dtd: Dtd, problems: list[str],
                   ids: dict[str, str],
                   idrefs: list[tuple[str, str]]) -> None:
    if not dtd.has_element(element.name):
        problems.append(f"element {element.name!r} is not declared")
        return
    declaration = dtd.element(element.name)
    if declaration.is_empty() and element.children:
        problems.append(
            f"EMPTY element {element.name!r} has content")
    elif declaration.is_pcdata_only():
        if element.child_elements():
            problems.append(
                f"#PCDATA element {element.name!r} contains child "
                "elements")
    else:
        _check_content_sequence(element, dtd, problems)
    _check_attributes(element, dtd, problems, ids, idrefs)


def _check_content_sequence(element: Element, dtd: Dtd,
                            problems: list[str]) -> None:
    automaton = dtd.automaton(element.name)
    symbols: list[str] = []
    for child in element.children:
        if isinstance(child, Element):
            symbols.append(child.name)
        elif isinstance(child, Text) and child.content.strip():
            symbols.append(PCDATA_NAME)
    # Consecutive text nodes would have been merged; duplicated #PCDATA
    # symbols are harmless because PCDATA loops in the automaton.
    if not automaton.accepts(symbols):
        shown = ", ".join(symbols) if symbols else "(empty)"
        problems.append(
            f"children of {element.name!r} do not match its content "
            f"model {automaton.model}: got [{shown}]")


def _check_attributes(element: Element, dtd: Dtd, problems: list[str],
                      ids: dict[str, str],
                      idrefs: list[tuple[str, str]]) -> None:
    attlist = dtd.attlist(element.name)
    declared = {d.name for d in attlist} if attlist is not None else set()
    for attribute in element.attributes:
        if attribute not in declared:
            problems.append(
                f"attribute {attribute!r} is not declared on "
                f"{element.name!r}")
    if attlist is None:
        return
    for definition in attlist:
        value = element.attributes.get(definition.name)
        if value is None:
            if definition.required:
                problems.append(
                    f"required attribute {definition.name!r} missing on "
                    f"{element.name!r}")
            continue
        if definition.kind == ATT_NAME_GROUP:
            if value not in definition.allowed_values:
                allowed = " | ".join(definition.allowed_values)
                problems.append(
                    f"attribute {definition.name!r} of {element.name!r} "
                    f"has value {value!r}, allowed: ({allowed})")
        elif definition.kind == ATT_NUMBER:
            if not value.lstrip("-").isdigit():
                problems.append(
                    f"attribute {definition.name!r} of {element.name!r} "
                    f"must be a NUMBER, got {value!r}")
        elif definition.kind == ATT_ID:
            if value in ids:
                problems.append(
                    f"duplicate ID {value!r} (first used on "
                    f"{ids[value]!r})")
            else:
                ids[value] = element.name
        elif definition.kind == ATT_IDREF:
            idrefs.append((element.name, value))
        elif definition.kind == ATT_IDREFS:
            for token in value.split():
                idrefs.append((element.name, token))
        elif definition.kind == ATT_ENTITY:
            entity = dtd.entity(value)
            if entity is None or not entity.is_external:
                problems.append(
                    f"attribute {definition.name!r} of {element.name!r} "
                    f"names unknown external entity {value!r}")
