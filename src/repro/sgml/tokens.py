"""A character cursor with position tracking, shared by the SGML parsers."""

from __future__ import annotations

from repro.errors import SgmlError

#: Characters allowed in SGML names after the first (NAMECHAR).
NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-_")

#: Characters allowed as the first character of a name (NAMESTART).
NAME_START_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")


def is_name(text: str) -> bool:
    """True when ``text`` is a valid SGML name."""
    return (bool(text) and text[0] in NAME_START_CHARS
            and all(ch in NAME_CHARS for ch in text))


class Cursor:
    """A read head over source text with line/column tracking."""

    __slots__ = ("text", "pos", "_line_starts")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    # -- position -------------------------------------------------------------

    @property
    def line(self) -> int:
        """1-based line number of the current position."""
        return self._line_of(self.pos)

    @property
    def column(self) -> int:
        """1-based column number of the current position."""
        line = self._line_of(self.pos)
        return self.pos - self._line_starts[line - 1] + 1

    def _line_of(self, pos: int) -> int:
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def error(self, message: str,
              error_class: type[SgmlError] = SgmlError) -> SgmlError:
        """Build a positioned error (caller raises it)."""
        return error_class(message, line=self.line, column=self.column)

    # -- inspection -----------------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, length: int = 1) -> str:
        return self.text[self.pos:self.pos + length]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    # -- consumption ----------------------------------------------------------

    def advance(self, count: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + count]
        self.pos += len(chunk)
        return chunk

    def expect(self, literal: str,
               error_class: type[SgmlError] = SgmlError) -> None:
        if not self.startswith(literal):
            raise self.error(
                f"expected {literal!r}, found {self.peek(len(literal))!r}",
                error_class)
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def take_while(self, predicate) -> str:
        start = self.pos
        while self.pos < len(self.text) and predicate(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]

    def take_until(self, stop: str,
                   error_class: type[SgmlError] = SgmlError) -> str:
        """Consume up to (not including) ``stop``; error at end of input."""
        index = self.text.find(stop, self.pos)
        if index < 0:
            raise self.error(f"unterminated construct, expected {stop!r}",
                             error_class)
        chunk = self.text[self.pos:index]
        self.pos = index
        return chunk

    def take_name(self, error_class: type[SgmlError] = SgmlError) -> str:
        """Consume an SGML name."""
        if self.at_end() or self.text[self.pos] not in NAME_START_CHARS:
            raise self.error(
                f"expected a name, found {self.peek()!r}", error_class)
        return self.take_while(lambda ch: ch in NAME_CHARS)
