"""Parser for document type definitions (Figure 1).

Accepts either a full ``<!DOCTYPE name [ ... ]>`` wrapper or a bare
sequence of mark-up declarations.  Supported declarations:

* ``<!ELEMENT name - O (content model)>`` — with optional tag-omission
  indicators and name groups ``<!ELEMENT (a|b) ...>`` declaring several
  elements at once;
* ``<!ATTLIST name attr TYPE default ...>`` — CDATA / ID / IDREF(S) /
  NMTOKEN(S) / NUMBER / ENTITY / enumerated name groups; defaults
  ``#REQUIRED`` / ``#IMPLIED`` / ``#FIXED "v"`` / literal;
* ``<!ENTITY name "text">``, ``<!ENTITY name SYSTEM "sysid" [NDATA n]>``
  and parameter entities ``<!ENTITY % name "text">`` with ``%name;``
  substitution inside the DTD;
* comment declarations ``<!-- ... -->``.
"""

from __future__ import annotations

from repro.errors import DtdSyntaxError
from repro.sgml.contentmodel import parse_content_model
from repro.sgml.dtd import (
    ATT_CDATA,
    ATT_ENTITY,
    ATT_ID,
    ATT_IDREF,
    ATT_IDREFS,
    ATT_NAME_GROUP,
    ATT_NMTOKEN,
    ATT_NMTOKENS,
    ATT_NUMBER,
    AttDef,
    AttlistDecl,
    DEFAULT_FIXED,
    DEFAULT_IMPLIED,
    DEFAULT_REQUIRED,
    DEFAULT_VALUE,
    Dtd,
    ElementDecl,
    EntityDecl,
)
from repro.sgml.tokens import Cursor, NAME_CHARS

_KIND_WORDS = {
    "CDATA": ATT_CDATA,
    "ID": ATT_ID,
    "IDREF": ATT_IDREF,
    "IDREFS": ATT_IDREFS,
    "NMTOKEN": ATT_NMTOKEN,
    "NMTOKENS": ATT_NMTOKENS,
    "NUMBER": ATT_NUMBER,
    "ENTITY": ATT_ENTITY,
    "NAME": ATT_NMTOKEN,  # NAME is close enough to NMTOKEN for our needs
    "NUTOKEN": ATT_NMTOKEN,
}


def parse_dtd(text: str) -> Dtd:
    """Parse DTD text into a :class:`~repro.sgml.dtd.Dtd`."""
    cursor = Cursor(text)
    cursor.skip_whitespace()
    doctype = ""
    if cursor.startswith("<!DOCTYPE") or cursor.startswith("<!doctype"):
        cursor.advance(len("<!DOCTYPE"))
        cursor.skip_whitespace()
        doctype = cursor.take_name(DtdSyntaxError)
        cursor.skip_whitespace()
        cursor.expect("[", DtdSyntaxError)
    dtd = Dtd(doctype)
    while True:
        cursor.skip_whitespace()
        if cursor.at_end():
            break
        if cursor.startswith("]"):
            cursor.advance()
            cursor.skip_whitespace()
            if cursor.startswith(">"):
                cursor.advance()
            break
        if cursor.startswith("%"):
            _substitute_parameter_entity(cursor, dtd)
            continue
        if cursor.startswith("<!--"):
            _skip_comment(cursor)
            continue
        if cursor.startswith("<!"):
            _parse_declaration(cursor, dtd)
            continue
        raise cursor.error(
            f"unexpected characters in DTD: {cursor.peek(12)!r}",
            DtdSyntaxError)
    if not dtd.doctype and dtd.elements:
        # Bare declaration list: the first declared element is the doctype.
        dtd.doctype = next(iter(dtd.elements))
    return dtd


def _skip_comment(cursor: Cursor) -> None:
    cursor.expect("<!--", DtdSyntaxError)
    cursor.take_until("-->", DtdSyntaxError)
    cursor.expect("-->", DtdSyntaxError)


def _substitute_parameter_entity(cursor: Cursor, dtd: Dtd) -> None:
    cursor.expect("%", DtdSyntaxError)
    name = cursor.take_name(DtdSyntaxError)
    if cursor.startswith(";"):
        cursor.advance()
    entity = dtd.parameter_entities.get(name)
    if entity is None or entity.text is None:
        raise cursor.error(
            f"undefined parameter entity %{name};", DtdSyntaxError)
    # Splice the replacement text at the current position.
    remaining = cursor.text[cursor.pos:]
    spliced = entity.text + remaining
    new_cursor_text = cursor.text[:cursor.pos] + spliced
    cursor.text = new_cursor_text
    cursor._line_starts = _recompute_line_starts(new_cursor_text)


def _expand_parameter_entities(text: str, dtd: Dtd,
                               cursor: Cursor) -> str:
    """Expand ``%name;`` references inside declaration text."""
    guard = 0
    while "%" in text:
        guard += 1
        if guard > _MAX_PE_DEPTH:
            raise cursor.error(
                "parameter entity expansion too deep (cycle?)",
                DtdSyntaxError)
        start = text.index("%")
        end = start + 1
        while end < len(text) and text[end] in NAME_CHARS:
            end += 1
        name = text[start + 1:end]
        if end < len(text) and text[end] == ";":
            end += 1
        entity = dtd.parameter_entities.get(name)
        if entity is None or entity.text is None:
            raise cursor.error(
                f"undefined parameter entity %{name};", DtdSyntaxError)
        text = text[:start] + entity.text + text[end:]
    return text


_MAX_PE_DEPTH = 32


def _recompute_line_starts(text: str) -> list[int]:
    starts = [0]
    for i, ch in enumerate(text):
        if ch == "\n":
            starts.append(i + 1)
    return starts


def _parse_declaration(cursor: Cursor, dtd: Dtd) -> None:
    cursor.expect("<!", DtdSyntaxError)
    keyword = cursor.take_name(DtdSyntaxError).upper()
    if keyword == "ELEMENT":
        _parse_element(cursor, dtd)
    elif keyword == "ATTLIST":
        _parse_attlist(cursor, dtd)
    elif keyword == "ENTITY":
        _parse_entity(cursor, dtd)
    elif keyword == "NOTATION":
        # Tolerated and skipped: notations carry no structure we map.
        cursor.take_until(">", DtdSyntaxError)
        cursor.expect(">", DtdSyntaxError)
    else:
        raise cursor.error(
            f"unknown declaration <!{keyword}", DtdSyntaxError)


def _parse_name_group(cursor: Cursor) -> list[str]:
    """``(a | b | c)`` — used for multi-element declarations."""
    cursor.expect("(", DtdSyntaxError)
    names = []
    while True:
        cursor.skip_whitespace()
        names.append(cursor.take_name(DtdSyntaxError))
        cursor.skip_whitespace()
        if cursor.startswith(")"):
            cursor.advance()
            return names
        if cursor.peek() in "|,&":
            cursor.advance()
        else:
            raise cursor.error(
                f"expected '|' or ')' in name group, found "
                f"{cursor.peek()!r}", DtdSyntaxError)


def _parse_element(cursor: Cursor, dtd: Dtd) -> None:
    cursor.skip_whitespace()
    if cursor.startswith("("):
        names = _parse_name_group(cursor)
    else:
        names = [cursor.take_name(DtdSyntaxError)]
    cursor.skip_whitespace()
    omit_start = omit_end = False
    has_omission = cursor.peek() in "-Oo" and cursor.peek(2)[1:2].isspace()
    if has_omission:
        omit_start = cursor.advance().upper() == "O"
        cursor.skip_whitespace()
        if cursor.peek() not in "-Oo":
            raise cursor.error(
                "expected the end-tag omission indicator", DtdSyntaxError)
        omit_end = cursor.advance().upper() == "O"
        cursor.skip_whitespace()
    model_text = cursor.take_until(">", DtdSyntaxError).strip()
    cursor.expect(">", DtdSyntaxError)
    model_text = _expand_parameter_entities(model_text, dtd, cursor)
    try:
        model = parse_content_model(model_text)
    except Exception as exc:
        raise cursor.error(
            f"bad content model for {names[0]!r}: {exc}",
            DtdSyntaxError) from exc
    for name in names:
        dtd.add_element(ElementDecl(name, model, omit_start, omit_end))


def _parse_attlist(cursor: Cursor, dtd: Dtd) -> None:
    cursor.skip_whitespace()
    if cursor.startswith("("):
        element_names = _parse_name_group(cursor)
    else:
        element_names = [cursor.take_name(DtdSyntaxError)]
    definitions: list[AttDef] = []
    while True:
        cursor.skip_whitespace()
        if cursor.startswith(">"):
            cursor.advance()
            break
        attribute_name = cursor.take_name(DtdSyntaxError)
        cursor.skip_whitespace()
        kind, allowed = _parse_declared_value(cursor)
        cursor.skip_whitespace()
        default_kind, default_value = _parse_default(cursor)
        definitions.append(AttDef(
            attribute_name, kind, allowed, default_kind, default_value))
    for element_name in element_names:
        dtd.add_attlist(AttlistDecl(element_name, definitions))


def _parse_declared_value(cursor: Cursor) -> tuple[str, tuple[str, ...]]:
    if cursor.startswith("("):
        values = _parse_token_group(cursor)
        return ATT_NAME_GROUP, tuple(values)
    word = cursor.take_name(DtdSyntaxError).upper()
    kind = _KIND_WORDS.get(word)
    if kind is None:
        raise cursor.error(
            f"unknown declared attribute value {word!r}", DtdSyntaxError)
    return kind, ()


def _parse_token_group(cursor: Cursor) -> list[str]:
    cursor.expect("(", DtdSyntaxError)
    tokens: list[str] = []
    while True:
        cursor.skip_whitespace()
        token = cursor.take_while(
            lambda ch: ch in NAME_CHARS)
        if not token:
            raise cursor.error("expected a token", DtdSyntaxError)
        tokens.append(token)
        cursor.skip_whitespace()
        if cursor.startswith(")"):
            cursor.advance()
            return tokens
        if cursor.startswith("|"):
            cursor.advance()
        else:
            raise cursor.error(
                f"expected '|' or ')' in token group, found "
                f"{cursor.peek()!r}", DtdSyntaxError)


def _parse_default(cursor: Cursor) -> tuple[str, str | None]:
    if cursor.startswith("#"):
        cursor.advance()
        word = cursor.take_name(DtdSyntaxError).upper()
        if word == "REQUIRED":
            return DEFAULT_REQUIRED, None
        if word == "IMPLIED":
            return DEFAULT_IMPLIED, None
        if word == "FIXED":
            cursor.skip_whitespace()
            return DEFAULT_FIXED, _parse_literal_or_token(cursor)
        if word == "CURRENT" or word == "CONREF":
            # Treated as implied: we do not model these defaults.
            return DEFAULT_IMPLIED, None
        raise cursor.error(f"unknown default #{word}", DtdSyntaxError)
    return DEFAULT_VALUE, _parse_literal_or_token(cursor)


def _parse_literal_or_token(cursor: Cursor) -> str:
    quote = cursor.peek()
    if quote in "\"'":
        cursor.advance()
        value = cursor.take_until(quote, DtdSyntaxError)
        cursor.expect(quote, DtdSyntaxError)
        return value
    value = cursor.take_while(lambda ch: ch in NAME_CHARS)
    if not value:
        raise cursor.error("expected a default value", DtdSyntaxError)
    return value


def _parse_entity(cursor: Cursor, dtd: Dtd) -> None:
    cursor.skip_whitespace()
    parameter = False
    if cursor.startswith("%"):
        parameter = True
        cursor.advance()
        cursor.skip_whitespace()
    name = cursor.take_name(DtdSyntaxError)
    cursor.skip_whitespace()
    if cursor.peek() in "\"'":
        text = _parse_literal_or_token(cursor)
        cursor.skip_whitespace()
        cursor.expect(">", DtdSyntaxError)
        dtd.add_entity(EntityDecl(name, text=text, parameter=parameter))
        return
    keyword = cursor.take_name(DtdSyntaxError).upper()
    if keyword not in ("SYSTEM", "PUBLIC"):
        raise cursor.error(
            f"expected SYSTEM/PUBLIC or a literal in entity declaration, "
            f"found {keyword!r}", DtdSyntaxError)
    cursor.skip_whitespace()
    system_id = _parse_literal_or_token(cursor)
    if keyword == "PUBLIC":
        cursor.skip_whitespace()
        if cursor.peek() in "\"'":
            system_id = _parse_literal_or_token(cursor)
    cursor.skip_whitespace()
    ndata = None
    if not cursor.startswith(">"):
        word = cursor.take_name(DtdSyntaxError).upper()
        if word == "NDATA":
            cursor.skip_whitespace()
            # The notation name may be absent in loose DTDs (Figure 1
            # line 16 writes `NDATA >`); tolerate that.
            if not cursor.startswith(">"):
                ndata = cursor.take_name(DtdSyntaxError)
            else:
                ndata = ""
        cursor.skip_whitespace()
    cursor.expect(">", DtdSyntaxError)
    dtd.add_entity(EntityDecl(
        name, system_id=system_id, ndata=ndata, parameter=parameter))
