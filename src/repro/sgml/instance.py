"""The parsed document tree (Figure 2).

A document instance is a tree of :class:`Element` nodes with
:class:`Text` leaves.  Elements carry their attributes and know whether
their start/end tags were present in the source or inferred (useful for
round-trip tests of the omitted-tag machinery).
"""

from __future__ import annotations

from typing import Iterator


class Node:
    """Base class of tree nodes."""

    parent: "Element | None" = None


class Text(Node):
    """A character-data leaf."""

    __slots__ = ("content", "parent")

    def __init__(self, content: str) -> None:
        self.content = content
        self.parent = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Text) and other.content == self.content

    def __hash__(self) -> int:
        return hash(("text", self.content))

    def __repr__(self) -> str:
        shown = self.content if len(self.content) <= 30 else (
            self.content[:27] + "...")
        return f"Text({shown!r})"


class Element(Node):
    """An element node with attributes and ordered children."""

    __slots__ = ("name", "attributes", "children", "parent",
                 "start_inferred", "end_inferred")

    def __init__(self, name: str,
                 attributes: dict[str, str] | None = None,
                 children: list[Node] | None = None,
                 start_inferred: bool = False,
                 end_inferred: bool = False) -> None:
        self.name = name
        self.attributes = dict(attributes or {})
        self.children: list[Node] = []
        self.parent = None
        self.start_inferred = start_inferred
        self.end_inferred = end_inferred
        for child in children or []:
            self.append(child)

    # -- tree building ------------------------------------------------------

    def append(self, child: Node) -> Node:
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, content: str) -> Text:
        """Append character data, merging with a trailing text node."""
        if self.children and isinstance(self.children[-1], Text):
            merged = Text(self.children[-1].content + content)
            merged.parent = self
            self.children[-1] = merged
            return merged
        node = Text(content)
        return self.append(node)  # type: ignore[return-value]

    # -- navigation -----------------------------------------------------------

    def child_elements(self) -> list["Element"]:
        return [c for c in self.children if isinstance(c, Element)]

    def first(self, name: str) -> "Element | None":
        """First *direct* child element with the given name."""
        for child in self.children:
            if isinstance(child, Element) and child.name == name:
                return child
        return None

    def find_all(self, name: str) -> list["Element"]:
        """Every descendant element with the given name (document order)."""
        return [e for e in iter_elements(self) if e.name == name]

    def text_content(self) -> str:
        """All character data in document order (the ``text()`` view)."""
        pieces: list[str] = []
        _collect_text(self, pieces)
        return "".join(pieces)

    def get(self, attribute: str, default: str | None = None) -> str | None:
        return self.attributes.get(attribute, default)

    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    # -- comparison -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality: name, attributes and children (recursively).

        The inferred-tag flags and parents are ignored — two documents that
        parse to the same structure are equal even if one spelled out tags
        the other omitted.
        """
        return (isinstance(other, Element)
                and other.name == self.name
                and other.attributes == self.attributes
                and other.children == self.children)

    def __hash__(self) -> int:
        return hash(("element", self.name,
                     tuple(sorted(self.attributes.items())),
                     tuple(self.children)))

    def __repr__(self) -> str:
        bits = [self.name]
        if self.attributes:
            bits.append(" " + " ".join(
                f'{k}="{v}"' for k, v in self.attributes.items()))
        return f"<{''.join(bits)}> ({len(self.children)} children)"


def iter_elements(root: Element) -> Iterator[Element]:
    """Pre-order iteration over ``root`` and its descendant elements."""
    yield root
    for child in root.children:
        if isinstance(child, Element):
            yield from iter_elements(child)


def iter_nodes(root: Element) -> Iterator[Node]:
    """Pre-order iteration over all nodes including text leaves."""
    yield root
    for child in root.children:
        if isinstance(child, Element):
            yield from iter_nodes(child)
        else:
            yield child


def _collect_text(node: Node, pieces: list[str]) -> None:
    if isinstance(node, Text):
        pieces.append(node.content)
    elif isinstance(node, Element):
        for child in node.children:
            _collect_text(child, pieces)


def element_count(root: Element) -> int:
    """Number of elements in the tree (text leaves excluded)."""
    return sum(1 for _ in iter_elements(root))
