"""SGML content models (Section 2).

A content model describes the legal children of an element.  It is built
from element references and ``#PCDATA`` with three connectors —

* ``,`` sequence (order imposed),
* ``&`` and-group (all parts, any order),
* ``|`` choice (exactly one part),

each part optionally qualified by an occurrence indicator ``?``, ``+`` or
``*``.  The declared content keywords ``EMPTY`` and ``ANY`` are also
content models.

This module defines the AST, its parser, and the derived syntactic
properties (``nullable``, ``first``) that the Glushkov construction and
the tag-inference machinery rely on.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ContentModelError
from repro.sgml.tokens import Cursor

#: Pseudo element name used for character data inside content models.
PCDATA_NAME = "#PCDATA"


class ContentModel:
    """Base class of content-model AST nodes."""

    def nullable(self) -> bool:
        """Can this model match the empty sequence of children?"""
        raise NotImplementedError

    def first(self) -> set[str]:
        """Element names (or #PCDATA) that can start a match."""
        raise NotImplementedError

    def mentioned(self) -> set[str]:
        """Every element name appearing in the model (excludes #PCDATA)."""
        return {name for name in self._mention_iter() if name != PCDATA_NAME}

    def allows_pcdata(self) -> bool:
        return PCDATA_NAME in set(self._mention_iter())

    def _mention_iter(self) -> Iterator[str]:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash(str(self))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


class Empty(ContentModel):
    """Declared content ``EMPTY`` — no children at all."""

    def nullable(self) -> bool:
        return True

    def first(self) -> set[str]:
        return set()

    def _mention_iter(self) -> Iterator[str]:
        return iter(())

    def __str__(self) -> str:
        return "EMPTY"


class AnyContent(ContentModel):
    """Declared content ``ANY`` — any elements and character data."""

    def nullable(self) -> bool:
        return True

    def first(self) -> set[str]:
        return set()

    def _mention_iter(self) -> Iterator[str]:
        return iter(())

    def __str__(self) -> str:
        return "ANY"


class PCData(ContentModel):
    """``#PCDATA`` — character data."""

    def nullable(self) -> bool:
        # Character data may always be empty.
        return True

    def first(self) -> set[str]:
        return {PCDATA_NAME}

    def _mention_iter(self) -> Iterator[str]:
        yield PCDATA_NAME

    def __str__(self) -> str:
        return PCDATA_NAME


class ElementRef(ContentModel):
    """A reference to a child element by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def nullable(self) -> bool:
        return False

    def first(self) -> set[str]:
        return {self.name}

    def _mention_iter(self) -> Iterator[str]:
        yield self.name

    def __str__(self) -> str:
        return self.name


class _Group(ContentModel):
    """Shared base for the three connector groups."""

    connector = "?"

    def __init__(self, parts: list[ContentModel] | tuple) -> None:
        frozen = tuple(parts)
        if len(frozen) < 1:
            raise ContentModelError(
                f"{type(self).__name__} needs at least one part")
        self.parts = frozen

    def _mention_iter(self) -> Iterator[str]:
        for part in self.parts:
            yield from part._mention_iter()

    def __str__(self) -> str:
        sep = self.connector
        return "(" + sep.join(str(p) for p in self.parts) + ")"


class Seq(_Group):
    """``(a, b, c)`` — ordered sequence."""

    connector = ", "

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def first(self) -> set[str]:
        names: set[str] = set()
        for part in self.parts:
            names |= part.first()
            if not part.nullable():
                break
        return names


class Choice(_Group):
    """``(a | b | c)`` — exactly one alternative."""

    connector = " | "

    def nullable(self) -> bool:
        return any(part.nullable() for part in self.parts)

    def first(self) -> set[str]:
        names: set[str] = set()
        for part in self.parts:
            names |= part.first()
        return names


class AndGroup(_Group):
    """``(a & b & c)`` — all parts in any order."""

    connector = " & "

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def first(self) -> set[str]:
        names: set[str] = set()
        for part in self.parts:
            names |= part.first()
        return names


class _Occurrence(ContentModel):
    """Shared base for the occurrence indicators."""

    indicator = "?"

    def __init__(self, child: ContentModel) -> None:
        self.child = child

    def first(self) -> set[str]:
        return self.child.first()

    def _mention_iter(self) -> Iterator[str]:
        return self.child._mention_iter()

    def __str__(self) -> str:
        return f"{self.child}{self.indicator}"


class Opt(_Occurrence):
    """``x?`` — zero or one occurrence."""

    indicator = "?"

    def nullable(self) -> bool:
        return True


class Plus(_Occurrence):
    """``x+`` — one or more occurrences."""

    indicator = "+"

    def nullable(self) -> bool:
        return self.child.nullable()


class Star(_Occurrence):
    """``x*`` — zero or more occurrences."""

    indicator = "*"

    def nullable(self) -> bool:
        return True


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def parse_content_model(text: str) -> ContentModel:
    """Parse a content-model expression.

    Accepts the declared-content keywords ``EMPTY``/``ANY``/``CDATA`` (the
    latter treated as #PCDATA), a parenthesised model group, or — as a
    convenience — a bare element name or ``#PCDATA``.
    """
    cursor = Cursor(text)
    cursor.skip_whitespace()
    model = _parse_model(cursor)
    cursor.skip_whitespace()
    if not cursor.at_end():
        raise cursor.error(
            f"trailing characters after content model: {cursor.peek(10)!r}",
            ContentModelError)
    return model


def _parse_model(cursor: Cursor) -> ContentModel:
    if cursor.startswith("("):
        return _parse_group(cursor)
    word = cursor.take_while(lambda ch: ch in "#" or ch.isalnum()
                             or ch in ".-_")
    upper = word.upper()
    if upper == "EMPTY":
        return Empty()
    if upper == "ANY":
        return AnyContent()
    if upper in ("CDATA", "RCDATA", "#PCDATA"):
        return PCData()
    if word:
        return _with_occurrence(cursor, ElementRef(word))
    raise cursor.error("expected a content model", ContentModelError)


def _parse_group(cursor: Cursor) -> ContentModel:
    cursor.expect("(", ContentModelError)
    parts: list[ContentModel] = []
    connector: str | None = None
    while True:
        cursor.skip_whitespace()
        parts.append(_parse_part(cursor))
        cursor.skip_whitespace()
        ch = cursor.peek()
        if ch == ")":
            cursor.advance()
            break
        if ch not in ",|&":
            raise cursor.error(
                f"expected a connector or ')', found {ch!r}",
                ContentModelError)
        if connector is None:
            connector = ch
        elif connector != ch:
            raise cursor.error(
                f"mixed connectors {connector!r} and {ch!r} in one group "
                "(SGML requires homogeneous groups)", ContentModelError)
        cursor.advance()
    if len(parts) == 1:
        group: ContentModel = parts[0]
    elif connector == ",":
        group = Seq(parts)
    elif connector == "|":
        group = Choice(parts)
    else:
        group = AndGroup(parts)
    return _with_occurrence(cursor, group)


def _parse_part(cursor: Cursor) -> ContentModel:
    if cursor.startswith("("):
        return _parse_group(cursor)
    if cursor.startswith("#"):
        cursor.advance()
        word = cursor.take_name(ContentModelError)
        if word.upper() != "PCDATA":
            raise cursor.error(
                f"unknown reserved name #{word}", ContentModelError)
        return _with_occurrence(cursor, PCData())
    name = cursor.take_name(ContentModelError)
    return _with_occurrence(cursor, ElementRef(name))


def _with_occurrence(cursor: Cursor, model: ContentModel) -> ContentModel:
    ch = cursor.peek()
    if ch == "?":
        cursor.advance()
        return Opt(model)
    if ch == "+":
        cursor.advance()
        return Plus(model)
    if ch == "*":
        cursor.advance()
        return Star(model)
    return model
