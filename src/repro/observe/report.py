"""Rendering of profiled queries — the EXPLAIN ANALYZE output.

:class:`ExplainReport` is what
:meth:`repro.session.DocumentStore.explain_analyze`
returns: the executed plan annotated with *actual* per-operator row
counts (algebra backend), the pipeline span tree, the result, and a
structured metrics snapshot.  ``str(report)`` renders the familiar
indented tree::

    Project [t]  (est=4.2, rows=3, pulls=1, time=1.2ms)
      Union (13 branches)  (est=5.0, rows=5, pulls=1, time=1.1ms)
        MakePath P = .title  (est=1.0, rows=1, pulls=1, time=0.1ms)
        ...

``est`` is the cost stage's predicted cardinality (absent on uncosted
plans); :meth:`ExplainReport.estimation_errors` ranks the nodes by
q-error and :meth:`ExplainReport.estimation_summary` aggregates them.
Row counts and plan shapes are deterministic; times are informational.
"""

from __future__ import annotations

from repro.observe.profile import PlanProfiler
from repro.observe.trace import Span


def _label(operator) -> str:
    """The operator's own describe line (no children)."""
    return operator.describe(0).split("\n", 1)[0]


def plan_tree(operator, profiler: PlanProfiler | None = None,
              _seen: set | None = None) -> dict:
    """Nested ``{operator, label, rows, pulls, elapsed, children}``.

    Factored plans are DAGs: a shared subplan is expanded only at its
    first occurrence; later references render as a stub node with
    ``"ref": True``, no children, and a ``(ref)`` label suffix — so the
    display, like the execution, visits every shared node once.
    """
    if _seen is None:
        _seen = set()
    stats = profiler.stats_for(operator) if profiler is not None else None
    node = {
        "operator": type(operator).__name__,
        "label": _label(operator),
        "rows": stats.rows_out if stats is not None else None,
        "pulls": stats.pulls if stats is not None else None,
        "elapsed": stats.elapsed if stats is not None else None,
        "est_rows": getattr(operator, "est_rows", None),
    }
    if id(operator) in _seen:
        node["label"] += "  (ref)"
        node["ref"] = True
        node["children"] = []
        return node
    _seen.add(id(operator))
    node["ref"] = False
    node["children"] = [plan_tree(child, profiler, _seen)
                        for child in operator.children()]
    return node


def render_plan_tree(tree: dict, indent: int = 0) -> str:
    pad = "  " * indent
    annotation = ""
    if tree["rows"] is not None:
        estimated = ""
        if tree.get("est_rows") is not None:
            estimated = f"est={tree['est_rows']:.1f}, "
        annotation = (f"  ({estimated}rows={tree['rows']}, "
                      f"pulls={tree['pulls']}, "
                      f"time={tree['elapsed'] * 1000:.2f}ms)")
    lines = [pad + tree["label"] + annotation]
    for child in tree["children"]:
        lines.append(render_plan_tree(child, indent + 1))
    return "\n".join(lines)


def render_span(span: Span, indent: int = 0) -> str:
    pad = "  " * indent
    attributes = "".join(
        f" {key}={value}" for key, value in span.attributes.items())
    lines = [f"{pad}{span.name}{attributes}  "
             f"[{span.elapsed * 1000:.2f}ms]"]
    for child in span.children:
        lines.append(render_span(child, indent + 1))
    return "\n".join(lines)


class ExplainReport:
    """The result of running a query with full observation."""

    def __init__(self, text: str, backend: str, result, plan,
                 profiler: PlanProfiler | None, metrics: dict,
                 trace: Span | None, sql: str | None = None) -> None:
        self.text = text
        self.backend = backend
        self.result = result
        self.plan = plan
        self.profiler = profiler
        #: structured snapshot — ``{"counters": {...}, "histograms": {...}}``
        self.metrics = metrics
        self.trace = trace
        #: the emitted SQL statement(s) when the run was served by the
        #: relational backend's hybrid; ``None`` on every other path
        self.sql = sql

    # -- structured access ---------------------------------------------------

    @property
    def tree(self) -> dict | None:
        """The annotated plan tree (``None`` for the calculus backend)."""
        if self.plan is None:
            return None
        return plan_tree(self.plan, self.profiler)

    def operators(self) -> list[dict]:
        """Flat pre-order list of annotated plan nodes."""
        found: list[dict] = []

        def visit(node: dict) -> None:
            found.append({key: node[key] for key in
                          ("operator", "label", "rows", "pulls",
                           "elapsed", "est_rows")})
            for child in node["children"]:
                visit(child)

        tree = self.tree
        if tree is not None:
            visit(tree)
        return found

    def rows_for(self, operator_name: str) -> list[int]:
        """Actual row counts of every node of the given operator class."""
        return [node["rows"] for node in self.operators()
                if node["operator"] == operator_name]

    def union_fanouts(self) -> list[int]:
        """Branch counts of every distinct UnionOp in the executed
        plan (a union inside a shared subplan is counted once)."""
        if self.plan is None:
            return []
        from repro.algebra.operators import UnionOp
        found: list[int] = []
        seen: set[int] = set()

        def visit(operator) -> None:
            if id(operator) in seen:
                return
            seen.add(id(operator))
            if isinstance(operator, UnionOp):
                found.append(len(operator.branches))
            for child in operator.children():
                visit(child)

        visit(self.plan)
        return found

    def counter(self, name: str, default: int = 0) -> int:
        return self.metrics.get("counters", {}).get(name, default)

    def estimation_errors(self) -> list[dict]:
        """Per-operator estimation quality, worst first: every executed
        node that carries both a cost-stage estimate (``est_rows``) and
        a measured actual row count, with its q-error (the symmetric
        ratio; 1.0 = perfect).  Shared nodes are counted once (ref
        stubs are skipped).  Empty on uncosted or unprofiled runs."""
        from repro.stats import q_error
        found: list[dict] = []

        def visit(node: dict) -> None:
            if node.get("ref"):
                return
            if (node["est_rows"] is not None
                    and node["rows"] is not None):
                found.append({
                    "operator": node["operator"],
                    "label": node["label"],
                    "est_rows": node["est_rows"],
                    "actual_rows": node["rows"],
                    "q_error": q_error(node["est_rows"], node["rows"]),
                })
            for child in node["children"]:
                visit(child)

        tree = self.tree
        if tree is not None and self.profiler is not None:
            visit(tree)
        found.sort(key=lambda entry: -entry["q_error"])
        return found

    def estimation_summary(self) -> dict | None:
        """Aggregate estimation error of the run: node count, mean and
        max q-error — ``None`` when the plan carries no estimates.

        Degenerate estimates (an operator whose cost annotation went
        non-finite) are excluded from the mean so one bad node cannot
        wash out the aggregate; ``max_q_error`` still reports them."""
        import math
        errors = self.estimation_errors()
        if not errors:
            return None
        qs = [entry["q_error"] for entry in errors]
        finite = [q for q in qs if math.isfinite(q)]
        return {
            "operators": len(qs),
            "mean_q_error": (sum(finite) / len(finite)
                             if finite else math.inf),
            "max_q_error": max(qs),
        }

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        lines = [f"EXPLAIN ANALYZE ({self.backend} backend) — "
                 f"{len(self.result)} row(s)"]
        if self.plan is not None:
            lines.append(render_plan_tree(self.tree))
            summary = self.estimation_summary()
            if summary is not None:
                lines.append(
                    f"estimation error: mean q={summary['mean_q_error']:.2f}, "
                    f"max q={summary['max_q_error']:.2f} over "
                    f"{summary['operators']} operator(s)")
        if self.sql:
            lines.append("")
            lines.append("emitted SQL:")
            lines.extend("  " + line for line in self.sql.splitlines())
        if self.trace is not None:
            lines.append("")
            lines.append(render_span(self.trace))
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append("counters:")
            lines.extend(f"  {name} = {value}"
                         for name, value in counters.items())
        return "\n".join(lines)

    __str__ = render

    def __repr__(self) -> str:  # pragma: no cover
        return (f"ExplainReport(backend={self.backend!r}, "
                f"rows={len(self.result)})")
