"""Per-operator profiling of algebra plans, and observer installation.

:class:`PlanProfiler` wraps each operator's row stream, recording

* ``rows_out`` — rows the operator yielded (the EXPLAIN ANALYZE "actual
  rows", deterministic for a given corpus),
* ``pulls`` — how many times the stream was opened (a shared subtree is
  pulled once per consuming branch),
* ``elapsed`` — inclusive wall-clock seconds spent producing those rows
  (the operator plus its subtree; informational only — never assert on
  it).

:func:`observed` temporarily installs a metrics registry, tracer and
profiler on an :class:`~repro.calculus.evaluator.EvalContext` — and on
the objects hanging off it (the instance and the text index) — restoring
the previous observers on exit.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class OperatorStats:
    """Deterministic row counts plus elapsed time for one plan node."""

    __slots__ = ("rows_out", "pulls", "elapsed")

    def __init__(self) -> None:
        self.rows_out = 0
        self.pulls = 0
        self.elapsed = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return (f"OperatorStats(rows_out={self.rows_out}, "
                f"pulls={self.pulls}, elapsed={self.elapsed:.6f})")


class PlanProfiler:
    """Accumulates :class:`OperatorStats` keyed by plan-node identity."""

    def __init__(self) -> None:
        # id(op) -> stats; the operator object is kept alive alongside so
        # the id cannot be recycled while the profiler holds it.
        self._stats: dict[int, tuple[object, OperatorStats]] = {}

    def stats_for(self, operator) -> OperatorStats:
        entry = self._stats.get(id(operator))
        if entry is None:
            entry = (operator, OperatorStats())
            self._stats[id(operator)] = entry
        return entry[1]

    def rows_out(self, operator) -> int:
        """Actual rows the operator yielded (0 when it never ran)."""
        entry = self._stats.get(id(operator))
        return entry[1].rows_out if entry is not None else 0

    def wrap(self, operator, inner: Iterator) -> Iterator:
        """Meter ``inner``: count yielded rows, time each pull.

        Elapsed time covers only the production of rows (the time between
        a ``next()`` request and its answer) — the consumer's own work in
        between is excluded, so a node's time is inclusive of its subtree
        but not of its parents.
        """
        stats = self.stats_for(operator)
        stats.pulls += 1
        perf_counter = time.perf_counter
        while True:
            started = perf_counter()
            try:
                row = next(inner)
            except StopIteration:
                stats.elapsed += perf_counter() - started
                return
            stats.elapsed += perf_counter() - started
            stats.rows_out += 1
            yield row


@contextmanager
def observed(ctx, metrics=None, tracer=None, profiler=None):
    """Install observers on an evaluation context, restore them on exit.

    ``ctx`` is an :class:`~repro.calculus.evaluator.EvalContext`; the
    metrics registry is propagated to ``ctx.instance`` and
    ``ctx.text_index`` (when present) so dereference and index-probe
    counters land in the same snapshot.
    """
    instance = ctx.instance
    text_index = getattr(ctx, "text_index", None)
    saved = (ctx.metrics, ctx.tracer, ctx.profiler,
             instance.metrics,
             text_index.metrics if text_index is not None else None)
    if metrics is not None:
        ctx.metrics = metrics
        instance.metrics = metrics
        if text_index is not None:
            text_index.metrics = metrics
    if tracer is not None:
        ctx.tracer = tracer
    if profiler is not None:
        ctx.profiler = profiler
    try:
        yield ctx
    finally:
        (ctx.metrics, ctx.tracer, ctx.profiler,
         instance.metrics, saved_index_metrics) = saved
        if text_index is not None:
            text_index.metrics = saved_index_metrics
