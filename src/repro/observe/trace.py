"""Span trees — hierarchical tracing of the query pipeline.

A :class:`Tracer` records a tree of named :class:`Span`\\ s via a
context-manager API::

    tracer = Tracer()
    with tracer.span("query", backend="algebra"):
        with tracer.span("parse"):
            ...

Spans carry attributes (annotated at open time or later via
:meth:`Span.annotate`) and wall-clock elapsed seconds.  Tests should
assert on span *structure* and attributes — the deterministic parts —
never on elapsed times.

:data:`NULL_TRACER` is a shared no-op tracer: its ``span`` context
manager hands out one reusable inert span, so code can be written
against the tracer API unconditionally at per-query (not per-row)
granularity.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Span:
    """One node of the trace tree."""

    __slots__ = ("name", "attributes", "children", "elapsed", "_started")

    def __init__(self, name: str, **attributes: object) -> None:
        self.name = name
        self.attributes: dict[str, object] = dict(attributes)
        self.children: list[Span] = []
        self.elapsed: float = 0.0
        self._started: float | None = None

    def annotate(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def child(self, name: str) -> "Span | None":
        """First direct child with the given name."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def path_names(self) -> list[str]:
        """Names of the direct children, in order."""
        return [span.name for span in self.children]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"elapsed={self.elapsed:.6f})")


class _NullSpan(Span):
    """An inert span: annotations are discarded, nothing is recorded."""

    def annotate(self, key: str, value: object) -> None:
        pass


class Tracer:
    """Collects span trees; one tracer may record several roots."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes: object):
        node = Span(name, **attributes)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        node._started = time.perf_counter()
        try:
            yield node
        finally:
            node.elapsed += time.perf_counter() - node._started
            node._started = None
            self._stack.pop()

    @property
    def last_root(self) -> Span | None:
        return self.roots[-1] if self.roots else None

    def reset(self) -> None:
        self.roots = []
        self._stack = []


class NullTracer(Tracer):
    """The disabled tracer: records nothing, allocates nothing per span."""

    def __init__(self) -> None:
        super().__init__()
        self._null = _NullSpan("null")

    @contextmanager
    def span(self, name: str, **attributes: object):
        yield self._null

    def reset(self) -> None:
        pass


#: Shared inert tracer — safe to use concurrently since it stores nothing.
NULL_TRACER = NullTracer()
