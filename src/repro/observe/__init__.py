"""Query-pipeline observability (tracing, metrics, EXPLAIN ANALYZE).

The paper's Section-5.4 performance story — path/attribute variables
compile into unions of variable-free plans whose cost is dominated by
operator fan-out — is made *observable* here, deterministically, without
wall clocks:

* :mod:`repro.observe.trace` — a span tree with a context-manager API,
  recording the pipeline stages (parse → translate → safety → inference
  → compile → execute);
* :mod:`repro.observe.metrics` — a counter/histogram registry with
  ``snapshot()``/``reset()``; every hot layer (object store, text index,
  calculus evaluator, algebra operators) increments named counters when
  a registry is installed, and does nothing otherwise;
* :mod:`repro.observe.profile` — per-operator row/elapsed statistics for
  algebra plans, plus the :func:`observed` context manager that installs
  (and cleanly removes) observers on an evaluation context;
* :mod:`repro.observe.report` — rendering: the annotated plan tree of
  ``EXPLAIN ANALYZE`` and structured snapshots.

The default state everywhere is *no observer installed* (``None``
attributes checked with one ``is not None`` test per event), so the
instrumented code paths cost nothing measurable when disabled.
"""

from repro.observe.metrics import Counter, Histogram, MetricsRegistry
from repro.observe.profile import OperatorStats, PlanProfiler, observed
from repro.observe.report import (
    ExplainReport,
    plan_tree,
    render_plan_tree,
    render_span,
)
from repro.observe.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "ExplainReport",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "OperatorStats",
    "PlanProfiler",
    "Span",
    "Tracer",
    "observed",
    "plan_tree",
    "render_plan_tree",
    "render_span",
]
