"""Named counters and histograms with snapshot/reset semantics.

The registry is the deterministic backbone of the observability layer:
instrumented subsystems (object store, text index, calculus evaluator,
algebra operators) increment *named counters* — ``oodb.derefs``,
``text.word_probes``, ``algebra.union_fanout`` — which tests can assert
on exactly, unlike wall-clock timings.

Instrumentation sites hold a ``metrics`` attribute that is ``None`` by
default and guard every event with one ``is not None`` check, so the
disabled path costs a single attribute test.

The registry is thread-safe: every recording and reading operation
happens under one lock, so counters incremented from concurrent
readers (the :mod:`repro.serve` execution pool) never lose updates —
``a += 1`` on a plain attribute is *not* atomic under the GIL, which
the serve-layer stress tests would surface as drifting totals.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observed values (count/total/min/max)."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A flat, thread-safe namespace of counters and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            found.value += amount

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name)
            return found

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name)
            found.observe(value)

    # -- reading -------------------------------------------------------------

    def get(self, name: str, default: int = 0) -> int:
        """Current value of a counter (``default`` when never touched)."""
        found = self._counters.get(name)
        return found.value if found is not None else default

    def snapshot(self) -> dict:
        """Structured, JSON-friendly copy of every metric."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())},
                "histograms": {
                    name: histogram.summary()
                    for name, histogram
                    in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})")
