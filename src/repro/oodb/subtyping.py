"""Subtyping and common-supertype computation (Sections 4.2 and 5.1).

The subtyping relation ``<=`` is the standard structural O₂ relation,
extended with the paper's two new rules:

* **tuple-into-union** — ``[ai: ti] <= (... + ai: ti + ...)``.  By
  transitivity with the usual tuple-width rule this yields

  ``[a1:t1,...,an:tn] <= [ai:ti] <= (a1:t1 + ... + an:tn)``

* **tuple-as-heterogeneous-list** —

  ``[a1:t1,...,an:tn] <= [(a1:t1 + ... + an:tn)]``

  which blurs the distinction between a tuple and the list of its
  one-field projections and powers the positional queries of Section 4.4.

The module also implements the *least common supertype* used by the query
type checker (Section 4.2), with the paper's two union rules:

1. a union type and a non-union type have no common supertype;
2. two union types have a common supertype iff they have no marker
   conflict; the least one is then the merged union.
"""

from __future__ import annotations

from repro.errors import SubtypingError
from repro.oodb.types import (
    ANY,
    AnyType,
    AtomicType,
    ClassType,
    ListType,
    SetType,
    TupleType,
    Type,
    UnionType,
)

# The class partial order is supplied by the schema.  To keep this module
# independent from ``schema.py`` (which imports it back), callers pass a
# ``class_leq`` callable: ``class_leq(c1, c2)`` is True when class ``c1``
# precedes (is a subclass of) ``c2``.

ClassOrder = "callable[[str, str], bool]"


def _no_classes(sub: str, sup: str) -> bool:
    """Default class order when no schema is in scope: names must match."""
    return sub == sup


def is_subtype(sub: Type, sup: Type, class_leq=_no_classes) -> bool:
    """Decide ``sub <= sup`` under the extended rules.

    ``class_leq`` gives the class hierarchy's partial order ``<`` on class
    names (reflexive closure is applied here).
    """
    if sub == sup:
        return True
    if isinstance(sup, AnyType):
        # ``any`` is the top of the *class* hierarchy: every class (and
        # nothing else) is below it.
        return isinstance(sub, (ClassType, AnyType))
    if isinstance(sub, AnyType):
        return False

    if isinstance(sub, ClassType) and isinstance(sup, ClassType):
        return sub.name == sup.name or class_leq(sub.name, sup.name)

    if isinstance(sub, AtomicType) or isinstance(sup, AtomicType):
        return sub == sup

    if isinstance(sub, SetType) and isinstance(sup, SetType):
        return is_subtype(sub.element, sup.element, class_leq)

    if isinstance(sub, ListType) and isinstance(sup, ListType):
        return is_subtype(sub.element, sup.element, class_leq)

    if isinstance(sub, TupleType) and isinstance(sup, TupleType):
        return _tuple_subtype(sub, sup, class_leq)

    if isinstance(sub, TupleType) and isinstance(sup, UnionType):
        # New rule 1: [ai: ti] <= (... + ai: ti' + ...), generalised by
        # transitivity: a tuple is below a union when at least one of its
        # attributes matches a branch of the union (the tuple can always be
        # narrowed to the one-field tuple first).
        return any(
            sup.has_marker(name)
            and is_subtype(field, sup.branch_type(name), class_leq)
            for name, field in sub.fields)

    if isinstance(sub, UnionType) and isinstance(sup, UnionType):
        # Every alternative of ``sub`` must be an alternative of ``sup``
        # with a smaller-or-equal payload.
        return all(
            sup.has_marker(marker)
            and is_subtype(branch, sup.branch_type(marker), class_leq)
            for marker, branch in sub.branches)

    if isinstance(sub, TupleType) and isinstance(sup, ListType):
        # New rule 2: the tuple viewed as a heterogeneous list.  Each field
        # ``ai: ti`` becomes the one-field tuple ``[ai: ti]`` which must sit
        # below the list's element type.
        return all(
            is_subtype(TupleType([(name, field)]), sup.element, class_leq)
            for name, field in sub.fields)

    return False


def _tuple_subtype(sub: TupleType, sup: TupleType, class_leq) -> bool:
    """O₂ tuple subtyping adapted to ordered tuples.

    ``sub`` may have extra attributes but must contain every attribute of
    ``sup`` **in the same relative order** (the paper's ``dom`` for tuple
    types appends extra attributes at the end of the required prefix; we
    take the slightly more permissive order-preserving-subsequence reading
    so that attribute projection is always well-defined).
    """
    sub_names = sub.attribute_names
    position = -1
    for name, sup_field in sup.fields:
        try:
            found = sub_names.index(name)
        except ValueError:
            return False
        if found < position:
            return False
        position = found
        if not is_subtype(sub.field_type(name), sup_field, class_leq):
            return False
    return True


# ---------------------------------------------------------------------------
# Least common supertype (Section 4.2)
# ---------------------------------------------------------------------------


def common_supertype(left: Type, right: Type, class_leq=_no_classes,
                     class_join=None) -> Type:
    """The least common supertype, or raise :class:`SubtypingError`.

    ``class_join(c1, c2)`` may be supplied by the schema to join two class
    names (returning a class name or ``None``); without it, distinct class
    names join at ``any``.
    """
    if is_subtype(left, right, class_leq):
        return right
    if is_subtype(right, left, class_leq):
        return left

    if isinstance(left, ClassType) and isinstance(right, ClassType):
        if class_join is not None:
            joined = class_join(left.name, right.name)
            if joined is not None:
                return ClassType(joined)
        return ANY

    if isinstance(left, ListType) and isinstance(right, ListType):
        return ListType(common_supertype(
            left.element, right.element, class_leq, class_join))

    if isinstance(left, SetType) and isinstance(right, SetType):
        return SetType(common_supertype(
            left.element, right.element, class_leq, class_join))

    if isinstance(left, TupleType) and isinstance(right, TupleType):
        return _tuple_join(left, right, class_leq, class_join)

    if isinstance(left, UnionType) and isinstance(right, UnionType):
        return merge_unions(left, right, class_leq, class_join)

    # Rule 1 of Section 4.2: no common supertype between a union type and a
    # non-union type (and, more generally, across constructors).
    raise SubtypingError(
        f"no common supertype between {left} and {right}")


def _tuple_join(left: TupleType, right: TupleType, class_leq,
                class_join) -> Type:
    """Join two tuple types on their shared attributes.

    The result keeps the attributes common to both (in ``left``'s order,
    which must be consistent with ``right``'s) with joined field types.
    An empty intersection means the tuples are unrelated.
    """
    shared: list[tuple[str, Type]] = []
    position = -1
    for name, left_field in left.fields:
        if not right.has_attribute(name):
            continue
        rank = right.position_of(name)
        if rank < position:
            raise SubtypingError(
                f"tuple attribute order conflict on {name!r} between "
                f"{left} and {right}")
        position = rank
        shared.append((name, common_supertype(
            left_field, right.field_type(name), class_leq, class_join)))
    if not shared:
        raise SubtypingError(
            f"no common supertype between {left} and {right} "
            "(no shared attribute)")
    return TupleType(shared)


def merge_unions(left: UnionType, right: UnionType, class_leq=_no_classes,
                 class_join=None) -> UnionType:
    """Merge two marked unions per Section 4.2, rule 2.

    The result carries every marker of both unions.  A *marker conflict* —
    the same marker with payload types that have no common supertype —
    raises :class:`SubtypingError`.  E.g. the least common supertype of
    ``(a:integer + b:char)`` and ``(b:char + c:string)`` is
    ``(a:integer + b:char + c:string)``.
    """
    branches: list[tuple[str, Type]] = []
    for marker, branch in left.branches:
        if right.has_marker(marker):
            try:
                joined = common_supertype(
                    branch, right.branch_type(marker), class_leq, class_join)
            except SubtypingError as exc:
                raise SubtypingError(
                    f"marker conflict on {marker!r}: {exc}") from exc
            branches.append((marker, joined))
        else:
            branches.append((marker, branch))
    for marker, branch in right.branches:
        if not left.has_marker(marker):
            branches.append((marker, branch))
    return UnionType(branches)


def union_all(types: "list[Type]", class_leq=_no_classes,
              class_join=None) -> Type:
    """Fold :func:`common_supertype` over a non-empty list of types."""
    if not types:
        raise SubtypingError("cannot join an empty list of types")
    result = types[0]
    for tp in types[1:]:
        result = common_supertype(result, tp, class_leq, class_join)
    return result
