"""Pretty-printers for schemas, constraints and values.

:func:`format_schema` regenerates the Figure-3 presentation of an O₂-style
schema: one ``class`` block per class with its ``public type`` and
``constraint:`` lines, then ``name`` lines for the persistence roots.  The
F3 experiment asserts that the schema compiled from the Figure-1 DTD prints
to the same class inventory as the paper's Figure 3.
"""

from __future__ import annotations

from repro.oodb.constraints import ConstraintSet
from repro.oodb.schema import Schema
from repro.oodb.types import (
    AnyType,
    AtomicType,
    ClassType,
    ListType,
    SetType,
    TupleType,
    Type,
    UnionType,
)
from repro.oodb.values import ListValue, Nil, Oid, SetValue, TupleValue


def format_type(tp: Type) -> str:
    """Figure-3 style rendering of a type."""
    if isinstance(tp, AtomicType):
        return tp.name
    if isinstance(tp, AnyType):
        return "any"
    if isinstance(tp, ClassType):
        return tp.name
    if isinstance(tp, ListType):
        return f"list ({format_type(tp.element)})"
    if isinstance(tp, SetType):
        return f"set ({format_type(tp.element)})"
    if isinstance(tp, TupleType):
        inner = ", ".join(
            f"{name}: {format_type(field)}" for name, field in tp.fields)
        return f"tuple ({inner})"
    if isinstance(tp, UnionType):
        inner = ", ".join(
            f"{marker}: {format_type(branch)}"
            for marker, branch in tp.branches)
        return f"union ({inner})"
    return str(tp)


def format_class(schema: Schema, class_name: str,
                 constraints: ConstraintSet | None = None) -> str:
    """One ``class`` block in the style of Figure 3."""
    parents = schema.hierarchy.direct_parents(class_name)
    structure = schema.structure(class_name)
    parts = [f"class {class_name}"]
    if parents:
        parts.append("inherit " + ", ".join(parents))
    rendered = format_type(structure)
    # A class that only inherits (e.g. `class Title inherit Text`) has the
    # parent's structure verbatim; Figure 3 omits the redundant type.
    redundant = bool(parents) and all(
        schema.structure(parent) == structure for parent in parents)
    if not redundant:
        parts.append(f"public type {rendered}")
    lines = [" ".join(parts)]
    if constraints is not None:
        class_constraints = constraints.for_class(class_name)
        if class_constraints:
            described = ", ".join(c.describe() for c in class_constraints)
            lines.append(f"    constraint: {described}")
    return "\n".join(lines)


def format_schema(schema: Schema,
                  constraints: ConstraintSet | None = None) -> str:
    """Render a whole schema as in Figure 3 (classes, then roots)."""
    blocks = [format_class(schema, class_name, constraints)
              for class_name in schema.class_names]
    for root_name, root_type in schema.roots.items():
        blocks.append(f"name {root_name}: {format_type(root_type)}")
    return "\n".join(blocks)


def format_value(value: object, indent: int = 0, max_string: int = 60) -> str:
    """Readable multi-line rendering of a value tree."""
    pad = "  " * indent
    if isinstance(value, Nil):
        return pad + "nil"
    if isinstance(value, Oid):
        return pad + repr(value)
    if isinstance(value, str):
        shown = value if len(value) <= max_string else (
            value[:max_string - 3] + "...")
        return pad + repr(shown)
    if isinstance(value, (int, float, bool)):
        return pad + repr(value)
    if isinstance(value, TupleValue):
        if not value.fields:
            return pad + "tuple()"
        lines = [pad + "tuple("]
        for name, field in value.fields:
            rendered = format_value(field, indent + 1, max_string).lstrip()
            lines.append("  " * (indent + 1) + f"{name}: {rendered}")
        lines.append(pad + ")")
        return "\n".join(lines)
    if isinstance(value, (ListValue, SetValue)):
        keyword = "list" if isinstance(value, ListValue) else "set"
        if not len(value):
            return pad + f"{keyword}()"
        lines = [pad + f"{keyword}("]
        for element in value:
            lines.append(format_value(element, indent + 1, max_string))
        lines.append(pad + ")")
        return "\n".join(lines)
    return pad + repr(value)
