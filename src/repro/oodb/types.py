"""Type constructors of the extended O₂ data model (Section 5.1).

The paper extends the O₂/IQL type system with two constructors:

* **ordered tuples** — ``[a1: t1, ..., an: tn]`` where the attribute order is
  meaningful, and
* **marked unions** — ``(a1: t1 + ... + an: tn)`` where the attribute names
  act as markers selecting an alternative.

Types over a set of classes ``C`` are built from:

1. atomic types ``integer``, ``string``, ``boolean``, ``float``;
2. class names in ``C`` and the top type ``any``;
3. list types ``[t]`` and set types ``{t}``;
4. ordered tuple types;
5. marked union types.

All type objects are immutable and hashable, so they can be used as
dictionary keys (the subtyping and inference machinery caches on them).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import TypeConstructionError


class Type:
    """Abstract base class of every type in the model."""

    __slots__ = ()

    def is_atomic(self) -> bool:
        return isinstance(self, AtomicType)

    def is_union(self) -> bool:
        return isinstance(self, UnionType)

    def __repr__(self) -> str:  # pragma: no cover - delegated to __str__
        return str(self)


class AtomicType(Type):
    """One of the four atomic types of Section 5.1.

    Instances are interned: ``AtomicType('integer') is INTEGER``.
    """

    __slots__ = ("name",)

    _NAMES = ("integer", "string", "boolean", "float")
    _interned: dict[str, "AtomicType"] = {}

    def __new__(cls, name: str) -> "AtomicType":
        if name not in cls._NAMES:
            raise TypeConstructionError(f"unknown atomic type: {name!r}")
        cached = cls._interned.get(name)
        if cached is None:
            cached = super().__new__(cls)
            object.__setattr__(cached, "name", name)
            cls._interned[name] = cached
        return cached

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("AtomicType is immutable")

    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, AtomicType) and other.name == self.name)

    def __hash__(self) -> int:
        return hash(("atomic", self.name))

    def __str__(self) -> str:
        return self.name


INTEGER = AtomicType("integer")
STRING = AtomicType("string")
BOOLEAN = AtomicType("boolean")
FLOAT = AtomicType("float")

ATOMIC_TYPES: tuple[AtomicType, ...] = (INTEGER, STRING, BOOLEAN, FLOAT)


class AnyType(Type):
    """``any`` — the top of the class hierarchy (Section 5.1, rule 2)."""

    __slots__ = ()
    _instance: "AnyType | None" = None

    def __new__(cls) -> "AnyType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyType)

    def __hash__(self) -> int:
        return hash("any")

    def __str__(self) -> str:
        return "any"


ANY = AnyType()


class ClassType(Type):
    """A reference to a named class.

    A class *name* is a type (Section 5.1 rule 2); its interpretation is the
    set of oids assigned to the class plus ``nil``.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not name[0].isalpha():
            raise TypeConstructionError(f"invalid class name: {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("ClassType is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("class", self.name))

    def __str__(self) -> str:
        return self.name


class ListType(Type):
    """``[t]`` — homogeneous ordered collection."""

    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        _require_type(element, "list element")
        object.__setattr__(self, "element", element)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("ListType is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ListType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("list", self.element))

    def __str__(self) -> str:
        return f"list({self.element})"


class SetType(Type):
    """``{t}`` — homogeneous unordered collection."""

    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        _require_type(element, "set element")
        object.__setattr__(self, "element", element)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("SetType is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("set", self.element))

    def __str__(self) -> str:
        return f"set({self.element})"


class _Fields:
    """Shared machinery for the two named-field constructors."""

    __slots__ = ()

    @staticmethod
    def check(fields: Iterable[tuple[str, Type]],
              kind: str) -> tuple[tuple[str, Type], ...]:
        frozen = tuple(fields)
        seen: set[str] = set()
        for name, field_type in frozen:
            if not isinstance(name, str) or not name:
                raise TypeConstructionError(
                    f"{kind} attribute name must be a non-empty string, "
                    f"got {name!r}")
            if name in seen:
                raise TypeConstructionError(
                    f"duplicate attribute {name!r} in {kind} type")
            seen.add(name)
            _require_type(field_type, f"{kind} attribute {name!r}")
        return frozen


class TupleType(Type):
    """``[a1: t1, ..., an: tn]`` — an **ordered** tuple type.

    Attribute order is part of the type identity: two tuple types with the
    same attribute/type pairs in different orders are *different* types
    (Section 5.1: "the ordering of tuple attributes is meaningful").
    """

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Iterable[tuple[str, Type]]) -> None:
        frozen = _Fields.check(fields, "tuple")
        object.__setattr__(self, "fields", frozen)
        object.__setattr__(
            self, "_index", {name: tp for name, tp in frozen})

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("TupleType is immutable")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def field_type(self, name: str) -> Type:
        """Return the type of attribute ``name``.

        Raises :class:`KeyError` when the attribute is absent.
        """
        return self._index[name]

    def has_attribute(self, name: str) -> bool:
        return name in self._index

    def position_of(self, name: str) -> int:
        """0-based rank of attribute ``name`` (the heterogeneous-list view)."""
        for i, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return i
        raise KeyError(name)

    def __iter__(self) -> Iterator[tuple[str, Type]]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(("tuple", self.fields))

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {t}" for n, t in self.fields)
        return f"tuple({inner})"


class UnionType(Type):
    """``(a1: t1 + ... + an: tn)`` — a **marked** union type.

    A value of this type is a one-field tuple ``[ai: v]`` where ``v`` has
    type ``ti`` — the attribute name *marks* the chosen alternative.
    Branch order is normalised away for equality: unions are compared as
    attribute→type mappings (branch order carries no meaning in the paper's
    semantics, where ``dom`` is a plain set union over alternatives).
    """

    __slots__ = ("branches", "_index")

    def __init__(self, branches: Iterable[tuple[str, Type]]) -> None:
        frozen = _Fields.check(branches, "union")
        if not frozen:
            raise TypeConstructionError("union type needs at least one branch")
        object.__setattr__(self, "branches", frozen)
        object.__setattr__(
            self, "_index", {name: tp for name, tp in frozen})

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("UnionType is immutable")

    @property
    def markers(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.branches)

    def branch_type(self, marker: str) -> Type:
        """Return the alternative type selected by ``marker``."""
        return self._index[marker]

    def has_marker(self, marker: str) -> bool:
        return marker in self._index

    def __iter__(self) -> Iterator[tuple[str, Type]]:
        return iter(self.branches)

    def __len__(self) -> int:
        return len(self.branches)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, UnionType)
                and dict(other.branches) == dict(self.branches))

    def __hash__(self) -> int:
        return hash(("union", frozenset(self.branches)))

    def __str__(self) -> str:
        inner = " + ".join(f"{n}: {t}" for n, t in self.branches)
        return f"union({inner})"


def _require_type(value: object, context: str) -> None:
    if not isinstance(value, Type):
        raise TypeConstructionError(
            f"{context} must be a Type, got {type(value).__name__}")


# ---------------------------------------------------------------------------
# Convenience constructors — these read close to the paper's notation.
# ---------------------------------------------------------------------------


def tuple_of(*fields: tuple[str, Type], **kw_fields: Type) -> TupleType:
    """Build an ordered tuple type.

    ``tuple_of(('title', STRING), ('bodies', list_of(c('Body'))))`` or, when
    order agrees with keyword order (Python preserves it),
    ``tuple_of(title=STRING)``.
    """
    parts: list[tuple[str, Type]] = list(fields)
    parts.extend(kw_fields.items())
    return TupleType(parts)


def union_of(*branches: tuple[str, Type], **kw_branches: Type) -> UnionType:
    """Build a marked union type from ``(marker, type)`` pairs."""
    parts: list[tuple[str, Type]] = list(branches)
    parts.extend(kw_branches.items())
    return UnionType(parts)


def list_of(element: Type) -> ListType:
    """Shorthand for :class:`ListType` — ``list_of(c('Body'))``."""
    return ListType(element)


def set_of(element: Type) -> SetType:
    """Shorthand for :class:`SetType`."""
    return SetType(element)


def c(name: str) -> ClassType:
    """Shorthand for :class:`ClassType` — ``c('Article')``."""
    return ClassType(name)


def iter_subterms(tp: Type) -> Iterator[Type]:
    """Yield ``tp`` and every type syntactically nested inside it."""
    yield tp
    if isinstance(tp, (ListType, SetType)):
        yield from iter_subterms(tp.element)
    elif isinstance(tp, TupleType):
        for _, field in tp.fields:
            yield from iter_subterms(field)
    elif isinstance(tp, UnionType):
        for _, branch in tp.branches:
            yield from iter_subterms(branch)


def referenced_classes(tp: Type) -> set[str]:
    """The names of every class mentioned anywhere inside ``tp``."""
    return {sub.name for sub in iter_subterms(tp)
            if isinstance(sub, ClassType)}
