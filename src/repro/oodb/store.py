"""A small object store backing :class:`~repro.oodb.instance.Instance`.

The paper's documents live inside the O₂ OODBMS; our substitute is an
in-process store that provides the pieces the experiments rely on:

* **snapshots** — serialize a whole instance to a single file and load it
  back (used to measure the Section-3 storage overhead and to persist the
  corpus between benchmark runs);
* **secondary indexes** — hash indexes from attribute values to oids,
  registered per class/attribute, kept up to date on (re)binding;
* **statistics** — object counts and encoded sizes per class.

The snapshot format is::

    REPRO-STORE\\n
    <varint root-count> (name, value)*
    <varint class-count> (class name, varint member-count,
                          (varint oid-number, value)*)*

Schema is *not* serialized — snapshots are reloaded against a schema the
caller supplies, and membership is re-checked on load.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import StoreError
from repro.oodb.instance import Instance
from repro.oodb.schema import Schema
from repro.oodb.serialize import (
    _Reader,
    _decode,
    _encode_into,
    _write_string,
    _write_varint,
)
from repro.oodb.values import Oid, TupleValue

_MAGIC = b"REPRO-STORE\n"


class HashIndex:
    """A secondary index: value of ``class.attribute`` → oids."""

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute
        self._entries: dict[object, list[Oid]] = {}

    def add(self, key: object, oid: Oid) -> None:
        self._entries.setdefault(key, []).append(oid)

    def remove(self, key: object, oid: Oid) -> None:
        bucket = self._entries.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(oid)
        except ValueError:
            pass
        if not bucket:
            del self._entries[key]

    def lookup(self, key: object) -> tuple[Oid, ...]:
        return tuple(self._entries.get(key, ()))

    def keys(self) -> Iterator[object]:
        return iter(self._entries)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


class ObjectStore:
    """Wraps an :class:`Instance` with indexing and persistence."""

    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        #: optional repro.observe MetricsRegistry; ``None`` = disabled
        self.metrics = None

    # -- index management ---------------------------------------------------

    def create_index(self, class_name: str, attribute: str) -> HashIndex:
        """Build (or return) a hash index on ``class_name.attribute``.

        The indexed key is the value of the attribute in the object's tuple
        value; objects whose value is not a tuple or lacks the attribute
        are skipped.
        """
        key = (class_name, attribute)
        existing = self._indexes.get(key)
        if existing is not None:
            return existing
        index = HashIndex(class_name, attribute)
        for oid in self.instance.extent(class_name):
            extracted = self._index_key(oid, attribute)
            if extracted is not _MISSING:
                index.add(extracted, oid)
        self._indexes[key] = index
        return index

    def index_for(self, class_name: str, attribute: str) -> HashIndex | None:
        return self._indexes.get((class_name, attribute))

    def _index_key(self, oid: Oid, attribute: str) -> object:
        value = self.instance.deref(oid)
        if isinstance(value, TupleValue) and value.has_attribute(attribute):
            key = value.get(attribute)
            try:
                hash(key)
            except TypeError:
                return _MISSING
            return key
        return _MISSING

    def update_object(self, oid: Oid, value: object) -> None:
        """Rebind an object's value, keeping indexes consistent."""
        for (class_name, attribute), index in self._indexes.items():
            if not self.instance.oid_in_class(oid, class_name):
                continue
            old_key = self._index_key(oid, attribute)
            if old_key is not _MISSING:
                index.remove(old_key, oid)
        self.instance.set_value(oid, value)
        for (class_name, attribute), index in self._indexes.items():
            if not self.instance.oid_in_class(oid, class_name):
                continue
            new_key = self._index_key(oid, attribute)
            if new_key is not _MISSING:
                index.add(new_key, oid)

    def lookup(self, class_name: str, attribute: str,
               key: object) -> tuple[Oid, ...]:
        """Index lookup; raises :class:`StoreError` when no index exists."""
        index = self._indexes.get((class_name, attribute))
        if index is None:
            raise StoreError(
                f"no index on {class_name}.{attribute}")
        hits = index.lookup(key)
        if self.metrics is not None:
            self.metrics.inc("store.index_probes")
            self.metrics.inc("store.index_hits", len(hits))
        return hits

    # -- statistics -----------------------------------------------------------

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-class ``{'objects': n, 'bytes': encoded size}``."""
        from repro.oodb.serialize import encoded_size
        report: dict[str, dict[str, int]] = {}
        for class_name in self.instance.schema.class_names:
            members = self.instance.disjoint_extent(class_name)
            if not members:
                continue
            total = sum(
                encoded_size(self.instance.deref(oid)) for oid in members)
            report[class_name] = {"objects": len(members), "bytes": total}
        return report

    def total_bytes(self) -> int:
        """Encoded size of every object value plus every root value."""
        from repro.oodb.serialize import encoded_size
        total = sum(
            encoded_size(self.instance.deref(oid))
            for oid in self.instance.all_oids())
        total += sum(
            encoded_size(self.instance.root(name))
            for name in self.instance.root_names)
        return total

    # -- snapshots ------------------------------------------------------------

    def snapshot_bytes(self) -> bytes:
        """Serialize roots and all objects to a bytes snapshot."""
        out = bytearray(_MAGIC)
        roots = self.instance.root_names
        _write_varint(out, len(roots))
        for name in roots:
            _write_string(out, name)
            _encode_into(out, self.instance.root(name))
        class_blocks = [
            (class_name, self.instance.disjoint_extent(class_name))
            for class_name in self.instance.schema.class_names
            if self.instance.disjoint_extent(class_name)]
        _write_varint(out, len(class_blocks))
        for class_name, members in class_blocks:
            _write_string(out, class_name)
            _write_varint(out, len(members))
            for oid in members:
                _write_varint(out, oid.number)
                _encode_into(out, self.instance.deref(oid))
        return bytes(out)

    def save(self, path: str | os.PathLike) -> int:
        """Write a snapshot file; returns the byte count."""
        data = self.snapshot_bytes()
        with open(path, "wb") as handle:
            handle.write(data)
        return len(data)

    @classmethod
    def load_bytes(cls, schema: Schema, data: bytes,
                   on_missing_root=None) -> "ObjectStore":
        """Rebuild a store from :meth:`snapshot_bytes` output.

        ``on_missing_root(name, value, instance)`` is called for roots
        present in the snapshot but not declared in ``schema`` (e.g. O₂
        *names* registered at runtime); it must declare the root or
        raise.  ``instance`` is the fully decoded instance, so the
        callback can resolve oids while inferring the root's type.
        """
        if not data.startswith(_MAGIC):
            raise StoreError("not a repro store snapshot")
        reader = _Reader(data)
        reader.pos = len(_MAGIC)
        instance = Instance(schema)
        root_count = reader.varint()
        pending_roots = []
        for _ in range(root_count):
            name = reader.string()
            pending_roots.append((name, _decode(reader)))
        class_count = reader.varint()
        max_number = 0
        for _ in range(class_count):
            class_name = reader.string()
            member_count = reader.varint()
            for _ in range(member_count):
                number = reader.varint()
                value = _decode(reader)
                oid = Oid(number, class_name)
                instance._extent[class_name].append(oid)
                instance._values[number] = value
                max_number = max(max_number, number)
        instance._next_oid = max_number + 1
        for name, value in pending_roots:
            if not schema.has_root(name) and on_missing_root is not None:
                on_missing_root(name, value, instance)
            instance.set_root(name, value)
        instance.check()
        return cls(instance)

    @classmethod
    def load(cls, schema: Schema, path: str | os.PathLike,
             on_missing_root=None) -> "ObjectStore":
        with open(path, "rb") as handle:
            return cls.load_bytes(schema, handle.read(), on_missing_root)


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
