"""The extended O₂ data model substrate (Sections 3 and 5.1).

Public surface: the type constructors, value classes, schema/instance
machinery, constraints, and the object store.
"""

from repro.oodb.constraints import (
    Constraint,
    ConstraintSet,
    Disjunction,
    NotEmpty,
    NotNil,
    OneOf,
)
from repro.oodb.display import format_schema, format_type, format_value
from repro.oodb.instance import Instance, populate
from repro.oodb.schema import (
    ClassHierarchy,
    MethodSignature,
    Schema,
    schema_from_classes,
)
from repro.oodb.serialize import decode_value, encode_value, encoded_size
from repro.oodb.store import HashIndex, ObjectStore
from repro.oodb.subtyping import (
    common_supertype,
    is_subtype,
    merge_unions,
    union_all,
)
from repro.oodb.typecheck import infer_value_type, value_in_type
from repro.oodb.types import (
    ANY,
    AnyType,
    AtomicType,
    BOOLEAN,
    ClassType,
    FLOAT,
    INTEGER,
    ListType,
    STRING,
    SetType,
    TupleType,
    Type,
    UnionType,
    c,
    list_of,
    set_of,
    tuple_of,
    union_of,
)
from repro.oodb.values import (
    ListValue,
    NIL,
    Nil,
    Oid,
    SetValue,
    TupleValue,
    UnionValue,
    equivalent,
    is_value,
)

__all__ = [
    "ANY", "AnyType", "AtomicType", "BOOLEAN", "ClassHierarchy", "ClassType",
    "Constraint", "ConstraintSet", "Disjunction", "FLOAT", "HashIndex",
    "INTEGER", "Instance", "ListType", "ListValue", "MethodSignature", "NIL",
    "Nil", "NotEmpty", "NotNil", "ObjectStore", "Oid", "OneOf", "STRING",
    "Schema", "SetType", "SetValue", "TupleType", "TupleValue", "Type",
    "UnionType", "UnionValue", "c", "common_supertype", "decode_value",
    "encode_value", "encoded_size", "equivalent", "format_schema",
    "format_type", "format_value", "infer_value_type", "is_subtype",
    "is_value", "list_of", "merge_unions", "populate", "schema_from_classes",
    "set_of", "tuple_of", "union_all", "union_of", "value_in_type",
]
