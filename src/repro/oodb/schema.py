"""Class hierarchies, schemas and their well-formedness (Section 5.1).

A *class hierarchy* is a triple ``(C, sigma, <)``: a finite set of class
names, a mapping from class names to types, and a partial order on class
names (the inheritance order, written ``c < c'`` when ``c`` inherits from
``c'``).  A hierarchy is *well-formed* when ``c < c'`` implies
``sigma(c) <= sigma(c')``.

A *schema* is ``(C, sigma, <, M, G)``: a well-formed hierarchy plus a set of
method signatures ``M`` and named persistence roots ``G`` with their types.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.oodb import subtyping
from repro.oodb.types import (
    ClassType,
    ListType,
    SetType,
    TupleType,
    Type,
    UnionType,
    referenced_classes,
)


class MethodSignature:
    """A method signature ``name: c x t1 x ... x tn -> t``.

    Methods are carried "for the sake of completeness" (Section 5.1); the
    calculus treats them as uninterpreted function symbols whose semantics
    is supplied by the instance.
    """

    __slots__ = ("name", "receiver", "argument_types", "result_type")

    def __init__(self, name: str, receiver: str,
                 argument_types: Iterable[Type], result_type: Type) -> None:
        self.name = name
        self.receiver = receiver
        self.argument_types = tuple(argument_types)
        self.result_type = result_type

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, MethodSignature)
                and (other.name, other.receiver, other.argument_types,
                     other.result_type)
                == (self.name, self.receiver, self.argument_types,
                    self.result_type))

    def __hash__(self) -> int:
        return hash((self.name, self.receiver, self.argument_types,
                     self.result_type))

    def __repr__(self) -> str:
        args = ", ".join(str(t) for t in self.argument_types)
        return (f"method {self.name}({args}) in class {self.receiver}: "
                f"{self.result_type}")


class ClassHierarchy:
    """The triple ``(C, sigma, <)`` with its derived machinery."""

    def __init__(self, sigma: Mapping[str, Type],
                 parents: Mapping[str, Iterable[str]] | None = None) -> None:
        """``sigma`` maps class names to structural types; ``parents`` maps
        each class to the classes it *directly* inherits from."""
        self._sigma: dict[str, Type] = dict(sigma)
        self._parents: dict[str, tuple[str, ...]] = {
            name: () for name in self._sigma}
        for child, direct in (parents or {}).items():
            if child not in self._sigma:
                raise SchemaError(f"unknown class in hierarchy: {child!r}")
            direct_tuple = tuple(direct)
            for parent in direct_tuple:
                if parent not in self._sigma:
                    raise SchemaError(
                        f"class {child!r} inherits from unknown class "
                        f"{parent!r}")
            self._parents[child] = direct_tuple
        self._ancestors: dict[str, frozenset[str]] = {}
        self._compute_ancestors()

    # -- order ------------------------------------------------------------

    def _compute_ancestors(self) -> None:
        visiting: set[str] = set()

        def ancestors_of(name: str) -> frozenset[str]:
            cached = self._ancestors.get(name)
            if cached is not None:
                return cached
            if name in visiting:
                raise SchemaError(
                    f"inheritance cycle through class {name!r}")
            visiting.add(name)
            acc: set[str] = set()
            for parent in self._parents[name]:
                acc.add(parent)
                acc |= ancestors_of(parent)
            visiting.discard(name)
            result = frozenset(acc)
            self._ancestors[name] = result
            return result

        for name in self._sigma:
            ancestors_of(name)

    def precedes(self, sub: str, sup: str) -> bool:
        """``sub < sup`` — ``sub`` inherits (directly or not) from ``sup``.

        Reflexive: every class precedes itself.
        """
        if sub == sup:
            return sub in self._sigma
        return sup in self._ancestors.get(sub, frozenset())

    def join_classes(self, left: str, right: str) -> str | None:
        """A least common ancestor class of ``left`` and ``right``.

        Returns ``None`` when the only common supertype is ``any``.  When
        several incomparable common ancestors exist, the one with the
        largest ancestor set (most specific) is chosen deterministically.
        """
        common = ((self._ancestors[left] | {left})
                  & (self._ancestors[right] | {right}))
        if not common:
            return None
        minimal = [name for name in common
                   if not any(other != name and self.precedes(other, name)
                              for other in common)]
        # Any minimal element is a least-ish ancestor; pick deterministically.
        return sorted(minimal)[0] if minimal else None

    # -- access -----------------------------------------------------------

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._sigma)

    def has_class(self, name: str) -> bool:
        return name in self._sigma

    def structure(self, name: str) -> Type:
        """``sigma(name)`` — the structural type of the class."""
        try:
            return self._sigma[name]
        except KeyError:
            raise SchemaError(f"unknown class: {name!r}") from None

    def direct_parents(self, name: str) -> tuple[str, ...]:
        return self._parents[name]

    def ancestors(self, name: str) -> frozenset[str]:
        return self._ancestors[name]

    def subclasses(self, name: str) -> tuple[str, ...]:
        """Every class ``c`` with ``c < name`` (including ``name``)."""
        return tuple(c for c in self._sigma if self.precedes(c, name))

    def __iter__(self) -> Iterator[str]:
        return iter(self._sigma)

    def __len__(self) -> int:
        return len(self._sigma)

    # -- well-formedness ----------------------------------------------------

    def check_well_formed(self) -> None:
        """Raise :class:`SchemaError` unless the hierarchy is well-formed.

        Checks that (i) every class referenced inside a structural type is
        declared, and (ii) ``c < c'`` implies ``sigma(c) <= sigma(c')``.
        """
        for name, structure in self._sigma.items():
            for referenced in referenced_classes(structure):
                if referenced not in self._sigma:
                    raise SchemaError(
                        f"class {name!r} references undeclared class "
                        f"{referenced!r}")
        for name in self._sigma:
            for parent in self._parents[name]:
                if not subtyping.is_subtype(
                        self._sigma[name], self._sigma[parent],
                        self.precedes):
                    raise SchemaError(
                        f"class {name!r} inherits from {parent!r} but "
                        f"sigma({name}) = {self._sigma[name]} is not a "
                        f"subtype of sigma({parent}) = "
                        f"{self._sigma[parent]}")

    # -- subtyping with this hierarchy's order ------------------------------

    def is_subtype(self, sub: Type, sup: Type) -> bool:
        return subtyping.is_subtype(sub, sup, self.precedes)

    def common_supertype(self, left: Type, right: Type) -> Type:
        return subtyping.common_supertype(
            left, right, self.precedes, self.join_classes)


class Schema:
    """The 5-tuple ``(C, sigma, <, M, G)`` of Section 5.1."""

    def __init__(self, hierarchy: ClassHierarchy,
                 methods: Iterable[MethodSignature] = (),
                 roots: Mapping[str, Type] | None = None,
                 check: bool = True) -> None:
        self.hierarchy = hierarchy
        self.methods = tuple(methods)
        self.roots: dict[str, Type] = dict(roots or {})
        for root_name, root_type in self.roots.items():
            for referenced in referenced_classes(root_type):
                if not hierarchy.has_class(referenced):
                    raise SchemaError(
                        f"root {root_name!r} references undeclared class "
                        f"{referenced!r}")
        if check:
            hierarchy.check_well_formed()

    # -- convenience accessors ---------------------------------------------

    @property
    def class_names(self) -> tuple[str, ...]:
        return self.hierarchy.class_names

    def structure(self, class_name: str) -> Type:
        return self.hierarchy.structure(class_name)

    def root_type(self, root_name: str) -> Type:
        try:
            return self.roots[root_name]
        except KeyError:
            raise SchemaError(f"unknown root: {root_name!r}") from None

    def has_root(self, root_name: str) -> bool:
        return root_name in self.roots

    def method(self, name: str, receiver: str) -> MethodSignature:
        for signature in self.methods:
            if (signature.name == name
                    and self.hierarchy.precedes(receiver,
                                                signature.receiver)):
                return signature
        raise SchemaError(
            f"no method {name!r} for receiver class {receiver!r}")

    def is_subtype(self, sub: Type, sup: Type) -> bool:
        return self.hierarchy.is_subtype(sub, sup)

    def common_supertype(self, left: Type, right: Type) -> Type:
        return self.hierarchy.common_supertype(left, right)

    # -- schema navigation ---------------------------------------------------

    def attribute_carriers(self, attribute: str) -> list[Type]:
        """Every tuple/union type in the schema that carries ``attribute``.

        Used by the algebraizer to find candidate valuations of attribute
        variables (Section 5.4).
        """
        carriers: list[Type] = []
        seen: set[Type] = set()
        for class_name in self.hierarchy.class_names:
            for sub in _iter_schema_types(self.structure(class_name)):
                if sub in seen:
                    continue
                seen.add(sub)
                if isinstance(sub, TupleType) and sub.has_attribute(attribute):
                    carriers.append(sub)
                elif isinstance(sub, UnionType) and sub.has_marker(attribute):
                    carriers.append(sub)
        for root_type in self.roots.values():
            for sub in _iter_schema_types(root_type):
                if sub in seen:
                    continue
                seen.add(sub)
                if isinstance(sub, TupleType) and sub.has_attribute(attribute):
                    carriers.append(sub)
                elif isinstance(sub, UnionType) and sub.has_marker(attribute):
                    carriers.append(sub)
        return carriers


def _iter_schema_types(tp: Type) -> Iterator[Type]:
    yield tp
    if isinstance(tp, (ListType, SetType)):
        yield from _iter_schema_types(tp.element)
    elif isinstance(tp, TupleType):
        for _, field in tp.fields:
            yield from _iter_schema_types(field)
    elif isinstance(tp, UnionType):
        for _, branch in tp.branches:
            yield from _iter_schema_types(branch)


def schema_from_classes(classes: Mapping[str, Type],
                        parents: Mapping[str, Iterable[str]] | None = None,
                        roots: Mapping[str, Type] | None = None,
                        methods: Iterable[MethodSignature] = ()) -> Schema:
    """One-call construction of a checked schema."""
    return Schema(ClassHierarchy(classes, parents), methods, roots)


def resolve_class_structure(schema: Schema, tp: Type) -> Type:
    """Unfold ``tp`` one level when it is a class reference.

    ``ClassType('Article')`` resolves to ``sigma(Article)``; any other type
    is returned unchanged.  Navigation uses this when crossing the object
    boundary (dereference).
    """
    if isinstance(tp, ClassType):
        return schema.structure(tp.name)
    return tp
