"""Values of the extended O₂ data model (Section 5.1).

A *value* over a set of oids ``O`` is:

* ``nil`` (the undefined value),
* an atomic value (int, str, bool, float),
* an oid,
* an ordered tuple ``[a1: v1, ..., an: vn]``,
* a set ``{v1, ..., vn}``,
* a list ``[v1, ..., vn]``.

Marked-union values are one-field tuples ``[ai: v]``; a dedicated
:class:`UnionValue` alias constructor is provided for readability but it
*is* a :class:`TupleValue` — exactly the paper's identification.

Ordered tuples compare order-sensitively: ``[a:1, b:2] != [b:2, a:1]``
(Section 5.1).  The equivalence ``[a1:v1,...,an:vn] ≡ [[a1:v1],...,[an:vn]]``
(tuple as heterogeneous list) is *not* folded into ``==``; it is exposed as
:func:`equivalent` and :meth:`TupleValue.as_heterogeneous_list`, which is
what the evaluator uses for positional access.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ValueError_

#: Python types accepted as atomic database values.
ATOM_PYTYPES = (int, str, bool, float)


class Nil:
    """The singleton undefined value ``nil``."""

    _instance: "Nil | None" = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Nil)

    def __hash__(self) -> int:
        return hash("nil")

    def __repr__(self) -> str:
        return "nil"


NIL = Nil()


class Oid:
    """An object identifier.

    Oids are pure identities: two oids are equal iff they are the same
    allocation.  The ``number`` is assigned by the instance's allocator and
    the ``class_name`` records the (most specific) class the oid was
    allocated in — this is what the *restricted* path semantics needs to
    forbid two dereferences through the same class.
    """

    __slots__ = ("number", "class_name")

    def __init__(self, number: int, class_name: str) -> None:
        self.number = number
        self.class_name = class_name

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Oid) and other.number == self.number
                and other.class_name == self.class_name)

    def __hash__(self) -> int:
        return hash(("oid", self.number))

    def __repr__(self) -> str:
        return f"o{self.number}:{self.class_name}"


class TupleValue:
    """An **ordered** tuple value ``[a1: v1, ..., an: vn]``.

    Attribute order is significant for equality.  Duplicate attribute names
    are rejected.
    """

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Iterable[tuple[str, object]]) -> None:
        frozen = tuple(fields)
        index: dict[str, object] = {}
        for name, value in frozen:
            if not isinstance(name, str) or not name:
                raise ValueError_(
                    f"tuple attribute name must be a non-empty string, "
                    f"got {name!r}")
            if name in index:
                raise ValueError_(f"duplicate tuple attribute {name!r}")
            index[name] = value
        self.fields = frozen
        self._index = index

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def get(self, name: str) -> object:
        """Value of attribute ``name``; raises ``KeyError`` when absent."""
        return self._index[name]

    def has_attribute(self, name: str) -> bool:
        return name in self._index

    def position_of(self, name: str) -> int:
        for i, (field_name, _) in enumerate(self.fields):
            if field_name == name:
                return i
        raise KeyError(name)

    def replace(self, name: str, value: object) -> "TupleValue":
        """A copy with attribute ``name`` rebound to ``value``."""
        if name not in self._index:
            raise KeyError(name)
        return TupleValue(
            (n, value if n == name else v) for n, v in self.fields)

    def as_heterogeneous_list(self) -> "ListValue":
        """The paper's tuple-as-list view: ``[[a1:v1], ..., [an:vn]]``.

        Each element is a one-field (marked) tuple, so positional access
        ``t[i]`` yields the i-th field *with* its marker — exactly what
        query (†) of Section 5.3 matches on.
        """
        return ListValue(
            TupleValue([(name, value)]) for name, value in self.fields)

    @property
    def is_marked(self) -> bool:
        """True when this is a one-field tuple, i.e. a marked-union value."""
        return len(self.fields) == 1

    @property
    def marker(self) -> str:
        """The marker of a one-field tuple (union value)."""
        if not self.is_marked:
            raise ValueError_(
                f"value {self!r} has {len(self.fields)} fields, not 1")
        return self.fields[0][0]

    @property
    def marked_value(self) -> object:
        """The payload of a one-field tuple (union value)."""
        if not self.is_marked:
            raise ValueError_(
                f"value {self!r} has {len(self.fields)} fields, not 1")
        return self.fields[0][1]

    def __iter__(self) -> Iterator[tuple[str, object]]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleValue) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(("tuplev", self.fields))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}: {v!r}" for n, v in self.fields)
        return f"[{inner}]"


def UnionValue(marker: str, value: object) -> TupleValue:
    """A marked-union value — by definition the one-field tuple ``[m: v]``."""
    return TupleValue([(marker, value)])


class ListValue:
    """An ordered, indexable collection value."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[object] = ()) -> None:
        self.items = tuple(items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ListValue(self.items[index])
        return self.items[index]

    def __iter__(self) -> Iterator[object]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ListValue) and other.items == self.items

    def __hash__(self) -> int:
        return hash(("listv", self.items))

    def __add__(self, other: "ListValue") -> "ListValue":
        if not isinstance(other, ListValue):
            return NotImplemented
        return ListValue(self.items + other.items)

    def __repr__(self) -> str:
        return "list(" + ", ".join(repr(v) for v in self.items) + ")"


class SetValue:
    """An unordered collection value with set semantics.

    Iteration order is deterministic (insertion order of the
    de-duplicated elements) so that query results are reproducible.
    All model values are hashable and deduplicate in O(1); a raw host
    value that is not (a query head bound to e.g. a plain list) falls
    back to an equality scan instead of raising.
    """

    __slots__ = ("items",)

    def __init__(self, items: Iterable[object] = ()) -> None:
        seen: dict[object, None] = {}
        unhashable: list = []
        ordered: list = []
        for item in items:
            try:
                if item in seen:
                    continue
                seen[item] = None
            except TypeError:
                if any(item == prior for prior in unhashable):
                    continue
                unhashable.append(item)
            ordered.append(item)
        self.items = tuple(ordered)

    def __contains__(self, value: object) -> bool:
        return value in self.items

    def __iter__(self) -> Iterator[object]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SetValue)
                and frozenset(other.items) == frozenset(self.items))

    def __hash__(self) -> int:
        return hash(("setv", frozenset(self.items)))

    def union(self, other: "SetValue") -> "SetValue":
        return SetValue(self.items + other.items)

    def intersection(self, other: "SetValue") -> "SetValue":
        return SetValue(v for v in self.items if v in other)

    def difference(self, other: "SetValue") -> "SetValue":
        return SetValue(v for v in self.items if v not in other)

    def issubset(self, other: "SetValue") -> bool:
        return all(v in other for v in self.items)

    def __repr__(self) -> str:
        return "set(" + ", ".join(repr(v) for v in self.items) + ")"


#: Union of every model value class, for isinstance checks.
MODEL_VALUE_TYPES = (Nil, Oid, TupleValue, ListValue, SetValue) + ATOM_PYTYPES


def is_value(candidate: object) -> bool:
    """True when ``candidate`` is a well-formed model value (recursively)."""
    if isinstance(candidate, (Nil, Oid)):
        return True
    if isinstance(candidate, bool):
        return True
    if isinstance(candidate, ATOM_PYTYPES):
        return True
    if isinstance(candidate, TupleValue):
        return all(is_value(v) for _, v in candidate.fields)
    if isinstance(candidate, (ListValue, SetValue)):
        return all(is_value(v) for v in candidate)
    return False


def equivalent(left: object, right: object) -> bool:
    """The ``≡`` relation of Section 5.1.

    Plain equality, extended with the tuple/heterogeneous-list
    identification: ``[a1:v1,...,an:vn] ≡ [[a1:v1],...,[an:vn]]``.
    """
    if left == right:
        return True
    if isinstance(left, TupleValue) and isinstance(right, ListValue):
        return _tuple_list_equiv(left, right)
    if isinstance(right, TupleValue) and isinstance(left, ListValue):
        return _tuple_list_equiv(right, left)
    if isinstance(left, ListValue) and isinstance(right, ListValue):
        return (len(left) == len(right)
                and all(equivalent(a, b) for a, b in zip(left, right)))
    if isinstance(left, TupleValue) and isinstance(right, TupleValue):
        return (left.attribute_names == right.attribute_names
                and all(equivalent(a, b)
                        for (_, a), (_, b)
                        in zip(left.fields, right.fields)))
    if isinstance(left, SetValue) and isinstance(right, SetValue):
        if len(left) != len(right):
            return False
        return all(any(equivalent(a, b) for b in right) for a in left)
    return False


def _tuple_list_equiv(tup: TupleValue, lst: ListValue) -> bool:
    if len(tup) != len(lst):
        return False
    for (name, value), element in zip(tup.fields, lst):
        if not (isinstance(element, TupleValue) and element.is_marked
                and element.marker == name
                and equivalent(element.marked_value, value)):
            return False
    return True


def deep_size(value: object) -> int:
    """Number of nodes in a value tree (used by storage benchmarks)."""
    if isinstance(value, TupleValue):
        return 1 + sum(deep_size(v) for _, v in value.fields)
    if isinstance(value, (ListValue, SetValue)):
        return 1 + sum(deep_size(v) for v in value)
    return 1
