"""A compact binary codec for model values.

Used by the object store for snapshots and by the storage-overhead
experiment (P2): Section 3 notes that "the representation of SGML documents
in an OODB ... comes with some extra cost in storage"; this codec lets the
benchmark measure that cost against the raw SGML byte size.

Wire format: one tag byte per node, followed by a payload.

====  =======================================================
tag   payload
====  =======================================================
0x00  nil
0x01  oid            varint number, string class name
0x02  integer        zigzag varint
0x03  string         varint length + utf-8 bytes
0x04  boolean        one byte
0x05  float          8 bytes IEEE-754 big endian
0x06  tuple          varint n, then n x (name, value)
0x07  list           varint n, then n values
0x08  set            varint n, then n values
====  =======================================================
"""

from __future__ import annotations

import struct

from repro.errors import StoreError
from repro.oodb.values import (
    ListValue,
    NIL,
    Nil,
    Oid,
    SetValue,
    TupleValue,
)

_TAG_NIL = 0x00
_TAG_OID = 0x01
_TAG_INT = 0x02
_TAG_STR = 0x03
_TAG_BOOL = 0x04
_TAG_FLOAT = 0x05
_TAG_TUPLE = 0x06
_TAG_LIST = 0x07
_TAG_SET = 0x08


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise StoreError(f"varint must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _write_string(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _write_varint(out, len(data))
    out.extend(data)


def encode_value(value: object) -> bytes:
    """Serialize a model value to bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: object) -> None:
    if isinstance(value, Nil):
        out.append(_TAG_NIL)
    elif isinstance(value, Oid):
        out.append(_TAG_OID)
        _write_varint(out, value.number)
        _write_string(out, value.class_name)
    elif isinstance(value, bool):
        out.append(_TAG_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        _write_varint(out, _zigzag(value))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, str):
        out.append(_TAG_STR)
        _write_string(out, value)
    elif isinstance(value, TupleValue):
        out.append(_TAG_TUPLE)
        _write_varint(out, len(value.fields))
        for name, field in value.fields:
            _write_string(out, name)
            _encode_into(out, field)
    elif isinstance(value, ListValue):
        out.append(_TAG_LIST)
        _write_varint(out, len(value))
        for element in value:
            _encode_into(out, element)
    elif isinstance(value, SetValue):
        out.append(_TAG_SET)
        _write_varint(out, len(value))
        for element in value:
            _encode_into(out, element)
    else:
        raise StoreError(
            f"cannot serialize {type(value).__name__}: {value!r}")


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise StoreError("truncated value stream")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def varint(self) -> int:
        shift = 0
        result = 0
        while True:
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise StoreError("varint too long")

    def string(self) -> str:
        length = self.varint()
        if self.pos + length > len(self.data):
            raise StoreError("truncated string")
        text = self.data[self.pos:self.pos + length].decode("utf-8")
        self.pos += length
        return text

    def chunk(self, length: int) -> bytes:
        if self.pos + length > len(self.data):
            raise StoreError("truncated chunk")
        data = self.data[self.pos:self.pos + length]
        self.pos += length
        return data


def decode_value(data: bytes) -> object:
    """Inverse of :func:`encode_value`; rejects trailing garbage."""
    reader = _Reader(data)
    value = _decode(reader)
    if reader.pos != len(data):
        raise StoreError(
            f"{len(data) - reader.pos} trailing bytes after value")
    return value


def _decode(reader: _Reader) -> object:
    tag = reader.byte()
    if tag == _TAG_NIL:
        return NIL
    if tag == _TAG_OID:
        number = reader.varint()
        class_name = reader.string()
        return Oid(number, class_name)
    if tag == _TAG_BOOL:
        return reader.byte() != 0
    if tag == _TAG_INT:
        return _unzigzag(reader.varint())
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.chunk(8))[0]
    if tag == _TAG_STR:
        return reader.string()
    if tag == _TAG_TUPLE:
        count = reader.varint()
        return TupleValue(
            (reader.string(), _decode(reader)) for _ in range(count))
    if tag == _TAG_LIST:
        count = reader.varint()
        return ListValue(_decode(reader) for _ in range(count))
    if tag == _TAG_SET:
        count = reader.varint()
        return SetValue(_decode(reader) for _ in range(count))
    raise StoreError(f"unknown value tag 0x{tag:02x}")


def encoded_size(value: object) -> int:
    """Byte size of the serialized value (storage-overhead experiment)."""
    return len(encode_value(value))
