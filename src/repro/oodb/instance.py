"""Database instances — the 4-tuple ``(pi, nu, mu, gamma)`` of Section 5.1.

An :class:`Instance` of a schema holds:

* ``pi`` — the oid assignment: each class name owns a disjoint set of oids;
  the *inherited* assignment of a class is the union over its subclasses;
* ``nu`` — the value of each object;
* ``mu`` — method implementations (plain Python callables);
* ``gamma`` — the value of each persistent root.

The instance is the single runtime context every other subsystem (paths,
calculus, algebra, O2SQL) evaluates against.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from repro.errors import InstanceError
from repro.oodb.schema import Schema
from repro.oodb.typecheck import describe_value, value_in_type
from repro.oodb.values import NIL, Oid


class Instance:
    """A populated database over a :class:`~repro.oodb.schema.Schema`."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._next_oid = 1
        # pi_d: disjoint assignment - class name -> list of oids
        self._extent: dict[str, list[Oid]] = {
            name: [] for name in schema.class_names}
        # nu: oid number -> value
        self._values: dict[int, object] = {}
        # mu: (method name, class name) -> callable
        self._methods: dict[tuple[str, str], Callable] = {}
        # gamma: root name -> value
        self._roots: dict[str, object] = {}
        #: optional repro.observe MetricsRegistry; ``None`` = disabled
        self.metrics = None

    # -- object management ---------------------------------------------------

    def new_object(self, class_name: str, value: object = NIL) -> Oid:
        """Allocate a fresh oid in ``class_name`` with initial ``value``."""
        if not self.schema.hierarchy.has_class(class_name):
            raise InstanceError(f"unknown class: {class_name!r}")
        oid = Oid(self._next_oid, class_name)
        self._next_oid += 1
        self._extent[class_name].append(oid)
        self._values[oid.number] = value
        return oid

    def remove_object(self, oid: Oid) -> None:
        """Forget an object entirely (used by loader backtracking).

        The caller is responsible for ensuring no remaining value
        references the oid.
        """
        if oid.number not in self._values:
            raise InstanceError(f"unknown oid: {oid!r}")
        del self._values[oid.number]
        self._extent[oid.class_name].remove(oid)

    def set_value(self, oid: Oid, value: object) -> None:
        """Rebind ``nu(oid)``."""
        if oid.number not in self._values:
            raise InstanceError(f"unknown oid: {oid!r}")
        self._values[oid.number] = value

    def deref(self, oid: Oid) -> object:
        """``nu(oid)`` — the value of the object."""
        if self.metrics is not None:
            self.metrics.inc("oodb.derefs")
        try:
            return self._values[oid.number]
        except KeyError:
            raise InstanceError(f"dangling oid: {oid!r}") from None

    def has_oid(self, oid: Oid) -> bool:
        return oid.number in self._values

    def extent(self, class_name: str) -> tuple[Oid, ...]:
        """``pi(class_name)`` — oids of the class *and its subclasses*."""
        members: list[Oid] = []
        for sub in self.schema.hierarchy.subclasses(class_name):
            members.extend(self._extent[sub])
        return tuple(members)

    def disjoint_extent(self, class_name: str) -> tuple[Oid, ...]:
        """``pi_d(class_name)`` — oids allocated directly in the class."""
        return tuple(self._extent[class_name])

    def all_oids(self) -> Iterator[Oid]:
        for members in self._extent.values():
            yield from members

    def object_count(self) -> int:
        return len(self._values)

    def oid_in_class(self, oid: Oid, class_name: str) -> bool:
        """Is ``oid ∈ pi(class_name)`` (inheritance included)?"""
        return self.schema.hierarchy.precedes(oid.class_name, class_name)

    # -- methods (mu) ---------------------------------------------------------

    def define_method(self, name: str, class_name: str,
                      implementation: Callable) -> None:
        """Attach a Python callable as the body of ``name`` on
        ``class_name``.  The callable receives ``(instance, receiver_oid,
        *argument_values)``."""
        self._methods[(name, class_name)] = implementation

    def call_method(self, name: str, receiver: Oid, *arguments: object):
        """Dynamic dispatch: walk up from the receiver's allocation class."""
        class_name = receiver.class_name
        candidates = [class_name]
        candidates.extend(
            sorted(self.schema.hierarchy.ancestors(class_name),
                   key=lambda ancestor: len(
                       self.schema.hierarchy.ancestors(ancestor))))
        for candidate in candidates:
            implementation = self._methods.get((name, candidate))
            if implementation is not None:
                return implementation(self, receiver, *arguments)
        raise InstanceError(
            f"no implementation of method {name!r} for {receiver!r}")

    # -- roots (gamma) --------------------------------------------------------

    def set_root(self, name: str, value: object) -> None:
        if not self.schema.has_root(name):
            raise InstanceError(f"root {name!r} is not declared in schema")
        self._roots[name] = value

    def root(self, name: str) -> object:
        try:
            return self._roots[name]
        except KeyError:
            if self.schema.has_root(name):
                raise InstanceError(
                    f"root {name!r} declared but never set") from None
            raise InstanceError(f"unknown root: {name!r}") from None

    def has_root(self, name: str) -> bool:
        return name in self._roots

    @property
    def root_names(self) -> tuple[str, ...]:
        return tuple(self._roots)

    # -- integrity ------------------------------------------------------------

    def check(self) -> None:
        """Verify the typing conditions of Section 5.1's instance definition.

        (ii) every object's value belongs to ``dom(sigma(c))`` for its
        allocation class ``c``; (iv) every root value belongs to the
        interpretation of the root's declared type.  Dangling oids inside
        values are also rejected.
        """
        for class_name, members in self._extent.items():
            structure = self.schema.structure(class_name)
            for oid in members:
                value = self._values[oid.number]
                if isinstance(value, type(NIL)):
                    continue  # freshly allocated, not yet populated
                if not value_in_type(value, structure, self):
                    raise InstanceError(
                        f"object {oid!r}: value {describe_value(value)} "
                        f"not in dom({structure})")
                self._check_no_dangling(value, f"object {oid!r}")
        for root_name, value in self._roots.items():
            declared = self.schema.root_type(root_name)
            if not value_in_type(value, declared, self):
                raise InstanceError(
                    f"root {root_name!r}: value {describe_value(value)} "
                    f"not in dom({declared})")
            self._check_no_dangling(value, f"root {root_name!r}")

    def _check_no_dangling(self, value: object, context: str) -> None:
        from repro.oodb.values import ListValue, SetValue, TupleValue
        if isinstance(value, Oid):
            if not self.has_oid(value):
                raise InstanceError(f"{context}: dangling oid {value!r}")
        elif isinstance(value, TupleValue):
            for _, field in value.fields:
                self._check_no_dangling(field, context)
        elif isinstance(value, (ListValue, SetValue)):
            for element in value:
                self._check_no_dangling(element, context)


def populate(schema: Schema,
             objects: Mapping[str, list[object]] | None = None,
             roots: Mapping[str, object] | None = None) -> Instance:
    """Convenience builder: allocate objects per class and set roots.

    ``objects['Article'] = [v1, v2]`` allocates two Article objects with
    those values.  Returns the populated (unchecked) instance.
    """
    instance = Instance(schema)
    for class_name, values in (objects or {}).items():
        for value in values:
            instance.new_object(class_name, value)
    for root_name, value in (roots or {}).items():
        instance.set_root(root_name, value)
    return instance
