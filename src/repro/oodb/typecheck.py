"""Membership of values in type interpretations — ``v ∈ dom(τ)``.

Implements the interpretation of types from Section 5.1:

* atomic types take their Python domains;
* ``dom(c)`` is ``pi(c) ∪ {nil}`` — the oids assigned to the class (through
  inheritance) plus nil;
* ``dom(any)`` is the set of all oids;
* list/set types have element-wise interpretations;
* tuple-type interpretation allows **extra attributes after the declared
  prefix** (the paper's ``l >= 0`` trailing attributes);
* union-type interpretation is the union over one-field marked tuples.

Membership needs an oid assignment, carried by an :class:`OidContext`
protocol (implemented by :class:`repro.oodb.instance.Instance`); checks on
pure values (no oids) can pass ``None``.
"""

from __future__ import annotations

from repro.oodb.types import (
    AnyType,
    AtomicType,
    BOOLEAN,
    ClassType,
    FLOAT,
    INTEGER,
    ListType,
    STRING,
    SetType,
    TupleType,
    Type,
    UnionType,
)
from repro.oodb.values import (
    ListValue,
    Nil,
    Oid,
    SetValue,
    TupleValue,
)

_ATOMIC_PYTHON = {
    INTEGER: int,
    STRING: str,
    BOOLEAN: bool,
    FLOAT: float,
}


def value_in_type(value: object, tp: Type, oid_context=None) -> bool:
    """Decide ``value ∈ dom(tp)``.

    ``oid_context`` must provide ``oid_class(oid) -> str`` and a hierarchy
    ``precedes(sub, sup) -> bool``; pass ``None`` to treat every oid as a
    member of its own class only.

    ``nil`` belongs to *every* domain: Section 5.1 introduces it as "the
    undefined value" and Figure 3 excludes it where needed through
    constraints (``status != nil``) rather than through types — e.g. an
    optional SGML component (``caption?``) maps to a plain attribute that
    may hold nil.
    """
    if isinstance(value, Nil):
        return not isinstance(tp, (ListType, SetType))
    if isinstance(tp, AtomicType):
        expected = _ATOMIC_PYTHON[tp]
        if expected is int:
            # bool is a Python subclass of int; keep the domains disjoint.
            return isinstance(value, int) and not isinstance(value, bool)
        if expected is float:
            return isinstance(value, float)
        return isinstance(value, expected)

    if isinstance(tp, AnyType):
        return isinstance(value, Oid)

    if isinstance(tp, ClassType):
        if isinstance(value, Nil):
            return True
        if not isinstance(value, Oid):
            return False
        if oid_context is None:
            return value.class_name == tp.name
        return oid_context.oid_in_class(value, tp.name)

    if isinstance(tp, ListType):
        return (isinstance(value, ListValue)
                and all(value_in_type(v, tp.element, oid_context)
                        for v in value))

    if isinstance(tp, SetType):
        return (isinstance(value, SetValue)
                and all(value_in_type(v, tp.element, oid_context)
                        for v in value))

    if isinstance(tp, TupleType):
        return _tuple_in_type(value, tp, oid_context)

    if isinstance(tp, UnionType):
        if not isinstance(value, TupleValue) or not value.is_marked:
            return False
        marker = value.marker
        if not tp.has_marker(marker):
            return False
        return value_in_type(
            value.marked_value, tp.branch_type(marker), oid_context)

    return False


def _tuple_in_type(value: object, tp: TupleType, oid_context) -> bool:
    """The declared attributes must appear as a prefix, in order; trailing
    extra attributes are allowed (Section 5.1's ``l >= 0``)."""
    if not isinstance(value, TupleValue):
        return False
    if len(value.fields) < len(tp.fields):
        return False
    for (expected_name, expected_type), (name, field_value) in zip(
            tp.fields, value.fields):
        if name != expected_name:
            return False
        if not value_in_type(field_value, expected_type, oid_context):
            return False
    return True


def describe_value(value: object) -> str:
    """A short human-readable description of a value's shape (for errors)."""
    if isinstance(value, Nil):
        return "nil"
    if isinstance(value, Oid):
        return f"oid of class {value.class_name}"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    if isinstance(value, TupleValue):
        return "tuple(" + ", ".join(value.attribute_names) + ")"
    if isinstance(value, ListValue):
        return f"list of {len(value)} elements"
    if isinstance(value, SetValue):
        return f"set of {len(value)} elements"
    return type(value).__name__


def infer_value_type(value: object, oid_context=None) -> Type:
    """The most natural type of a ground value (best effort).

    Used for error messages and by the loader's sanity checks; collection
    element types are joined structurally when possible and fall back to
    the first element's type otherwise.
    """
    from repro.oodb.subtyping import common_supertype
    from repro.errors import SubtypingError

    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if isinstance(value, Oid):
        return ClassType(value.class_name)
    if isinstance(value, TupleValue):
        return TupleType(
            [(name, infer_value_type(v, oid_context))
             for name, v in value.fields])
    if isinstance(value, (ListValue, SetValue)):
        constructor = ListType if isinstance(value, ListValue) else SetType
        elements = list(value)
        if not elements:
            return constructor(AnyType())
        result = infer_value_type(elements[0], oid_context)
        for element in elements[1:]:
            try:
                result = common_supertype(
                    result, infer_value_type(element, oid_context))
            except SubtypingError:
                return constructor(AnyType())
        return constructor(result)
    if isinstance(value, Nil):
        return AnyType()
    raise TypeError(f"not a model value: {value!r}")
