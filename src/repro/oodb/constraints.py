"""The constraint language of Figure 3.

The DTD→schema mapping generates constraints that capture what the type
system alone cannot (Section 3): occurrence indicators (``+`` means a
non-empty list, missing ``?`` means a non-nil attribute), required
attributes, and enumerated ranges such as
``status in set("final", "draft")``.

Constraints attach to classes; :func:`check_instance` verifies every object
of a constrained class.  The constraint forms are:

* :class:`NotNil` — ``path != nil``
* :class:`NotEmpty` — ``path != list()``
* :class:`OneOf` — ``path in set(v1, ..., vn)``
* :class:`Disjunction` — at least one alternative constraint-set holds
  (used for union-typed classes such as ``Section`` in Figure 3, and for
  ``Body``'s ``figure != nil | paragr != nil``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConstraintViolation
from repro.oodb.instance import Instance
from repro.oodb.values import ListValue, Nil, Oid, SetValue, TupleValue


class Constraint:
    """Base class; subclasses implement :meth:`holds`."""

    def holds(self, value: object, instance: Instance) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return self.describe()

    def __eq__(self, other: object) -> bool:
        return (type(other) is type(self)
                and other.__dict__ == self.__dict__)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(
            (k, repr(v)) for k, v in self.__dict__.items()))))


def _select(value: object, path: Sequence[str],
            instance: Instance) -> object | None:
    """Follow attribute names through tuples/marked unions, dereferencing
    oids transparently.  Returns ``None`` when the path does not apply
    (e.g. wrong union branch) — distinct from reaching an actual ``nil``."""
    current = value
    for attribute in path:
        if isinstance(current, Oid):
            current = instance.deref(current)
        if isinstance(current, TupleValue):
            if not current.has_attribute(attribute):
                return None
            current = current.get(attribute)
        else:
            return None
    return current


class NotNil(Constraint):
    """``a.b.c != nil``."""

    def __init__(self, *path: str) -> None:
        self.path = tuple(path)

    def holds(self, value: object, instance: Instance) -> bool:
        target = _select(value, self.path, instance)
        return target is not None and not isinstance(target, Nil)

    def describe(self) -> str:
        return ".".join(self.path) + " != nil"


class NotEmpty(Constraint):
    """``a.b != list()`` (also accepts non-empty sets)."""

    def __init__(self, *path: str) -> None:
        self.path = tuple(path)

    def holds(self, value: object, instance: Instance) -> bool:
        target = _select(value, self.path, instance)
        if isinstance(target, (ListValue, SetValue)):
            return len(target) > 0
        return False

    def describe(self) -> str:
        return ".".join(self.path) + " != list()"


class OneOf(Constraint):
    """``a in set(v1, ..., vn)``."""

    def __init__(self, path: Sequence[str], allowed: Iterable[object]) -> None:
        self.path = tuple(path)
        self.allowed = tuple(allowed)

    def holds(self, value: object, instance: Instance) -> bool:
        target = _select(value, self.path, instance)
        return target in self.allowed

    def describe(self) -> str:
        values = ", ".join(repr(v) for v in self.allowed)
        return ".".join(self.path) + f" in set({values})"


class Disjunction(Constraint):
    """At least one alternative — each a list of constraints — holds."""

    def __init__(self, *alternatives: Sequence[Constraint]) -> None:
        self.alternatives = tuple(tuple(alt) for alt in alternatives)

    def holds(self, value: object, instance: Instance) -> bool:
        return any(
            all(constraint.holds(value, instance) for constraint in alt)
            for alt in self.alternatives)

    def describe(self) -> str:
        return " | ".join(
            "(" + ", ".join(c.describe() for c in alt) + ")"
            for alt in self.alternatives)


class ConstraintSet:
    """Constraints grouped by class name."""

    def __init__(self) -> None:
        self._by_class: dict[str, list[Constraint]] = {}

    def add(self, class_name: str, constraint: Constraint) -> None:
        self._by_class.setdefault(class_name, []).append(constraint)

    def for_class(self, class_name: str) -> tuple[Constraint, ...]:
        return tuple(self._by_class.get(class_name, ()))

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._by_class)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_class.values())

    def check_value(self, class_name: str, value: object,
                    instance: Instance) -> None:
        """Raise :class:`ConstraintViolation` on the first failure."""
        for constraint in self.for_class(class_name):
            if not constraint.holds(value, instance):
                raise ConstraintViolation(
                    f"constraint violated: {constraint.describe()}",
                    class_name=class_name)

    def check_instance(self, instance: Instance) -> None:
        """Check every object of every constrained class."""
        for class_name in self.class_names:
            if not instance.schema.hierarchy.has_class(class_name):
                continue
            for oid in instance.disjoint_extent(class_name):
                self.check_value(class_name, instance.deref(oid), instance)

    def violations(self, instance: Instance) -> list[tuple[str, str]]:
        """All ``(class, description)`` violations — never raises."""
        found: list[tuple[str, str]] = []
        for class_name in self.class_names:
            if not instance.schema.hierarchy.has_class(class_name):
                continue
            for oid in instance.disjoint_extent(class_name):
                value = instance.deref(oid)
                for constraint in self.for_class(class_name):
                    if not constraint.holds(value, instance):
                        found.append((class_name, constraint.describe()))
        return found
