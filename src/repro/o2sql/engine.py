"""The end-to-end O₂SQL engine.

``QueryEngine`` wires the pipeline together: parse → translate to the
calculus → static safety check → (optional) type inference against the
schema → evaluation, either with the calculus interpreter, with a
compiled (and, by default, optimized) algebra plan (Section 5.4), or —
``backend="sql"`` — with that same plan's maximal relational prefix
emitted as SQL over the instance's shredding
(:mod:`repro.sqlbackend`), the remainder running as plan operators
over the hydrated rows.

The front half of that pipeline is a pure function of the query text
and the schema, so it can be memoized: when a
:class:`~repro.cache.plancache.PlanCache` is installed, :meth:`run`
resolves its artifacts through the cache (epoch-guarded, so data and
schema changes force a recompile), :meth:`prepare` returns a
:class:`~repro.cache.prepared.PreparedQuery` handle, and
:meth:`run_many` amortizes the cache lookups over a batch.

Every stage is traced: when a :class:`~repro.observe.trace.Tracer` is
installed on the evaluation context (or handed to :meth:`profile`), the
engine records one span per stage with deterministic annotations (plan
size, union fan-out, result cardinality).  On a cache hit the
compile-side spans are genuinely absent — the trace shows execution
only.  With no tracer installed the stages run undecorated through a
shared no-op tracer — the instrumented path costs one context-manager
entry per *stage*, never per row.

Evaluation state is per call: each run executes against a fork of the
engine's context, so concurrent reads from several threads share plans
and counters but never per-query scratch state.
"""

from __future__ import annotations

from repro.cache import CachedArtifacts, PlanCache, PreparedQuery
from repro.calculus.evaluator import EvalContext, evaluate_query
from repro.calculus.inference import infer_types
from repro.calculus.safety import check_safety
from repro.o2sql.parser import parse
from repro.o2sql.translate import to_calculus
from repro.observe.trace import NULL_TRACER
from repro.oodb.instance import Instance
from repro.oodb.values import SetValue


class QueryEngine:
    """Run O₂SQL text against a database instance.

    ``provenance`` (the loader's oid → source element map) enables the
    exact ``text()`` inverse mapping for ``contains`` over logical
    objects; without it the structural fallback is used.

    ``optimize`` controls the Section 4.1/6 plan rewrites (full-text
    index utilisation, selection pushdown) on the algebra backend; the
    rewrites are semantics-preserving, so it defaults to on.

    ``cache`` is an optional :class:`~repro.cache.plancache.PlanCache`.
    A bare engine defaults to no cache (mutating the instance directly
    stays safe); :class:`~repro.session.DocumentStore` always installs
    one and bumps its epoch on every mutation it performs.
    """

    def __init__(self, instance: Instance, provenance: dict | None = None,
                 path_semantics: str = "restricted",
                 type_check: bool = True,
                 backend: str = "calculus",
                 optimize: bool = True,
                 cache: PlanCache | None = None,
                 structural: bool = False,
                 stats: object = None) -> None:
        self.instance = instance
        self.ctx = EvalContext(instance, provenance=provenance,
                               path_semantics=path_semantics)
        self.type_check = type_check
        self.backend = backend
        self.optimize = optimize
        self.cache = cache
        #: The relational backend (``backend="sql"`` only): plans are
        #: still compiled and optimized as usual, then the maximal
        #: relational prefix is emitted as SQL over the instance's
        #: shred; anything the emitter refuses runs as the plan.
        self.sql_backend = None
        if backend == "sql":
            from repro.sqlbackend.backend import SQLBackend
            self.sql_backend = SQLBackend(instance, epoch_source=cache)
        #: Compile path variables to structural-index range scans
        #: (experiment P9); requires a StructuralIndex on ``ctx`` to pay
        #: off, but stays correct without one (scans fall back to live
        #: walks).  Part of the plan-cache key.
        self.structural = structural
        #: Optional :class:`~repro.stats.StatisticsManager`.  When set
        #: (and ``optimize`` is on), the optimizer runs its cost stage
        #: against the current snapshot and executed plans feed actual
        #: cardinalities back.
        self.stats = stats

    # -- pipeline stages ------------------------------------------------------

    def parse(self, text: str):
        return parse(text)

    def translate(self, text: str):
        """Parse + translate; returns the calculus query."""
        node = self.parse(text)
        return to_calculus(node, self.instance.schema.roots.keys())

    def check(self, text: str) -> dict:
        """Static checks only; returns the inferred variable types."""
        query = self.translate(text)
        check_safety(query)
        return infer_types(query, self.instance.schema)

    # -- the cached front end -------------------------------------------------

    def cache_key(self, text: str) -> tuple:
        return PlanCache.key_for(text, self.backend,
                                 self.ctx.path_semantics, self.type_check,
                                 self.structural)

    def artifacts(self, text: str) -> CachedArtifacts:
        """The pipeline artifacts for ``text``, through the cache when
        one is installed (compiling on miss or staleness)."""
        entry, _ = self._artifacts(text, NULL_TRACER, self.ctx.metrics)
        return entry

    def _artifacts(self, text: str, tracer, metrics):
        """Resolve (artifacts, was_cache_hit) for one query text.

        The epoch is captured *before* compilation starts: if a writer
        bumps it mid-compile, the stored entry is already stale-tagged
        and the next lookup recompiles — never a stale serve.
        """
        cache = self.cache
        key = None
        epoch = 0
        snapshot = None
        if (self.stats is not None and self.backend == "algebra"
                and self.optimize):
            snapshot = self.stats.snapshot()
        if cache is not None:
            key = self.cache_key(text)
            epoch = cache.epoch
            entry = cache.lookup(
                key, metrics=metrics,
                stats_generation=(None if snapshot is None
                                  else snapshot.generation))
            if entry is not None:
                return entry, True
        with tracer.span("parse"):
            node = parse(text)
        with tracer.span("translate"):
            query = to_calculus(node, self.instance.schema.roots.keys())
        with tracer.span("safety"):
            check_safety(query)
        if self.type_check:
            with tracer.span("inference"):
                infer_types(query, self.instance.schema)
        plan = None
        verified = False
        if self.backend in ("algebra", "sql"):
            from repro.algebra.compile import compile_query
            from repro.algebra.execute import (
                count_shared,
                count_unions,
                plan_size,
            )
            with tracer.span("compile") as span:
                plan = compile_query(
                    query, self.instance.schema,
                    path_semantics=self.ctx.path_semantics)
                if self.optimize:
                    # every rewrite stage is gated by the plancheck
                    # verifier ("warn" policy: a faulty stage is
                    # dropped, counted and warned about, and the last
                    # verified plan is served)
                    from repro.algebra.optimizer import optimize
                    plan = optimize(plan, structural=self.structural,
                                    query=query, metrics=metrics,
                                    tracer=tracer, stats=snapshot,
                                    plan_key=key)
                    verified = True
                else:
                    from repro.plancheck.verifier import verify_plan
                    with tracer.span("optimize.verify"):
                        verified = not verify_plan(
                            plan, query=query, stage="compile",
                            metrics=metrics)
                span.annotate("operators", plan_size(plan))
                span.annotate("unions", count_unions(plan))
                span.annotate("shared", count_shared(plan))
                span.annotate("verified", verified)
        sql_program = None
        if self.backend == "sql" and plan is not None:
            from repro.errors import SQLUnsupportedError
            with tracer.span("emit.sql") as span:
                try:
                    sql_program = self.sql_backend.compile(
                        plan, metrics=metrics)
                    span.annotate("statements",
                                  len(sql_program.programs))
                except SQLUnsupportedError:
                    # not hybridizable: the entry serves as a plan
                    span.annotate("statements", 0)
                    if metrics is not None:
                        metrics.inc("sql.unsupported")
        entry = CachedArtifacts(query=query, plan=plan, epoch=epoch,
                                key=key, verified=verified,
                                stats_generation=(None if snapshot is None
                                                  else snapshot.generation),
                                sql_program=sql_program)
        if cache is not None:
            cache.store(key, entry, metrics=metrics)
        return entry, False

    # -- execution ------------------------------------------------------------

    def run(self, text: str) -> SetValue:
        """The full pipeline; the result is always a set."""
        result, _, _ = self._run(text, self.ctx.tracer or NULL_TRACER)
        return result

    def prepare(self, text: str) -> PreparedQuery:
        """Compile now, run later (and often).  Installs a plan cache
        on engines that have none yet."""
        if self.cache is None:
            self.cache = PlanCache()
            if self.sql_backend is not None:
                # freshness rides the cache epoch from here on
                self.sql_backend.shred.epoch_source = self.cache
        return PreparedQuery(self, text)

    def run_many(self, texts) -> list[SetValue]:
        """Run a batch; artifacts are resolved once per distinct
        normalized text, so the per-query overhead of a large
        homogeneous batch is one cache lookup amortized over all its
        repetitions.  Each text still executes separately (results come
        back in input order)."""
        tracer = self.ctx.tracer or NULL_TRACER
        memo: dict = {}
        results = []
        for text in texts:
            key = self.cache_key(text)
            entry = memo.get(key)
            if entry is None:
                entry, _ = self._artifacts(text, tracer, self.ctx.metrics)
                memo[key] = entry
            results.append(self._execute(entry, tracer))
        return results

    def _run(self, text: str, tracer):
        """Run all stages under spans; returns
        ``(result, executed-plan-or-None, emitted-sql-or-None)``."""
        with tracer.span("query", backend=self.backend) as root:
            ctx = self.ctx.fork()
            entry, hit = self._artifacts(text, tracer, ctx.metrics)
            if self.cache is not None:
                root.annotate("plan_cache", "hit" if hit else "miss")
            if entry.plan is not None:
                result, plan, sql = self._execute_plan_entry(
                    entry, ctx, tracer)
                self._feedback(entry, result, ctx)
                root.annotate("rows", len(result))
                return result, plan, sql
            with tracer.span("evaluate"):
                result = evaluate_query(entry.query, ctx)
            root.annotate("rows", len(result))
            return result, None, None

    def _execute(self, entry: CachedArtifacts, tracer) -> SetValue:
        """Execute already-resolved artifacts under a fresh context."""
        with tracer.span("query", backend=self.backend) as root:
            ctx = self.ctx.fork()
            if entry.plan is not None:
                result, _, _ = self._execute_plan_entry(
                    entry, ctx, tracer)
                self._feedback(entry, result, ctx)
            else:
                with tracer.span("evaluate"):
                    result = evaluate_query(entry.query, ctx)
            root.annotate("rows", len(result))
            return result

    def _execute_plan_entry(self, entry: CachedArtifacts, ctx, tracer):
        """Execute a plan-bearing entry and report what actually ran:
        the hybrid (SQL-fed) plan when one was compiled, the ordinary
        plan otherwise — including when a compiled hybrid *refuses at
        run time* (non-navigable root, path-semantics or enumeration
        guard), which falls back transparently and counts
        ``sql.fallbacks``."""
        from repro.algebra.execute import execute_plan
        hybrid = entry.sql_program
        if hybrid is not None:
            from repro.errors import SQLUnsupportedError
            try:
                with tracer.span("execute.sql"):
                    result = self.sql_backend.execute(hybrid, ctx)
                return result, hybrid.plan, hybrid.sql
            except SQLUnsupportedError:
                if ctx.metrics is not None:
                    ctx.metrics.inc("sql.fallbacks")
        with tracer.span("execute"):
            result = execute_plan(entry.plan, ctx)
        return result, entry.plan, None

    def _feedback(self, entry: CachedArtifacts, result, ctx) -> None:
        """Feed an executed plan's actual cardinalities back into the
        statistics (result rows always; per-operator timings and
        per-branch counts when the run was profiled)."""
        stats = self.stats
        if stats is None or entry.plan is None:
            return
        stats.record_execution(entry.key, entry.plan.est_rows,
                               len(result))
        profiler = getattr(ctx, "profiler", None)
        if profiler is not None:
            stats.ingest_profile(entry.plan, profiler, key=entry.key)

    # -- observability --------------------------------------------------------

    def profile(self, text: str):
        """Run ``text`` fully observed; returns an
        :class:`~repro.observe.report.ExplainReport` with the result, the
        executed plan annotated with actual per-operator row counts
        (algebra backend), the stage span tree and a metrics snapshot.

        Observation is scoped to this one query: fresh registry, tracer
        and profiler are installed for the duration and the previous
        observers (if any) are restored afterwards.  The run goes
        through the plan cache like any other — on a warm cache the
        span tree carries no compile-side stages and the ``cache.hits``
        counter appears in the snapshot.
        """
        from repro.observe import (
            ExplainReport,
            MetricsRegistry,
            PlanProfiler,
            Tracer,
            observed,
        )
        metrics = MetricsRegistry()
        tracer = Tracer()
        profiler = (PlanProfiler()
                    if self.backend in ("algebra", "sql") else None)
        with observed(self.ctx, metrics=metrics, tracer=tracer,
                      profiler=profiler):
            result, plan, sql = self._run(text, tracer)
        return ExplainReport(text=text, backend=self.backend,
                             result=result, plan=plan, profiler=profiler,
                             metrics=metrics.snapshot(),
                             trace=tracer.last_root, sql=sql)

    explain_analyze = profile

    def explain(self, text: str) -> str:
        """The calculus form of the query (one line)."""
        return str(self.translate(text))
