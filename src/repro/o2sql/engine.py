"""The end-to-end O₂SQL engine.

``QueryEngine`` wires the pipeline together: parse → translate to the
calculus → static safety check → (optional) type inference against the
schema → evaluation, either with the calculus interpreter or with a
compiled (and, by default, optimized) algebra plan (Section 5.4).

Every stage is traced: when a :class:`~repro.observe.trace.Tracer` is
installed on the evaluation context (or handed to :meth:`profile`), the
engine records one span per stage with deterministic annotations (plan
size, union fan-out, result cardinality).  With no tracer installed the
stages run undecorated through a shared no-op tracer — the instrumented
path costs one context-manager entry per *stage*, never per row.
"""

from __future__ import annotations

from repro.calculus.evaluator import EvalContext, evaluate_query
from repro.calculus.inference import infer_types
from repro.calculus.safety import check_safety
from repro.o2sql.parser import parse
from repro.o2sql.translate import to_calculus
from repro.observe.trace import NULL_TRACER
from repro.oodb.instance import Instance
from repro.oodb.values import SetValue


class QueryEngine:
    """Run O₂SQL text against a database instance.

    ``provenance`` (the loader's oid → source element map) enables the
    exact ``text()`` inverse mapping for ``contains`` over logical
    objects; without it the structural fallback is used.

    ``optimize`` controls the Section 4.1/6 plan rewrites (full-text
    index utilisation, selection pushdown) on the algebra backend; the
    rewrites are semantics-preserving, so it defaults to on.
    """

    def __init__(self, instance: Instance, provenance: dict | None = None,
                 path_semantics: str = "restricted",
                 type_check: bool = True,
                 backend: str = "calculus",
                 optimize: bool = True) -> None:
        self.instance = instance
        self.ctx = EvalContext(instance, provenance=provenance,
                               path_semantics=path_semantics)
        self.type_check = type_check
        self.backend = backend
        self.optimize = optimize

    # -- pipeline stages ------------------------------------------------------

    def parse(self, text: str):
        return parse(text)

    def translate(self, text: str):
        """Parse + translate; returns the calculus query."""
        node = self.parse(text)
        return to_calculus(node, self.instance.schema.roots.keys())

    def check(self, text: str) -> dict:
        """Static checks only; returns the inferred variable types."""
        query = self.translate(text)
        check_safety(query)
        return infer_types(query, self.instance.schema)

    def run(self, text: str) -> SetValue:
        """The full pipeline; the result is always a set."""
        result, _ = self._run(text, self.ctx.tracer or NULL_TRACER)
        return result

    def _run(self, text: str, tracer):
        """Run all stages under spans; returns ``(result, plan-or-None)``."""
        with tracer.span("query", backend=self.backend) as root:
            with tracer.span("parse"):
                node = parse(text)
            with tracer.span("translate"):
                query = to_calculus(node, self.instance.schema.roots.keys())
            with tracer.span("safety"):
                check_safety(query)
            if self.type_check:
                with tracer.span("inference"):
                    infer_types(query, self.instance.schema)
            if self.backend == "algebra":
                from repro.algebra.compile import compile_query
                from repro.algebra.execute import (
                    count_unions,
                    execute_plan,
                    plan_size,
                )
                with tracer.span("compile") as span:
                    plan = compile_query(query, self.instance.schema,
                                         self.ctx)
                    if self.optimize:
                        from repro.algebra.optimizer import optimize
                        plan = optimize(plan)
                    span.annotate("operators", plan_size(plan))
                    span.annotate("unions", count_unions(plan))
                with tracer.span("execute"):
                    result = execute_plan(plan, self.ctx)
                root.annotate("rows", len(result))
                return result, plan
            with tracer.span("evaluate"):
                result = evaluate_query(query, self.ctx)
            root.annotate("rows", len(result))
            return result, None

    # -- observability --------------------------------------------------------

    def profile(self, text: str):
        """Run ``text`` fully observed; returns an
        :class:`~repro.observe.report.ExplainReport` with the result, the
        executed plan annotated with actual per-operator row counts
        (algebra backend), the stage span tree and a metrics snapshot.

        Observation is scoped to this one query: fresh registry, tracer
        and profiler are installed for the duration and the previous
        observers (if any) are restored afterwards.
        """
        from repro.observe import (
            ExplainReport,
            MetricsRegistry,
            PlanProfiler,
            Tracer,
            observed,
        )
        metrics = MetricsRegistry()
        tracer = Tracer()
        profiler = PlanProfiler() if self.backend == "algebra" else None
        with observed(self.ctx, metrics=metrics, tracer=tracer,
                      profiler=profiler):
            result, plan = self._run(text, tracer)
        return ExplainReport(text=text, backend=self.backend,
                             result=result, plan=plan, profiler=profiler,
                             metrics=metrics.snapshot(),
                             trace=tracer.last_root)

    explain_analyze = profile

    def explain(self, text: str) -> str:
        """The calculus form of the query (one line)."""
        return str(self.translate(text))
