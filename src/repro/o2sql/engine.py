"""The end-to-end O₂SQL engine.

``QueryEngine`` wires the pipeline together: parse → translate to the
calculus → static safety check → (optional) type inference against the
schema → evaluation, either with the calculus interpreter or with a
compiled algebra plan (Section 5.4).
"""

from __future__ import annotations

from repro.calculus.evaluator import EvalContext, evaluate_query
from repro.calculus.inference import infer_types
from repro.calculus.safety import check_safety
from repro.o2sql.parser import parse
from repro.o2sql.translate import to_calculus
from repro.oodb.instance import Instance
from repro.oodb.values import SetValue


class QueryEngine:
    """Run O₂SQL text against a database instance.

    ``provenance`` (the loader's oid → source element map) enables the
    exact ``text()`` inverse mapping for ``contains`` over logical
    objects; without it the structural fallback is used.
    """

    def __init__(self, instance: Instance, provenance: dict | None = None,
                 path_semantics: str = "restricted",
                 type_check: bool = True,
                 backend: str = "calculus") -> None:
        self.instance = instance
        self.ctx = EvalContext(instance, provenance=provenance,
                               path_semantics=path_semantics)
        self.type_check = type_check
        self.backend = backend

    # -- pipeline stages ------------------------------------------------------

    def parse(self, text: str):
        return parse(text)

    def translate(self, text: str):
        """Parse + translate; returns the calculus query."""
        node = self.parse(text)
        return to_calculus(node, self.instance.schema.roots.keys())

    def check(self, text: str) -> dict:
        """Static checks only; returns the inferred variable types."""
        query = self.translate(text)
        check_safety(query)
        return infer_types(query, self.instance.schema)

    def run(self, text: str) -> SetValue:
        """The full pipeline; the result is always a set."""
        query = self.translate(text)
        check_safety(query)
        if self.type_check:
            infer_types(query, self.instance.schema)
        if self.backend == "algebra":
            from repro.algebra.compile import compile_query
            from repro.algebra.execute import execute_plan
            plan = compile_query(query, self.instance.schema, self.ctx)
            return execute_plan(plan, self.ctx)
        return evaluate_query(query, self.ctx)

    def explain(self, text: str) -> str:
        """The calculus form of the query (one line)."""
        return str(self.translate(text))
