"""The extended O₂SQL query language (Section 4).

The concrete syntax follows the paper's examples:

* ``select ... from ... where ...`` with variables ranging over
  collections (``a in Articles``) — Q1/Q2;
* path expressions with ``PATH_`` and ``ATT_`` variables
  (``my_article PATH_p.title(t)``) and the ``..`` sugar — Q3/Q5;
* ``contains`` with boolean pattern expressions and ``near`` — Q1/Q5;
* set operations on queries (``-`` difference) — Q4;
* positional from-items over ordered tuples (``letter[i].from``) — Q6.

Pipeline: :func:`parse` → :func:`~repro.o2sql.translate.to_calculus` →
safety check → type inference → evaluation (calculus interpreter or the
Section 5.4 algebra via :class:`~repro.o2sql.engine.QueryEngine`).
"""

from repro.o2sql.ast import (
    BinOp,
    BoolOp,
    Call,
    ContainsOp,
    FieldSel,
    FromPath,
    FromRange,
    Ident,
    IndexSel,
    Literal,
    NotOp,
    PatternLit,
    PathExpr,
    SelectQuery,
    TupleExpr,
)
from repro.o2sql.engine import QueryEngine
from repro.o2sql.lexer import tokenize_query
from repro.o2sql.parser import parse
from repro.o2sql.translate import to_calculus

__all__ = [
    "BinOp", "BoolOp", "Call", "ContainsOp", "FieldSel", "FromPath",
    "FromRange", "Ident", "IndexSel", "Literal", "NotOp", "PathExpr",
    "PatternLit", "QueryEngine", "SelectQuery", "TupleExpr", "parse",
    "to_calculus", "tokenize_query",
]
