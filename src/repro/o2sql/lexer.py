"""Lexer for the extended O₂SQL surface syntax."""

from __future__ import annotations

from repro.errors import QuerySyntaxError

KEYWORDS = frozenset({
    "select", "from", "where", "in", "tuple", "list", "set", "and", "or",
    "not", "contains", "near", "union", "intersect", "exists", "nil",
    "true", "false", "element",
})

# Token kinds
IDENT = "IDENT"
PATHVAR = "PATHVAR"    # PATH_x
ATTVAR = "ATTVAR"      # ATT_x
KEYWORD = "KEYWORD"
STRING = "STRING"
INT = "INT"
FLOAT = "FLOAT"
PUNCT = "PUNCT"
END = "END"

_PUNCT_TWO = ("..", "<=", ">=", "!=", "->")
_PUNCT_ONE = ".[](){},:=<>-+*"


class Token:
    """One lexical token with its source position."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: str, line: int,
                 column: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})"


def tokenize_query(text: str) -> list[Token]:
    """Tokenize O₂SQL text; the final token has kind END."""
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            # line comment
            end = text.find("\n", i)
            i = length if end < 0 else end
            continue
        start_column = column
        if ch in "\"'":
            end = text.find(ch, i + 1)
            if end < 0:
                raise QuerySyntaxError(
                    "unterminated string literal", line, start_column)
            value = text[i + 1:end]
            tokens.append(Token(STRING, value, line, start_column))
            column += end + 1 - i
            i = end + 1
            continue
        if ch.isdigit():
            j = i
            while j < length and text[j].isdigit():
                j += 1
            if j < length and text[j] == "." and j + 1 < length \
                    and text[j + 1].isdigit():
                j += 1
                while j < length and text[j].isdigit():
                    j += 1
                tokens.append(Token(FLOAT, text[i:j], line, start_column))
            else:
                tokens.append(Token(INT, text[i:j], line, start_column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.startswith("PATH_"):
                tokens.append(Token(PATHVAR, word, line, start_column))
            elif word.startswith("ATT_"):
                tokens.append(Token(ATTVAR, word, line, start_column))
            elif word.lower() in KEYWORDS:
                tokens.append(
                    Token(KEYWORD, word.lower(), line, start_column))
            else:
                tokens.append(Token(IDENT, word, line, start_column))
            column += j - i
            i = j
            continue
        two = text[i:i + 2]
        if two in _PUNCT_TWO:
            tokens.append(Token(PUNCT, two, line, start_column))
            i += 2
            column += 2
            continue
        if ch in _PUNCT_ONE:
            tokens.append(Token(PUNCT, ch, line, start_column))
            i += 1
            column += 1
            continue
        raise QuerySyntaxError(
            f"unexpected character {ch!r}", line, start_column)
    tokens.append(Token(END, "", line, column))
    return tokens
