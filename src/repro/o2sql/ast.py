"""Abstract syntax of the extended O₂SQL (Section 4)."""

from __future__ import annotations

from typing import Iterable


class Node:
    """Base class of surface-syntax AST nodes."""

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.__dict__ == self.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, str(self)))

    def __repr__(self) -> str:  # pragma: no cover
        return str(self)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Ident(Node):
    """A bare identifier — a query variable or a persistence root."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


class Literal(Node):
    """A constant: string, number, boolean or nil."""

    def __init__(self, value: object) -> None:
        self.value = value

    def __str__(self) -> str:
        return repr(self.value)


class PatternLit(Node):
    """A ``contains`` pattern expression (boolean combination)."""

    def __init__(self, source: str) -> None:
        self.source = source

    def __str__(self) -> str:
        return f"pattern({self.source!r})"


class FieldSel(Node):
    """``e.attr`` — also covers ``e.ATT_x`` via ``attvar=True``."""

    def __init__(self, base, name: str, attvar: bool = False) -> None:
        self.base = base
        self.name = name
        self.attvar = attvar

    def __str__(self) -> str:
        return f"{self.base}.{self.name}"


class IndexSel(Node):
    """``e[i]`` where ``i`` is an expression (int literal or variable)."""

    def __init__(self, base, index) -> None:
        self.base = base
        self.index = index

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


class Call(Node):
    """``f(args)`` — interpreted functions (first, text, length...)."""

    def __init__(self, function: str, arguments: Iterable) -> None:
        self.function = function
        self.arguments = tuple(arguments)

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.arguments)
        return f"{self.function}({inner})"


class TupleExpr(Node):
    """``tuple (t: e1, f: e2)``."""

    def __init__(self, fields: Iterable[tuple[str, object]]) -> None:
        self.fields = tuple(fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {e}" for n, e in self.fields)
        return f"tuple({inner})"


class CollectionExpr(Node):
    """``list(e1, e2)`` / ``set(e1, e2)``."""

    def __init__(self, kind: str, items: Iterable) -> None:
        self.kind = kind          # "list" | "set"
        self.items = tuple(items)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.items)
        return f"{self.kind}({inner})"


class BinOp(Node):
    """Comparisons, arithmetic-free: = != < <= > >= - union intersect in."""

    def __init__(self, op: str, left, right) -> None:
        self.op = op
        self.left = left
        self.right = right

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class BoolOp(Node):
    """``and`` / ``or`` over conditions."""

    def __init__(self, op: str, operands: Iterable) -> None:
        self.op = op              # "and" | "or"
        self.operands = tuple(operands)

    def __str__(self) -> str:
        return (" " + self.op + " ").join(f"({o})" for o in self.operands)


class NotOp(Node):
    """``not`` over a condition."""

    def __init__(self, operand) -> None:
        self.operand = operand

    def __str__(self) -> str:
        return f"not ({self.operand})"


class ContainsOp(Node):
    """``e contains <pattern-expr>``."""

    def __init__(self, operand, pattern: PatternLit) -> None:
        self.operand = operand
        self.pattern = pattern

    def __str__(self) -> str:
        return f"({self.operand} contains {self.pattern})"


class ExistsOp(Node):
    """``exists (subquery)``."""

    def __init__(self, query: "SelectQuery") -> None:
        self.query = query

    def __str__(self) -> str:
        return f"exists({self.query})"


# ---------------------------------------------------------------------------
# Path expressions (Section 4.3)
# ---------------------------------------------------------------------------


class PComp(Node):
    """Base of surface path components."""


class PVar(PComp):
    """``PATH_p``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


class PAnon(PComp):
    """``..`` — an anonymous path variable (Section 4.3 sugar)."""

    def __str__(self) -> str:
        return ".."


class PAttr(PComp):
    """``.attr``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return f".{self.name}"


class PAttVar(PComp):
    """``.ATT_a``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return f".{self.name}"


class PIndex(PComp):
    """``[3]`` or ``[i]``."""

    def __init__(self, index) -> None:
        self.index = index        # int or str (variable name)

    def __str__(self) -> str:
        return f"[{self.index}]"


class PDeref(PComp):
    """``->``."""

    def __str__(self) -> str:
        return "->"


class PBind(PComp):
    """``(t)`` — bind the reached value to a data variable."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return f"({self.name})"


class PSetBind(PComp):
    """``{x}`` — bind a set element."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return f"{{{self.name}}}"


class PathExpr(Node):
    """``root PATH_p.title(t)`` — a path expression over a root
    expression.  Usable as a from-item, or as a bare query denoting the
    set of path values (Q4)."""

    def __init__(self, root, components: Iterable[PComp]) -> None:
        self.root = root
        self.components = tuple(components)

    def __str__(self) -> str:
        return f"{self.root} " + "".join(
            str(component) for component in self.components)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class FromRange(Node):
    """``x in <collection expr>``."""

    def __init__(self, variable: str, collection) -> None:
        self.variable = variable
        self.collection = collection

    def __str__(self) -> str:
        return f"{self.variable} in {self.collection}"


class FromPath(Node):
    """A path expression used as a from-item."""

    def __init__(self, path: PathExpr) -> None:
        self.path = path

    def __str__(self) -> str:
        return str(self.path)


class SelectQuery(Node):
    """``select e1, e2 from ... where ...``."""

    def __init__(self, select: Iterable, from_items: Iterable,
                 where=None) -> None:
        self.select = tuple(select)
        self.from_items = tuple(from_items)
        self.where = where

    def __str__(self) -> str:
        text = "select " + ", ".join(str(e) for e in self.select)
        text += " from " + ", ".join(str(f) for f in self.from_items)
        if self.where is not None:
            text += f" where {self.where}"
        return text
