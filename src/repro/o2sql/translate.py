"""Translate O₂SQL to the calculus (the Section 5.2 closing remark).

"Any O₂SQL query of the form ``Doc PATH_p[i].ATT_a(x)...`` can be
translated into a calculus expression of the form
``{[P, I, A, X, ...] | <Doc P[I]·A(X)...>}``" — this module implements
that translation for the whole surface language:

* from-ranges become membership atoms,
* from-path-expressions become path predicates,
* the where clause becomes conjuncts,
* select expressions become head variables, with fresh result variables
  equated to non-variable expressions,
* every non-head variable is existentially quantified,
* set operations between queries become nested-query membership
  formulas.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError, QueryTypeError
from repro.calculus.formulas import (
    And,
    Eq,
    Exists,
    Formula,
    In,
    Not,
    Or,
    PathAtom,
    Pred,
    Query,
)
from repro.calculus.terms import (
    AttVar,
    Bind,
    Const,
    DataVar,
    Deref,
    FunTerm,
    Index,
    ListTerm,
    PathApply,
    PathTerm,
    PathVar,
    Name,
    Sel,
    SetBind,
    SetTerm,
    TupleTerm,
)
from repro.o2sql import ast
from repro.text.patterns import parse_pattern_expr

_PREDICATE_CALLS = frozenset({"near", "startswith"})
_COMPARISON_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
                   "!=": "neq"}


class _Scope:
    """Declared variables and fresh-name supply.

    A child scope (for correlated subqueries) sees the parent's
    variables but records its own declarations separately, so the
    translator knows which variables the subquery introduces."""

    def __init__(self, roots: frozenset[str],
                 parent: "._Scope | None" = None) -> None:
        self.roots = roots
        self.parent = parent
        self.variables: dict[str, object] = {}
        self._fresh = 0

    def child(self) -> "_Scope":
        child = _Scope(self.roots, parent=self)
        child._fresh = self._fresh + 1000
        return child

    def declare(self, name: str):
        existing = self.lookup(name)
        if existing is not None:
            return existing
        variable = self._make(name)
        self.variables[name] = variable
        return variable

    def _make(self, name: str):
        if name.startswith("PATH_"):
            return PathVar(name)
        if name.startswith("ATT_"):
            return AttVar(name)
        return DataVar(name)

    def lookup(self, name: str):
        found = self.variables.get(name)
        if found is None and self.parent is not None:
            return self.parent.lookup(name)
        return found

    def fresh_path_var(self) -> PathVar:
        self._fresh += 1
        return PathVar(f"PATH_anon{self._fresh}")

    def fresh_data_var(self, stem: str = "r") -> DataVar:
        self._fresh += 1
        return DataVar(f"_{stem}{self._fresh}")


def to_calculus(node, root_names) -> Query:
    """Translate a parsed O₂SQL query to a calculus :class:`Query`."""
    scope = _Scope(frozenset(root_names))
    if isinstance(node, ast.SelectQuery):
        return _translate_select(node, scope)
    return _translate_expression_query(node, scope)


# ---------------------------------------------------------------------------
# select-from-where
# ---------------------------------------------------------------------------


def _translate_select(node: ast.SelectQuery, scope: _Scope) -> Query:
    conjuncts: list[Formula] = []
    for item in node.from_items:
        if isinstance(item, ast.FromRange):
            variable = scope.declare(item.variable)
            collection = _term(item.collection, scope)
            conjuncts.append(In(variable, collection))
        elif isinstance(item, ast.FromPath):
            conjuncts.append(_path_atom(item.path, scope))
        else:  # pragma: no cover
            raise QuerySyntaxError(f"bad from item {item!r}")
    if node.where is not None:
        conjuncts.append(_formula(node.where, scope))

    head = []
    for expression in node.select:
        if isinstance(expression, ast.Ident):
            known = scope.lookup(expression.name)
            if known is not None:
                head.append(known)
                continue
        result_var = scope.fresh_data_var(_result_stem(expression))
        conjuncts.append(Eq(result_var, _term(expression, scope)))
        head.append(result_var)

    formula = And(*conjuncts) if len(conjuncts) > 1 else conjuncts[0]
    hidden = [variable for variable in scope.variables.values()
              if variable not in head]
    hidden += [variable for variable in formula.free_variables()
               if variable not in head and variable not in hidden]
    if hidden:
        formula = Exists(hidden, formula)
    return Query(head, formula)


def _result_stem(expression) -> str:
    """A readable name for the result column of a select expression."""
    if isinstance(expression, ast.Call):
        return expression.function
    if isinstance(expression, ast.FieldSel):
        return expression.name
    if isinstance(expression, ast.TupleExpr):
        return "row"
    return "r"


def _path_atom(path: ast.PathExpr, scope: _Scope) -> PathAtom:
    root = _term(path.root, scope)
    return PathAtom(root, _path_term(path.components, scope))


def _path_term(components, scope: _Scope) -> PathTerm:
    translated = []
    for component in components:
        if isinstance(component, ast.PVar):
            translated.append(scope.declare(component.name))
        elif isinstance(component, ast.PAnon):
            translated.append(scope.fresh_path_var())
        elif isinstance(component, ast.PAttr):
            translated.append(Sel(component.name))
        elif isinstance(component, ast.PAttVar):
            translated.append(Sel(scope.declare(component.name)))
        elif isinstance(component, ast.PIndex):
            if isinstance(component.index, int):
                translated.append(Index(component.index))
            else:
                translated.append(Index(scope.declare(component.index)))
        elif isinstance(component, ast.PDeref):
            translated.append(Deref())
        elif isinstance(component, ast.PBind):
            translated.append(Bind(scope.declare(component.name)))
        elif isinstance(component, ast.PSetBind):
            translated.append(SetBind(scope.declare(component.name)))
        else:  # pragma: no cover
            raise QuerySyntaxError(f"bad path component {component!r}")
    return PathTerm(translated)


# ---------------------------------------------------------------------------
# bare expression queries (Q4 and friends)
# ---------------------------------------------------------------------------


def _translate_expression_query(node, scope: _Scope) -> Query:
    if isinstance(node, ast.PathExpr):
        atom = _path_atom(node, scope)
        head = [variable for variable in scope.variables.values()]
        if not head:
            raise QueryTypeError(
                f"path expression {node} has no variables to return")
        return Query(head, atom)
    if isinstance(node, ast.BinOp) and node.op in ("-", "union",
                                                   "intersect"):
        left_query = to_calculus(node.left, scope.roots)
        right_query = to_calculus(node.right, scope.roots)
        element = scope.fresh_data_var("e")
        left_atom = In(element, left_query)
        right_atom = In(element, right_query)
        if node.op == "-":
            formula: Formula = And(left_atom, Not(right_atom))
        elif node.op == "intersect":
            formula = And(left_atom, right_atom)
        else:
            formula = Or(left_atom, right_atom)
        return Query([element], formula)
    # any other expression: a singleton projection query
    result = scope.fresh_data_var()
    formula = Eq(result, _term(node, scope))
    hidden = [variable for variable in scope.variables.values()
              if variable is not result]
    if hidden:
        formula = Exists(hidden, formula)
    return Query([result], formula)


# ---------------------------------------------------------------------------
# conditions
# ---------------------------------------------------------------------------


def _formula(node, scope: _Scope) -> Formula:
    if isinstance(node, ast.BoolOp):
        parts = [_formula(operand, scope) for operand in node.operands]
        return And(*parts) if node.op == "and" else Or(*parts)
    if isinstance(node, ast.NotOp):
        return Not(_formula(node.operand, scope))
    if isinstance(node, ast.ContainsOp):
        pattern = parse_pattern_expr(node.pattern.source)
        return Pred("contains",
                    [_term(node.operand, scope), Const(pattern)])
    if isinstance(node, ast.BinOp):
        if node.op == "=":
            return Eq(_term(node.left, scope), _term(node.right, scope))
        if node.op == "in":
            return In(_term(node.left, scope), _term(node.right, scope))
        predicate = _COMPARISON_OPS.get(node.op)
        if predicate is not None:
            return Pred(predicate, [_term(node.left, scope),
                                    _term(node.right, scope)])
        raise QuerySyntaxError(f"operator {node.op!r} is not a condition")
    if isinstance(node, ast.Call) and node.function in _PREDICATE_CALLS:
        return Pred(node.function,
                    [_term(argument, scope) for argument in
                     node.arguments])
    if isinstance(node, ast.ExistsOp):
        # correlated subquery: inline as an existential formula over
        # the subquery's own variables, sharing the outer bindings
        inner_scope = scope.child()
        conjuncts: list[Formula] = []
        for item in node.query.from_items:
            if isinstance(item, ast.FromRange):
                variable = inner_scope.declare(item.variable)
                conjuncts.append(
                    In(variable, _term(item.collection, inner_scope)))
            elif isinstance(item, ast.FromPath):
                conjuncts.append(_path_atom(item.path, inner_scope))
        if node.query.where is not None:
            conjuncts.append(_formula(node.query.where, inner_scope))
        body = And(*conjuncts) if len(conjuncts) > 1 else conjuncts[0]
        introduced = list(inner_scope.variables.values())
        if not introduced:
            return body
        return Exists(introduced, body)
    # a boolean-valued expression used as a condition
    return Eq(_term(node, scope), Const(True))


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def _term(node, scope: _Scope):
    if isinstance(node, ast.Ident):
        known = scope.lookup(node.name)
        if known is not None:
            return known
        if node.name in scope.roots:
            return Name(node.name)
        raise QueryTypeError(
            f"unknown identifier {node.name!r}: neither a declared "
            "variable nor a persistence root")
    if isinstance(node, ast.Literal):
        return Const(node.value)
    if isinstance(node, ast.PatternLit):
        return Const(parse_pattern_expr(node.source))
    if isinstance(node, ast.FieldSel):
        base = _term(node.base, scope)
        selector = (Sel(scope.declare(node.name)) if node.attvar
                    else Sel(node.name))
        return _extend_path_apply(base, selector)
    if isinstance(node, ast.IndexSel):
        base = _term(node.base, scope)
        if isinstance(node.index, int):
            step = Index(node.index)
        elif isinstance(node.index, ast.Ident):
            known = scope.lookup(node.index.name)
            if known is None or not isinstance(known, DataVar):
                raise QueryTypeError(
                    f"index variable {node.index.name!r} is not declared "
                    "in the from clause")
            step = Index(known)
        else:  # pragma: no cover
            raise QuerySyntaxError(f"bad index {node.index!r}")
        return _extend_path_apply(base, step)
    if isinstance(node, ast.Call):
        if node.function in _PREDICATE_CALLS:
            raise QueryTypeError(
                f"{node.function} is a predicate, not a function")
        arguments = [_term(argument, scope)
                     for argument in node.arguments]
        return FunTerm(node.function, arguments)
    if isinstance(node, ast.TupleExpr):
        return TupleTerm([(name, _term(sub, scope))
                          for name, sub in node.fields])
    if isinstance(node, ast.CollectionExpr):
        items = [_term(sub, scope) for sub in node.items]
        return ListTerm(items) if node.kind == "list" else SetTerm(items)
    if isinstance(node, ast.SelectQuery):
        return _translate_select(node, _Scope(scope.roots))
    if isinstance(node, ast.PathExpr):
        # a nested path-set query, e.g. `my_article PATH_p` in a where
        inner_scope = _Scope(scope.roots)
        return _translate_expression_query(node, inner_scope)
    if isinstance(node, ast.BinOp) and node.op in ("-", "union",
                                                   "intersect"):
        function = {"-": "set_difference", "union": "set_union",
                    "intersect": "set_intersection"}[node.op]
        return FunTerm(function, [_term(node.left, scope),
                                  _term(node.right, scope)])
    raise QuerySyntaxError(f"cannot use {node!r} as an expression")


def _extend_path_apply(base, step):
    """Merge chained selections into a single PathApply."""
    if isinstance(base, PathApply):
        return PathApply(base.root, base.path + PathTerm([step]))
    return PathApply(base, PathTerm([step]))
