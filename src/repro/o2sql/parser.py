"""Recursive-descent parser for the extended O₂SQL syntax."""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.o2sql.ast import (
    BinOp,
    BoolOp,
    Call,
    CollectionExpr,
    ContainsOp,
    ExistsOp,
    FieldSel,
    FromPath,
    FromRange,
    Ident,
    IndexSel,
    Literal,
    NotOp,
    PAnon,
    PAttVar,
    PAttr,
    PBind,
    PDeref,
    PIndex,
    PSetBind,
    PVar,
    PathExpr,
    PatternLit,
    SelectQuery,
    TupleExpr,
)
from repro.o2sql.lexer import (
    ATTVAR,
    END,
    FLOAT,
    IDENT,
    INT,
    KEYWORD,
    PATHVAR,
    PUNCT,
    STRING,
    Token,
    tokenize_query,
)

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")
_SET_OPS = ("-", "union", "intersect")


def parse(text: str):
    """Parse query text into a :class:`SelectQuery` or an expression."""
    parser = _Parser(tokenize_query(text))
    node = parser.query()
    parser.expect_end()
    return node


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- plumbing ----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != END:
            self.pos += 1
        return token

    def at(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None
                                       or token.value == value)

    def eat(self, kind: str, value: str | None = None) -> Token | None:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            wanted = value if value is not None else kind
            raise QuerySyntaxError(
                f"expected {wanted!r}, found {token.value!r}",
                token.line, token.column)
        return self.advance()

    def expect_end(self) -> None:
        token = self.peek()
        if token.kind != END:
            raise QuerySyntaxError(
                f"trailing input starting at {token.value!r}",
                token.line, token.column)

    def error(self, message: str) -> QuerySyntaxError:
        token = self.peek()
        return QuerySyntaxError(message, token.line, token.column)

    # -- entry points ---------------------------------------------------------

    def query(self):
        if self.at(KEYWORD, "select"):
            return self.select_query()
        return self.condition()

    def select_query(self) -> SelectQuery:
        self.expect(KEYWORD, "select")
        select = [self.expression()]
        while self.eat(PUNCT, ","):
            select.append(self.expression())
        self.expect(KEYWORD, "from")
        from_items = [self.from_item()]
        while self.eat(PUNCT, ","):
            from_items.append(self.from_item())
        where = None
        if self.eat(KEYWORD, "where"):
            where = self.condition()
        return SelectQuery(select, from_items, where)

    def from_item(self):
        token = self.expect(IDENT)
        if self.eat(KEYWORD, "in"):
            return FromRange(token.value, self.expression())
        components = self.path_components(require=True)
        return FromPath(PathExpr(Ident(token.value), components))

    # -- path components ------------------------------------------------------

    def path_components(self, require: bool) -> list:
        components: list = []
        while True:
            if self.at(PATHVAR):
                components.append(PVar(self.advance().value))
            elif self.at(PUNCT, ".."):
                self.advance()
                components.append(PAnon())
            elif self.at(PUNCT, "->"):
                self.advance()
                components.append(PDeref())
            elif self.at(PUNCT, "."):
                self.advance()
                if self.at(ATTVAR):
                    components.append(PAttVar(self.advance().value))
                elif self.at(IDENT) or self.at(KEYWORD):
                    components.append(PAttr(self.advance().value))
                else:
                    raise self.error("expected an attribute after '.'")
            elif self.at(PUNCT, "["):
                self.advance()
                if self.at(INT):
                    components.append(
                        PIndex(int(self.advance().value)))
                elif self.at(IDENT):
                    components.append(PIndex(self.advance().value))
                else:
                    raise self.error("expected an index inside '[ ]'")
                self.expect(PUNCT, "]")
            elif self.at(PUNCT, "(") and self._looks_like_bind():
                self.advance()
                components.append(PBind(self.expect(IDENT).value))
                self.expect(PUNCT, ")")
            elif self.at(PUNCT, "{"):
                self.advance()
                components.append(PSetBind(self.expect(IDENT).value))
                self.expect(PUNCT, "}")
            else:
                break
        if require and not components:
            raise self.error(
                "expected a path expression (PATH_ variable, '..', '.', "
                "'[', '(' or '{')")
        return components

    def _looks_like_bind(self) -> bool:
        """``(x)`` with a bare identifier is a value binding."""
        return (self.tokens[self.pos + 1].kind == IDENT
                and self.tokens[self.pos + 2].kind == PUNCT
                and self.tokens[self.pos + 2].value == ")")

    # -- conditions -----------------------------------------------------------

    def condition(self):
        return self.or_condition()

    def or_condition(self):
        operands = [self.and_condition()]
        while self.eat(KEYWORD, "or"):
            operands.append(self.and_condition())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", operands)

    def and_condition(self):
        operands = [self.not_condition()]
        while self.eat(KEYWORD, "and"):
            operands.append(self.not_condition())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", operands)

    def not_condition(self):
        if self.eat(KEYWORD, "not"):
            return NotOp(self.not_condition())
        return self.comparison()

    def comparison(self):
        left = self.expression()
        if self.at(KEYWORD, "contains"):
            self.advance()
            return ContainsOp(left, self.pattern_literal())
        for op in _COMPARISONS:
            if self.at(PUNCT, op):
                self.advance()
                return BinOp(op, left, self.expression())
        if self.at(KEYWORD, "in"):
            self.advance()
            return BinOp("in", left, self.expression())
        return left

    def pattern_literal(self) -> PatternLit:
        """The pattern after ``contains`` — re-serialized for the text
        module's own parser."""
        if self.at(STRING):
            return PatternLit(f'"{self.advance().value}"')
        if self.at(PUNCT, "("):
            pieces: list[str] = []
            depth = 0
            while True:
                token = self.peek()
                if token.kind == END:
                    raise self.error("unterminated pattern expression")
                if token.kind == PUNCT and token.value == "(":
                    depth += 1
                    pieces.append("(")
                elif token.kind == PUNCT and token.value == ")":
                    depth -= 1
                    pieces.append(")")
                elif token.kind == STRING:
                    pieces.append(f'"{token.value}"')
                elif token.kind == KEYWORD and token.value in (
                        "and", "or", "not"):
                    pieces.append(token.value)
                else:
                    raise self.error(
                        f"unexpected {token.value!r} in pattern "
                        "expression")
                self.advance()
                if depth == 0:
                    break
            return PatternLit(" ".join(pieces))
        raise self.error("expected a pattern after 'contains'")

    # -- expressions ----------------------------------------------------------

    def expression(self):
        left = self.postfix()
        # trailing path components turn the expression into a PathExpr
        if self.at(PATHVAR) or self.at(PUNCT, ".."):
            components = self.path_components(require=True)
            left = PathExpr(left, components)
        while True:
            if self.at(PUNCT, "-"):
                self.advance()
                left = BinOp("-", left, self.expression())
            elif self.at(KEYWORD, "union"):
                self.advance()
                left = BinOp("union", left, self.expression())
            elif self.at(KEYWORD, "intersect"):
                self.advance()
                left = BinOp("intersect", left, self.expression())
            else:
                return left

    def postfix(self):
        node = self.primary()
        while True:
            if self.at(PUNCT, "."):
                # Stop before '..' (handled as a path component).
                self.advance()
                if self.at(ATTVAR):
                    token = self.advance()
                    node = FieldSel(node, token.value, attvar=True)
                elif self.at(IDENT) or self.at(KEYWORD):
                    node = FieldSel(node, self.advance().value)
                else:
                    raise self.error("expected an attribute after '.'")
            elif self.at(PUNCT, "["):
                self.advance()
                if self.at(INT):
                    index: object = int(self.advance().value)
                elif self.at(IDENT):
                    index = Ident(self.advance().value)
                else:
                    raise self.error("expected an index inside '[ ]'")
                self.expect(PUNCT, "]")
                node = IndexSel(node, index)
            else:
                return node

    def primary(self):
        token = self.peek()
        if token.kind == STRING:
            self.advance()
            return Literal(token.value)
        if token.kind == INT:
            self.advance()
            return Literal(int(token.value))
        if token.kind == FLOAT:
            self.advance()
            return Literal(float(token.value))
        if token.kind == KEYWORD and token.value in ("true", "false"):
            self.advance()
            return Literal(token.value == "true")
        if token.kind == KEYWORD and token.value == "nil":
            self.advance()
            from repro.oodb.values import NIL
            return Literal(NIL)
        if token.kind == KEYWORD and token.value == "tuple":
            return self.tuple_expression()
        if token.kind == KEYWORD and token.value in ("list", "set"):
            return self.collection_expression()
        if token.kind == KEYWORD and token.value == "exists":
            self.advance()
            self.expect(PUNCT, "(")
            inner = self.select_query()
            self.expect(PUNCT, ")")
            return ExistsOp(inner)
        if token.kind == KEYWORD and token.value == "near":
            self.advance()
            self.expect(PUNCT, "(")
            arguments = [self.argument()]
            while self.eat(PUNCT, ","):
                arguments.append(self.argument())
            self.expect(PUNCT, ")")
            return Call("near", arguments)
        if token.kind == KEYWORD and token.value == "element":
            # element(q) extracts the single element of a singleton set
            self.advance()
            self.expect(PUNCT, "(")
            inner = self.query()
            self.expect(PUNCT, ")")
            return Call("element", [inner])
        if token.kind in (PATHVAR, ATTVAR):
            self.advance()
            return Ident(token.value)
        if token.kind == IDENT:
            self.advance()
            if self.at(PUNCT, "("):
                self.advance()
                arguments = []
                if not self.at(PUNCT, ")"):
                    arguments.append(self.argument())
                    while self.eat(PUNCT, ","):
                        arguments.append(self.argument())
                self.expect(PUNCT, ")")
                return Call(token.value, arguments)
            return Ident(token.value)
        if token.kind == PUNCT and token.value == "(":
            self.advance()
            if self.at(KEYWORD, "select"):
                inner: object = self.select_query()
            else:
                inner = self.condition()
            self.expect(PUNCT, ")")
            return inner
        raise self.error(f"unexpected {token.value!r}")

    def argument(self):
        if self.at(KEYWORD, "select"):
            return self.select_query()
        return self.condition()

    def tuple_expression(self) -> TupleExpr:
        self.expect(KEYWORD, "tuple")
        self.expect(PUNCT, "(")
        fields = []
        while True:
            name_token = self.peek()
            if name_token.kind not in (IDENT, KEYWORD):
                raise self.error("expected a field name in tuple(...)")
            self.advance()
            self.expect(PUNCT, ":")
            fields.append((name_token.value, self.expression()))
            if not self.eat(PUNCT, ","):
                break
        self.expect(PUNCT, ")")
        return TupleExpr(fields)

    def collection_expression(self) -> CollectionExpr:
        kind = self.advance().value
        self.expect(PUNCT, "(")
        items = []
        if not self.at(PUNCT, ")"):
            items.append(self.expression())
            while self.eat(PUNCT, ","):
                items.append(self.expression())
        self.expect(PUNCT, ")")
        return CollectionExpr(kind, items)
